//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework with the same *surface* the code
//! uses — `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` — but a much simpler contract
//! underneath: every serializable value converts to and from the
//! self-describing [`value::Value`] tree, and `serde_json` renders that
//! tree. The full serde data model (visitors, zero-copy, formats other
//! than JSON) is intentionally out of scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod value;

use std::fmt;
use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Creates a "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion of a Rust value into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction of a Rust value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts a [`Value`] back into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other.kind())),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::expected("a non-negative integer", v.kind())
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::expected("an integer", v.kind())
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F64(*self))
        } else {
            // JSON has no NaN/inf; mirror what a lossy encoder does and
            // keep serialization total (models never store non-finite
            // values in practice).
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| DeError::expected("a number", v.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(DeError::expected("a one-character string", other.kind())),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("an array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N} elements, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("a fixed-size array", other.kind())),
                }
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::String(s) => s,
                        other => other.render_compact(),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("an object", other.kind())),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Derive support
// ---------------------------------------------------------------------

/// Support machinery used by the derive macro; not a public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Looks a field up in an object and deserializes it.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        key: &str,
        ty: &'static str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == key) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}` of {ty}: {e}")))
            }
            None => Err(DeError::custom(format!(
                "missing field `{key}` while deserializing {ty}"
            ))),
        }
    }

    /// Extracts the entry list of an object value.
    pub fn as_object<'v>(v: &'v Value, ty: &'static str) -> Result<&'v [(String, Value)], DeError> {
        match v {
            Value::Object(entries) => Ok(entries),
            other => Err(DeError::expected("an object", ty).also(other.kind())),
        }
    }

    impl DeError {
        fn also(self, got: &str) -> DeError {
            DeError::custom(format!("{self}, got {got}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
        let t = (1u64, "x".to_string());
        assert_eq!(<(u64, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn shape_mismatches_are_errors() {
        assert!(u64::from_value(&Value::String("3".into())).is_err());
        assert!(String::from_value(&Value::Number(super::value::Number::U64(3))).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(false)).is_err());
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 7;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
