//! The self-describing value tree every serializable type converts
//! through — structurally a JSON document.

use std::fmt::Write as _;

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integer or float, kept lossless per variant).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; entry order is preserved so encodings are stable.
    Object(Vec<(String, Value)>),
}

/// A numeric value, kept in its most faithful representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer (exact for the full `u64` range).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A binary64 float.
    F64(f64),
}

impl Value {
    /// A short noun describing the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    /// The value as `u64`, when numeric and exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, when numeric and exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value's object entries, when an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => n.render_into(out),
            Value::String(s) => render_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_json_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl Number {
    fn render_into(&self, out: &mut String) {
        match self {
            Number::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Number::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Number::F64(f) if f.is_finite() => {
                // Rust's shortest-round-trip float formatting; force a
                // fractional or exponent marker so the token reads back as
                // a float-compatible number either way.
                let _ = write!(out, "{f}");
            }
            Number::F64(_) => out.push_str("null"),
        }
    }
}

fn render_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_matches_json_grammar() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U64(3))),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("c".into(), Value::String("x\"y\n".into())),
        ]);
        assert_eq!(
            v.render_compact(),
            r#"{"a":3,"b":[null,true],"c":"x\"y\n"}"#
        );
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Number(Number::U64(7)).as_f64(), Some(7.0));
        assert_eq!(Value::Number(Number::F64(7.0)).as_u64(), Some(7));
        assert_eq!(Value::Number(Number::F64(7.5)).as_u64(), None);
        assert_eq!(Value::Number(Number::I64(-3)).as_u64(), None);
    }
}
