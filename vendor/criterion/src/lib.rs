//! Offline stand-in for `criterion`.
//!
//! Provides the same harness entry points the workspace benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `iter` / `iter_batched`) but with a deliberately
//! simple measurement core: each benchmark is timed over a fixed warm-up
//! plus a batch of samples, and median/min/max wall times are printed.
//! No plotting, statistics, or baseline storage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
///
/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost. The stand-in times each
/// routine invocation separately, so the variants are equivalent; they
/// exist for signature compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(target_samples),
            target_samples,
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass (untimed) so first-touch costs don't skew sample 0.
        black_box(routine());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mut line = String::new();
        let _ = write!(
            line,
            "{id:<40} median {:>12} (min {}, max {}, n={})",
            fmt_duration(median),
            fmt_duration(sorted[0]),
            fmt_duration(sorted[sorted.len() - 1]),
            sorted.len(),
        );
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Top-level benchmark manager.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples; wall-clock-only measurement
        // doesn't need that many to produce a stable median.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_batched_benchmarks() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
    }
}
