//! Offline stand-in for `serde_json`.
//!
//! Encodes and decodes the vendored `serde` [`Value`] tree as compact
//! JSON. Floats are written with Rust's shortest-round-trip formatting,
//! so `float_roundtrip` semantics hold by construction; `u64` integers
//! are preserved exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::value;

/// Error from encoding or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error, when known.
    pos: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, pos: usize) -> Self {
        Error {
            msg: msg.into(),
            pos: Some(pos),
        }
    }

    fn de(e: serde::DeError) -> Self {
        Error {
            msg: e.to_string(),
            pos: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} at byte {p}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for the supported value shapes; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::de)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing input.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{}`", char::from(b)),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::parse("unexpected end of input", self.pos)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::parse(
                format!("unexpected character `{}`", char::from(other)),
                self.pos,
            )),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::parse("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode when a low surrogate
                            // follows; lone surrogates become U+FFFD.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.saturating_sub(0xDC00));
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse("invalid UTF-8", self.pos))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        // `-0` must stay a float: routing it through an integer would
        // drop the sign bit and break exact f64 round-trips.
        if !is_float && text != "-0" {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
        assert_eq!(to_string(&vec![1u64, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 123456.789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn u64_round_trip_is_exact() {
        let big = u64::MAX - 3;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn nested_value_round_trip() {
        let text = r#"{"a":[1,2.5,null],"b":{"c":"x","d":false}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.render_compact(), text);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(parse_value("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(from_str::<String>(r#""\u0041\u00e9""#).unwrap(), "Aé");
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "😀");
    }
}
