//! Derive macros for the vendored `serde` stand-in.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`, which are not
//! available offline). Supports exactly the shapes this workspace
//! serializes: structs with named fields, tuple structs, and enums whose
//! variants are all unit variants. Anything else produces a compile error
//! naming the limitation.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the type declaration parsed into.
enum Shape {
    /// `struct S { a: T, b: U }` with the field names in order.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` with the field count.
    TupleStruct(usize),
    /// `enum E { ... }` with the variants in order.
    Enum(Vec<Variant>),
}

/// One enum variant, externally tagged on (de)serialization.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    /// `V` — serialized as the string `"V"`.
    Unit,
    /// `V(T)` — serialized as `{"V": <inner>}`.
    Newtype,
    /// `V { a: T, b: U }` — serialized as `{"V": {"a": .., "b": ..}}`.
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (the vendored, value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::value::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vname}(inner) => ::serde::value::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(inner))]),"
                        ),
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::value::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::value::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored, value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(entries, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let entries = ::serde::__private::as_object(v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::value::Value::Array(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"an array of {n} elements\", \
                 ::serde::value::Value::kind(other))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "(\"{vname}\", inner) => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__private::field(\
                                         entries, \"{f}\", \"{name}::{vname}\")?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "(\"{vname}\", inner) => {{\n\
                                 let entries = ::serde::__private::as_object(\
                                 inner, \"{name}::{vname}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::value::Value::String(s) => \
                 match ::std::string::String::as_str(s) {{\n\
                 {unit}\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::value::Value::Object(tagged) if tagged.len() == 1 => \
                 match (::std::string::String::as_str(&tagged[0].0), &tagged[0].1) {{\n\
                 {data}\n\
                 (other, _) => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"a {name} variant\", ::serde::value::Value::kind(other))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});")
        .parse()
        .expect("compile_error invocation parses")
}

/// Parses the derive input into name + shape.
fn parse(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility down to the `struct`/`enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("serde derive: empty input".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    i += 1;
                    break word;
                }
                i += 1; // `pub`, `crate`, …
            }
            Some(_) => i += 1, // visibility restriction group etc.
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: missing type name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive (vendored) does not support generic type `{name}`"
            ));
        }
    }

    // Skip a possible `where` clause (none in this workspace, but cheap to
    // tolerate) by scanning to the defining group or `;`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(tuple_arity(g.stream()))
        }
        ("struct", _) => {
            return Err(format!(
                "serde derive (vendored) does not support unit struct `{name}`"
            ))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(enum_variants(g.stream(), &name)?)
        }
        _ => return Err(format!("serde derive: malformed `{name}` declaration")),
    };

    Ok(Parsed { name, shape })
}

/// Extracts the field names of a named-field struct body.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name.
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde derive: expected field name, got `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde derive: expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Skip the type up to the next comma at angle-bracket depth zero.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple-struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + usize::from(!trailing_comma)
}

/// Extracts the variants of an enum body: unit, newtype, and
/// named-field variants are supported; discriminants and multi-field
/// tuple variants are not used in this workspace and are rejected.
fn enum_variants(body: TokenStream, enum_name: &str) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
            }
            TokenTree::Ident(id) => {
                let vname = id.to_string();
                i += 1;
                let kind = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        match tuple_arity(g.stream()) {
                            1 => VariantKind::Newtype,
                            n => {
                                return Err(format!(
                                    "serde derive (vendored) supports only 1-field tuple \
                                     variants; `{enum_name}::{vname}` has {n}"
                                ))
                            }
                        }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Struct(named_fields(g.stream())?)
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        return Err(format!(
                            "serde derive (vendored) does not support explicit \
                             discriminants; `{enum_name}::{vname}` has one"
                        ))
                    }
                    _ => VariantKind::Unit,
                };
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(other) => {
                        return Err(format!(
                            "serde derive: unexpected token `{other}` after \
                             `{enum_name}::{vname}`"
                        ))
                    }
                }
                variants.push(Variant { name: vname, kind });
            }
            other => {
                return Err(format!(
                    "serde derive: unexpected token `{other}` in enum `{enum_name}`"
                ))
            }
        }
    }
    Ok(variants)
}
