//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small, fully deterministic subset of the `rand` API it
//! actually uses: [`rngs::StdRng`] seeded through [`SeedableRng`], value
//! generation through [`Rng::gen`] / [`Rng::gen_range`], and in-place
//! shuffling through [`seq::SliceRandom`].
//!
//! The generator is xoshiro256** seeded via splitmix64 — statistically
//! solid for simulation workloads and bit-reproducible across platforms,
//! which is all the reproduction needs. It makes no attempt to match the
//! upstream `rand` value streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "natural" domain
/// (the equivalent of upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods every generator gets for free.
pub trait Rng: RngCore {
    /// Draws one value of type `T` uniformly from its natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a bool that is true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for upstream's
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// The conventional catch-all import module.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v: usize = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
