//! Offline stand-in for the `loom` permutation-testing crate.
//!
//! The real `loom` instruments `std::sync` look-alikes and exhaustively
//! explores thread interleavings (bounded by a preemption budget) so that
//! a concurrency test failure is reproducible rather than probabilistic.
//! This repository builds without network access, so this crate
//! re-implements the subset of that idea the OPPROX test-suite needs:
//!
//! * [`model`] runs a closure repeatedly, once per explored interleaving.
//! * Every thread spawned through [`thread::spawn`] / [`thread::scope`]
//!   and every operation on [`sync::Mutex`] / [`sync::atomic`] types is a
//!   *scheduling point*: exactly one modelled thread runs at a time, and
//!   at each point the scheduler decides (depth-first, deterministically)
//!   which runnable thread continues.
//! * The search is bounded CHESS-style: at most
//!   [`model::Builder::max_preemptions`] involuntary context switches per
//!   execution, which keeps the state space tractable while still finding
//!   the overwhelming majority of ordering bugs.
//! * Blocked-thread cycles are reported as deadlocks, and an assertion
//!   failure on *any* interleaving fails the whole model run.
//!
//! Deviations from real loom, by design:
//!
//! * Only sequentially-consistent interleavings are explored; relaxed
//!   memory-order bugs (store buffering, IRIW) are out of scope. The
//!   `Ordering` argument on atomics is accepted but does not weaken the
//!   exploration.
//! * `sync::Arc` is plain `std::sync::Arc` (no drop-ordering tracking).
//! * [`thread::scope`] is provided (std-style scoped threads) because the
//!   code under test uses borrowing worker closures; real loom 0.7 only
//!   offers `'static` spawns.
//!
//! ```
//! use std::sync::Arc;
//!
//! // A data-race-free counter: every interleaving sums to 2.
//! loom::model(|| {
//!     let n = Arc::new(loom::sync::atomic::AtomicUsize::new(0));
//!     let a = {
//!         let n = Arc::clone(&n);
//!         loom::thread::spawn(move || {
//!             n.fetch_add(1, loom::sync::atomic::Ordering::SeqCst);
//!         })
//!     };
//!     n.fetch_add(1, loom::sync::atomic::Ordering::SeqCst);
//!     a.join().unwrap();
//!     assert_eq!(n.load(loom::sync::atomic::Ordering::SeqCst), 2);
//! });
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rt;
mod scheduler;

pub mod model;
pub mod sync;
pub mod thread;

/// Explores every bounded interleaving of the threads spawned inside `f`,
/// panicking if any interleaving panics (e.g. a failed assertion) or
/// deadlocks.
///
/// Equivalent to `model::Builder::new().check(f)`.
///
/// # Panics
///
/// Re-raises the first panic observed on any explored interleaving, and
/// panics on deadlock or when the execution cap is exceeded.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f);
}
