//! Instrumented threading: spawn, join, yield and std-style scoped
//! threads, all under scheduler control inside a model run.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::rt;
use crate::scheduler::Scheduler;

/// Yields the modelled thread (a pure scheduling point). Outside a model,
/// delegates to [`std::thread::yield_now`].
pub fn yield_now() {
    if let Some((sched, me)) = rt::context() {
        sched.yield_point(me);
    } else {
        std::thread::yield_now();
    }
}

enum Inner<T> {
    Plain(std::thread::JoinHandle<T>),
    Controlled {
        sched: Arc<Scheduler>,
        id: usize,
        result: Arc<std::sync::Mutex<Option<T>>>,
        os: std::thread::JoinHandle<()>,
    },
}

/// Handle to a thread spawned with [`spawn`].
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the panic payload (as with `std`) if the thread panicked.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Plain(h) => h.join(),
            Inner::Controlled {
                sched,
                id,
                result,
                os,
            } => {
                if let Some((_, me)) = rt::context() {
                    sched.join_thread(me, id);
                }
                // Scheduler-finished (or aborted): the OS thread exits
                // promptly, so this join does not block the exploration.
                let os_result = os.join();
                let value = result.lock().unwrap_or_else(|e| e.into_inner()).take();
                match (value, os_result) {
                    (Some(v), _) => Ok(v),
                    (None, Err(p)) => Err(p),
                    (None, Ok(())) => Err(Box::new("modelled thread panicked".to_string())),
                }
            }
        }
    }
}

/// Spawns a modelled thread. Outside a model run this is exactly
/// [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::context() {
        Some((sched, me)) => {
            let id = sched.register_thread();
            let result = Arc::new(std::sync::Mutex::new(None));
            let os = {
                let sched = Arc::clone(&sched);
                let result = Arc::clone(&result);
                std::thread::spawn(move || {
                    rt::enter(Arc::clone(&sched), id);
                    sched.wait_for_turn(id);
                    let msg = match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                            None
                        }
                        Err(p) => Some(rt::panic_message(p)),
                    };
                    sched.finish_thread(id, msg);
                })
            };
            // The spawn itself is a visible operation: the new thread is
            // now runnable and may be scheduled before we continue.
            sched.yield_point(me);
            JoinHandle(Inner::Controlled {
                sched,
                id,
                result,
                os,
            })
        }
        None => JoinHandle(Inner::Plain(std::thread::spawn(f))),
    }
}

/// A scope for spawning borrowing threads; see [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<(Arc<Scheduler>, usize)>,
    joins: RefCell<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a modelled thread that may borrow from the enclosing scope.
    ///
    /// Unlike [`std::thread::Scope::spawn`] no handle is returned; all
    /// scoped threads are joined (under scheduler control) when the scope
    /// closure returns. A panic in a scoped thread fails the model run.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctx {
            Some((sched, _)) => {
                let id = sched.register_thread();
                self.joins.borrow_mut().push(id);
                let sched2 = Arc::clone(sched);
                let inner: &'scope std::thread::Scope<'scope, 'env> = self.inner;
                let _ = inner.spawn(move || {
                    rt::enter(Arc::clone(&sched2), id);
                    sched2.wait_for_turn(id);
                    let outcome = catch_unwind(AssertUnwindSafe(f));
                    sched2.finish_thread(id, outcome.err().map(rt::panic_message));
                });
                if let Some((sched, me)) = rt::context() {
                    sched.yield_point(me);
                }
            }
            None => {
                let _ = self.inner.spawn(f);
            }
        }
    }
}

/// std-style scoped threads under scheduler control. The scope's owning
/// thread joins every spawned thread (as scheduling points) before the
/// scope returns, mirroring [`std::thread::scope`] semantics.
///
/// Provided as an extension over real loom 0.7 (which has only `'static`
/// spawns) because the code under test uses borrowing worker closures.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = rt::context();
    std::thread::scope(|s| {
        let sc = Scope {
            inner: s,
            ctx,
            joins: RefCell::new(Vec::new()),
        };
        let out = f(&sc);
        if let Some((sched, me)) = &sc.ctx {
            let ids: Vec<usize> = sc.joins.borrow_mut().drain(..).collect();
            for id in ids {
                sched.join_thread(*me, id);
            }
        }
        out
    })
}
