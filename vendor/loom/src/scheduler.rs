//! The cooperative scheduler behind [`crate::model`].
//!
//! Exactly one modelled thread holds the "token" (is `current`) at any
//! moment; every instrumented operation calls back into the scheduler,
//! which consults a recorded decision trail. Replaying a prefix of the
//! trail and advancing the last decision depth-first enumerates
//! interleavings; a CHESS-style preemption budget bounds the search.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// One scheduling decision: which runnable thread continued.
#[derive(Debug)]
pub(crate) struct Choice {
    /// Runnable thread ids, reordered so the non-preempting default
    /// (continue the currently running thread, when runnable) is first.
    candidates: Vec<usize>,
    /// Index into `candidates` taken on the most recent execution.
    index: usize,
    /// Whether `candidates[0]` is the previously running thread, i.e.
    /// whether any other pick counts against the preemption budget.
    current_was_runnable: bool,
    /// Preemptions accumulated before this decision.
    preemptions_before: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Ready,
    BlockedOnLock(usize),
    BlockedOnJoin(usize),
    Finished,
}

struct SchedState {
    threads: Vec<ThreadState>,
    current: usize,
    trail: Vec<Choice>,
    /// Next decision index (replay position within `trail`).
    step: usize,
    preemptions: usize,
    /// Lock id -> currently held?
    locks: HashMap<usize, bool>,
    /// First panic message observed on this execution.
    panic: Option<String>,
    /// Set on panic or deadlock: scheduling becomes pass-through so the
    /// remaining OS threads can drain and the run can be reported.
    abort: bool,
    /// All threads finished (or the run aborted and drained).
    done: bool,
}

pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

impl Scheduler {
    /// A fresh execution that will replay (then extend) `trail`.
    pub(crate) fn new(trail: Vec<Choice>) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                threads: vec![ThreadState::Ready],
                current: 0,
                trail,
                step: 0,
                preemptions: 0,
                locks: HashMap::new(),
                panic: None,
                abort: false,
                done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers a newly spawned thread (initially runnable); returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = relock(self.state.lock());
        st.threads.push(ThreadState::Ready);
        st.threads.len() - 1
    }

    /// Blocks until `id` is scheduled for the first time (or the run aborts).
    pub(crate) fn wait_for_turn(&self, id: usize) {
        let mut st = relock(self.state.lock());
        while !st.abort && !st.done && st.current != id {
            st = relock(self.cv.wait(st));
        }
    }

    /// A visible operation boundary: lets the scheduler hand the token to
    /// any runnable thread, then blocks until `me` is scheduled again.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = relock(self.state.lock());
        if st.abort || st.done {
            return;
        }
        self.pick_next(&mut st);
        while !st.abort && !st.done && st.current != me {
            st = relock(self.cv.wait(st));
        }
    }

    /// Models a mutex acquire: a yield point followed by block-on-holder.
    pub(crate) fn acquire_lock(&self, me: usize, lock: usize) {
        self.yield_point(me);
        loop {
            let mut st = relock(self.state.lock());
            if st.abort || st.done {
                return;
            }
            if !st.locks.get(&lock).copied().unwrap_or(false) {
                st.locks.insert(lock, true);
                return;
            }
            st.threads[me] = ThreadState::BlockedOnLock(lock);
            self.pick_next(&mut st);
            while !st.abort && !st.done && st.current != me {
                st = relock(self.cv.wait(st));
            }
            if st.abort || st.done {
                return;
            }
            // Readied by a release; retry (another thread may have raced in).
        }
    }

    /// Models a mutex release: waiters become runnable, then a yield point.
    pub(crate) fn release_lock(&self, me: usize, lock: usize) {
        {
            let mut st = relock(self.state.lock());
            if st.abort || st.done {
                return;
            }
            st.locks.insert(lock, false);
            for t in st.threads.iter_mut() {
                if *t == ThreadState::BlockedOnLock(lock) {
                    *t = ThreadState::Ready;
                }
            }
        }
        self.yield_point(me);
    }

    /// Blocks `me` until `target` finishes.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.yield_point(me);
        loop {
            let mut st = relock(self.state.lock());
            if st.abort || st.done || st.threads[target] == ThreadState::Finished {
                return;
            }
            st.threads[me] = ThreadState::BlockedOnJoin(target);
            self.pick_next(&mut st);
            while !st.abort && !st.done && st.current != me {
                st = relock(self.cv.wait(st));
            }
            if st.abort || st.done {
                return;
            }
        }
    }

    /// Marks `me` finished (recording a panic, if any), wakes joiners and
    /// schedules a successor. Called as the last act of a modelled thread.
    pub(crate) fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut st = relock(self.state.lock());
        if let Some(msg) = panic_msg {
            if st.panic.is_none() {
                st.panic = Some(msg);
            }
            st.abort = true;
        }
        st.threads[me] = ThreadState::Finished;
        for t in st.threads.iter_mut() {
            if *t == ThreadState::BlockedOnJoin(me) {
                *t = ThreadState::Ready;
            }
        }
        if st.threads.iter().all(|t| *t == ThreadState::Finished) {
            st.done = true;
            self.cv.notify_all();
            return;
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st);
    }

    /// Blocks the model driver until the execution completes. Aborted runs
    /// get a grace period for OS threads to drain, then are abandoned
    /// (the driver is about to panic with the recorded failure anyway).
    pub(crate) fn wait_done(&self) {
        let mut st = relock(self.state.lock());
        while !st.done {
            if st.abort {
                let (g, timeout) = self
                    .cv
                    .wait_timeout(st, Duration::from_secs(2))
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
                if timeout.timed_out() {
                    break;
                }
            } else {
                st = relock(self.cv.wait(st));
            }
        }
    }

    /// Extracts the decision trail and any recorded failure.
    pub(crate) fn take_outcome(&self) -> (Vec<Choice>, Option<String>) {
        let mut st = relock(self.state.lock());
        (std::mem::take(&mut st.trail), st.panic.take())
    }

    /// Picks the next thread to run. Replays the trail when within it,
    /// otherwise records a new default (non-preempting) decision.
    fn pick_next(&self, st: &mut SchedState) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThreadState::Ready)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| *t == ThreadState::Finished) {
                st.done = true;
            } else {
                if st.panic.is_none() {
                    st.panic = Some(format!(
                        "deadlock: no runnable threads (states: {:?})",
                        st.threads
                    ));
                }
                st.abort = true;
                st.done = true;
            }
            self.cv.notify_all();
            return;
        }
        let current_was_runnable = runnable.contains(&st.current);
        let mut candidates = runnable;
        if current_was_runnable {
            candidates.retain(|&t| t != st.current);
            candidates.insert(0, st.current);
        }
        let step = st.step;
        st.step += 1;
        let index = if step < st.trail.len() {
            assert_eq!(
                st.trail[step].candidates, candidates,
                "nondeterministic execution: modelled code must be deterministic"
            );
            st.trail[step].index
        } else {
            st.trail.push(Choice {
                candidates: candidates.clone(),
                index: 0,
                current_was_runnable,
                preemptions_before: st.preemptions,
            });
            0
        };
        if current_was_runnable && index > 0 {
            st.preemptions += 1;
        }
        st.current = candidates[index];
        self.cv.notify_all();
    }
}

/// Advances `trail` to the next unexplored interleaving (depth-first).
/// Returns `false` when the bounded search space is exhausted.
pub(crate) fn advance(trail: &mut Vec<Choice>, max_preemptions: usize) -> bool {
    while let Some(c) = trail.last_mut() {
        // Any pick other than candidates[0] at this node costs exactly one
        // preemption when the incumbent thread was runnable.
        let budget_ok = !c.current_was_runnable || c.preemptions_before < max_preemptions;
        if c.index + 1 < c.candidates.len() && budget_ok {
            c.index += 1;
            return true;
        }
        trail.pop();
    }
    false
}
