//! Per-thread runtime context linking instrumented primitives to the
//! scheduler of the model run they execute under.

use std::cell::RefCell;
use std::sync::Arc;

use crate::scheduler::Scheduler;

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// Installs the scheduler context for the calling (modelled) OS thread.
pub(crate) fn enter(sched: Arc<Scheduler>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, id)));
}

/// The calling thread's scheduler context, if it is a modelled thread.
/// `None` means the primitive was used outside [`crate::model`] and falls
/// back to plain `std` behaviour.
pub(crate) fn context() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Renders a panic payload into a message the model driver can re-raise.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "modelled thread panicked (non-string payload)".to_string()
    }
}
