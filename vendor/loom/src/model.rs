//! The model driver: configure and run a bounded interleaving search.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::rt;
use crate::scheduler::{advance, Scheduler};

/// Configures a model run. Mirrors the knobs of real loom's builder that
/// matter for a bounded CHESS-style search.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum involuntary context switches per execution (CHESS bound).
    /// Voluntary switches (blocking on a lock, finishing) are always free,
    /// so every execution remains schedulable. Default: 2 — empirically
    /// sufficient to expose the vast majority of ordering bugs.
    pub max_preemptions: usize,
    /// Hard cap on explored executions; exceeding it panics so that an
    /// accidentally huge model fails loudly instead of hanging CI.
    pub max_executions: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_preemptions: 2,
            max_executions: 1_000_000,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Runs `f` once per explored interleaving.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic observed on any interleaving (with the
    /// execution count for reproducibility), and panics on deadlock or
    /// when `max_executions` is exceeded.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut trail = Vec::new();
        let mut executions: u64 = 0;
        loop {
            executions += 1;
            assert!(
                executions <= self.max_executions,
                "loom: exceeded {} executions; shrink the modelled test",
                self.max_executions
            );
            let sched = Arc::new(Scheduler::new(std::mem::take(&mut trail)));
            {
                let sched = Arc::clone(&sched);
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    rt::enter(Arc::clone(&sched), 0);
                    sched.wait_for_turn(0);
                    let outcome = catch_unwind(AssertUnwindSafe(|| f()));
                    sched.finish_thread(0, outcome.err().map(rt::panic_message));
                });
            }
            sched.wait_done();
            let (explored, failure) = sched.take_outcome();
            if let Some(msg) = failure {
                panic!("loom: execution {executions} failed: {msg}");
            }
            trail = explored;
            if !advance(&mut trail, self.max_preemptions) {
                return;
            }
        }
    }
}
