//! Instrumented `std::sync` look-alikes. Inside [`crate::model`] every
//! operation is a scheduling point; outside a model they behave exactly
//! like their `std` counterparts.

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::LockResult;

pub use std::sync::Arc;

use crate::rt;

/// Global lock-id allocator. Ids only need to be unique within one
/// execution; monotonically increasing across executions is fine because
/// the decision trail records thread ids, not lock ids.
static NEXT_LOCK_ID: StdAtomicUsize = StdAtomicUsize::new(1);

/// A mutual-exclusion primitive whose acquire/release are scheduling
/// points under a model run.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            id: NEXT_LOCK_ID.fetch_add(1, StdOrdering::Relaxed),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking the modelled thread until available.
    ///
    /// # Errors
    ///
    /// Like `std`, returns a [`std::sync::PoisonError`] wrapping the guard
    /// if a previous holder panicked.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = rt::context();
        if let Some((sched, me)) = &ctx {
            sched.acquire_lock(*me, self.id);
        }
        let release = ReleaseOnDrop { ctx, lock: self.id };
        match self.data.lock() {
            Ok(inner) => Ok(MutexGuard {
                inner,
                _release: release,
            }),
            Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                inner: poisoned.into_inner(),
                _release: release,
            })),
        }
    }

    /// Consumes the mutex, returning the protected value.
    ///
    /// # Errors
    ///
    /// Propagates poisoning like [`std::sync::Mutex::into_inner`].
    pub fn into_inner(self) -> LockResult<T> {
        self.data.into_inner()
    }
}

/// Releases the scheduler-side lock bookkeeping *after* the inner `std`
/// guard has dropped (field order in [`MutexGuard`]), so the lock is truly
/// free before another modelled thread can be granted it.
struct ReleaseOnDrop {
    ctx: Option<(Arc<crate::scheduler::Scheduler>, usize)>,
    lock: usize,
}

impl Drop for ReleaseOnDrop {
    fn drop(&mut self) {
        if let Some((sched, me)) = &self.ctx {
            sched.release_lock(*me, self.lock);
        }
    }
}

/// RAII guard for [`Mutex`]; releasing it is a scheduling point.
pub struct MutexGuard<'a, T> {
    // Declaration order is load-bearing: `inner` (the std guard) must drop
    // before `release` hands the lock to the next modelled thread.
    inner: std::sync::MutexGuard<'a, T>,
    _release: ReleaseOnDrop,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub mod atomic {
    //! Atomic types whose every operation is a scheduling point.
    //!
    //! Only sequentially-consistent interleavings are modelled; the
    //! `Ordering` argument is forwarded to the underlying `std` atomic but
    //! does not weaken the exploration.

    pub use std::sync::atomic::Ordering;

    use crate::rt;

    fn sched_point() {
        if let Some((sched, me)) = rt::context() {
            sched.yield_point(me);
        }
    }

    macro_rules! atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:path, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                /// Atomically loads the value (scheduling point).
                pub fn load(&self, order: Ordering) -> $prim {
                    sched_point();
                    self.0.load(order)
                }

                /// Atomically stores `v` (scheduling point).
                pub fn store(&self, v: $prim, order: Ordering) {
                    sched_point();
                    self.0.store(v, order);
                }

                /// Atomically adds `v`, returning the previous value
                /// (scheduling point).
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    sched_point();
                    self.0.fetch_add(v, order)
                }

                /// Atomically swaps in `v`, returning the previous value
                /// (scheduling point).
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    sched_point();
                    self.0.swap(v, order)
                }

                /// Atomic compare-exchange (scheduling point).
                ///
                /// # Errors
                ///
                /// Returns the actual value when it differs from `current`.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    sched_point();
                    self.0.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    atomic_int!(
        /// Instrumented [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    atomic_int!(
        /// Instrumented [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    atomic_int!(
        /// Instrumented [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );

    /// Instrumented [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// Creates a new atomic flag.
        pub fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        /// Atomically loads the flag (scheduling point).
        pub fn load(&self, order: Ordering) -> bool {
            sched_point();
            self.0.load(order)
        }

        /// Atomically stores the flag (scheduling point).
        pub fn store(&self, v: bool, order: Ordering) {
            sched_point();
            self.0.store(v, order);
        }

        /// Atomically swaps the flag, returning the previous value
        /// (scheduling point).
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            sched_point();
            self.0.swap(v, order)
        }
    }
}
