//! Self-tests for the offline loom stand-in: the checker must (a) pass
//! race-free code on every interleaving, (b) actually explore distinct
//! interleavings (observing a lost update), and (c) report assertion
//! failures and deadlocks from any interleaving.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Mutex as StdMutex};

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

#[test]
fn atomic_increment_is_race_free_on_every_interleaving() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let h = {
            let n = Arc::clone(&n);
            loom::thread::spawn(move || {
                n.fetch_add(1, Ordering::SeqCst);
            })
        };
        n.fetch_add(1, Ordering::SeqCst);
        h.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn explores_the_lost_update_interleaving() {
    // Non-atomic read-modify-write: some interleaving must lose an update
    // (final value 1) and some must not (final value 2). Observing both
    // proves the scheduler genuinely explores distinct interleavings.
    let finals: Arc<StdMutex<HashSet<usize>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&finals);
    loom::model(move || {
        let n = Arc::new(AtomicUsize::new(0));
        let h = {
            let n = Arc::clone(&n);
            loom::thread::spawn(move || {
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            })
        };
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        h.join().unwrap();
        sink.lock().unwrap().insert(n.load(Ordering::SeqCst));
    });
    let finals = finals.lock().unwrap();
    assert!(finals.contains(&2), "missing the race-free interleaving");
    assert!(
        finals.contains(&1),
        "never explored the lost-update interleaving"
    );
}

#[test]
fn mutex_guarantees_mutual_exclusion() {
    loom::model(|| {
        let m = Arc::new(loom::sync::Mutex::new(0u32));
        let h = {
            let m = Arc::clone(&m);
            loom::thread::spawn(move || {
                *m.lock().unwrap() += 1;
            })
        };
        *m.lock().unwrap() += 1;
        h.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

#[test]
fn scoped_threads_borrow_and_always_join() {
    loom::model(|| {
        let data = loom::sync::Mutex::new(Vec::new());
        loom::thread::scope(|s| {
            for i in 0..2u32 {
                let data = &data;
                s.spawn(move || {
                    data.lock().unwrap().push(i);
                });
            }
        });
        let mut v = data.into_inner().unwrap();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1]);
    });
}

#[test]
fn explores_more_than_one_execution() {
    let count = Arc::new(StdAtomicUsize::new(0));
    let c = Arc::clone(&count);
    loom::model(move || {
        c.fetch_add(1, StdOrdering::SeqCst); // plain std atomic: not a scheduling point
        loom::thread::spawn(|| {}).join().unwrap();
    });
    assert!(
        count.load(StdOrdering::SeqCst) >= 2,
        "spawn/join admits at least two schedules"
    );
}

#[test]
#[should_panic(expected = "racy flag")]
fn reports_an_assertion_that_fails_on_some_interleaving() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let h = {
            let flag = Arc::clone(&flag);
            loom::thread::spawn(move || flag.store(true, Ordering::SeqCst))
        };
        // Fails whenever the main thread wins the race.
        assert!(flag.load(Ordering::SeqCst), "racy flag");
        h.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn detects_a_lock_order_inversion_deadlock() {
    loom::model(|| {
        let a = Arc::new(loom::sync::Mutex::new(()));
        let b = Arc::new(loom::sync::Mutex::new(()));
        let h = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            loom::thread::spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
        };
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        h.join().unwrap();
    });
}
