//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small, deterministic property-testing harness with the same
//! surface its tests use: the [`proptest!`] macro, range and collection
//! strategies, `prop_map` / `prop_filter` / `prop_flat_map` / `boxed`
//! combinators, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design: no shrinking (failures report
//! the raw generated case), and the per-test RNG seed derives from the
//! test's module path so runs are bit-reproducible. Set the
//! `PROPTEST_SEED` environment variable to explore alternative streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional catch-all import module.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body against freshly generated
/// inputs for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test item at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __runner = $crate::test_runner::TestRunner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__runner.cases() {
                $crate::strategy::check_case(
                    &($($strat,)+),
                    __runner.rng(),
                    |($($arg,)+)| $body,
                );
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn combinators_compose(
            n in (1usize..5).prop_flat_map(|k| {
                crate::collection::vec((0.0f64..1.0).prop_map(|x| x * 10.0), k)
            }),
        ) {
            prop_assert!(!n.is_empty() && n.len() < 5);
            prop_assert!(n.iter().all(|&x| (0.0..10.0).contains(&x)));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::default(), "filter");
        for _ in 0..100 {
            assert_eq!(strat.generate(runner.rng()) % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0.0f64..1.0, 5);
        let mut a = crate::test_runner::TestRunner::new(ProptestConfig::default(), "same");
        let mut b = crate::test_runner::TestRunner::new(ProptestConfig::default(), "same");
        for _ in 0..10 {
            assert_eq!(strat.generate(a.rng()), strat.generate(b.rng()));
        }
    }
}
