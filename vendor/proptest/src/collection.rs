//! Collection strategies (`vec`) and size specifications.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A half-open range of permitted collection lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeRange {
    start: usize,
    end_exclusive: usize,
}

impl SizeRange {
    /// Smallest permitted length.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the largest permitted length.
    #[must_use]
    pub fn end_exclusive(&self) -> usize {
        self.end_exclusive
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            start: exact,
            end_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            start: *r.start(),
            end_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose length falls in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end_exclusive - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_is_exact() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        let strat = vec(0u8..10, 7usize);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn ranged_size_spans_range() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(4);
        let strat = vec(0u8..10, 1..5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
    }
}
