//! Value-generation strategies and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy is simply a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying with fresh generations.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Every `&S` generates like `S`, so strategies can be shared.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Bounded retry: a predicate that rejects everything is a test
        // bug, so fail loudly instead of spinning.
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive candidates",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy, from [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = rng.below(span);
                // Wrapping add over the unsigned image is exact for the
                // signed types too.
                (self.start as u64).wrapping_add(offset) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.abs_diff(lo) as u64;
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span + 1)
                };
                (lo as u64).wrapping_add(offset) as $ty
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Generates one value from `strategy` and feeds it to `body`.
///
/// Used by the `proptest!` expansion: routing the generated value through
/// a generic function pins the closure's parameter type to
/// `S::Value`, which plain `let`-then-call expansion would leave for
/// inference to guess at.
pub fn check_case<S, B>(strategy: &S, rng: &mut TestRng, mut body: B)
where
    S: Strategy,
    B: FnMut(S::Value),
{
    body(strategy.generate(rng));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(42)
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut r = rng();
        let strat = -5i64..5;
        let mut seen_neg = false;
        for _ in 0..200 {
            let v = strat.generate(&mut r);
            assert!((-5..5).contains(&v));
            seen_neg |= v < 0;
        }
        assert!(seen_neg);
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = rng();
        let strat = 0u8..=1;
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[strat.generate(&mut r) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn just_and_tuples_generate() {
        let mut r = rng();
        let (a, b) = (Just(7u8), 0u64..4).generate(&mut r);
        assert_eq!(a, 7);
        assert!(b < 4);
    }

    #[test]
    fn boxed_preserves_behavior() {
        let mut r = rng();
        let strat = (0u32..10).prop_map(|v| v * 2).boxed();
        for _ in 0..50 {
            let v = strat.generate(&mut r);
            assert!(v % 2 == 0 && v < 20);
        }
    }
}
