//! Test-case driver and deterministic RNG for the proptest stand-in.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stand-in does no shrinking, so a
        // smaller default keeps suites quick while still exploring.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic 64-bit generator (xoshiro256** seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        self.state = [n0, n1, n2, n3.rotate_left(45)];
        result
    }

    /// Uniform integer in `[0, bound)` via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }

    /// Uniform f64 in `[0, 1)` using the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives the generated cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner whose RNG seed derives from `test_path` (and the
    /// optional `PROPTEST_SEED` environment variable), so each test has a
    /// stable but distinct input stream.
    #[must_use]
    pub fn new(config: ProptestConfig, test_path: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x4F50_5052_4F58_5F31); // "OPPROX_1"
                                               // FNV-1a over the test path, mixed with the base seed.
        let mut h = 0xCBF2_9CE4_8422_2325u64 ^ base;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(h),
        }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The runner's RNG, threaded through every strategy.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

impl fmt::Display for ProptestConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProptestConfig(cases={})", self.cases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let mut a = TestRunner::new(ProptestConfig::default(), "mod::test_a");
        let mut b = TestRunner::new(ProptestConfig::default(), "mod::test_b");
        let sa: Vec<u64> = (0..4).map(|_| a.rng().next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.rng().next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
