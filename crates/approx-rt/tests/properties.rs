//! Property-based tests for the approximation runtime.

use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::qos::{psnr, relative_distortion, PSNR_CAP, QOS_SATURATION};
use opprox_approx_rt::technique::{
    perforated_indices, perforated_indices_offset, perforated_len, truncated_len, Memoizer,
};
use opprox_approx_rt::{LevelConfig, PhaseSchedule};
use proptest::prelude::*;

proptest! {
    /// Perforation visits a subset of the index space, in order, starting
    /// at 0, and the count matches the closed form.
    #[test]
    fn perforation_visits_ordered_subset(n in 0usize..200, level in 0u8..8) {
        let idx: Vec<usize> = perforated_indices(n, level).collect();
        prop_assert_eq!(idx.len(), perforated_len(n, level));
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(idx.iter().all(|&i| i < n));
        if n > 0 {
            prop_assert_eq!(idx[0], 0);
        }
    }

    /// Rotating-offset perforation covers EVERY index within one full
    /// stride cycle of outer iterations.
    #[test]
    fn offset_perforation_covers_everything_per_cycle(n in 1usize..100, level in 0u8..6) {
        let stride = level as usize + 1;
        let mut seen = vec![false; n];
        for offset in 0..stride {
            for i in perforated_indices_offset(n, level, offset) {
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "uncovered indices at level {level}");
    }

    /// Truncation never yields more iterations than the original loop and
    /// is monotone non-increasing in the level.
    #[test]
    fn truncation_is_monotone(n in 1usize..300, drop in 1usize..50, min_len in 0usize..20) {
        let mut prev = usize::MAX;
        for level in 0u8..8 {
            let len = truncated_len(n, level, drop, min_len);
            prop_assert!(len <= n);
            prop_assert!(len <= prev);
            prev = len;
        }
    }

    /// Memoization at level `l` computes exactly ceil(n / (l+1)) times
    /// over n sequential iterations starting from an empty cache.
    #[test]
    fn memoizer_compute_count_matches_stride(n in 1usize..100, level in 0u8..6) {
        let mut memo: Memoizer<usize> = Memoizer::new();
        let mut computes = 0usize;
        for i in 0..n {
            memo.get_or_compute(i, level, || { computes += 1; i });
        }
        prop_assert_eq!(computes, n.div_ceil(level as usize + 1));
    }

    /// Relative distortion is zero iff outputs match, non-negative, and
    /// saturated at the crash plateau.
    #[test]
    fn distortion_properties(
        exact in proptest::collection::vec(-100.0f64..100.0, 1..30),
        noise in proptest::collection::vec(-1.0f64..1.0, 30),
    ) {
        prop_assert_eq!(relative_distortion(&exact, &exact), 0.0);
        let approx: Vec<f64> = exact.iter().zip(noise.iter()).map(|(e, d)| e + d).collect();
        let q = relative_distortion(&exact, &approx);
        prop_assert!(q >= 0.0);
        prop_assert!(q <= QOS_SATURATION);
    }

    /// PSNR is symmetric and capped.
    #[test]
    fn psnr_properties(
        a in proptest::collection::vec(0.0f64..255.0, 4..40),
        b in proptest::collection::vec(0.0f64..255.0, 40),
    ) {
        let b = &b[..a.len()];
        let ab = psnr(&a, b, 255.0);
        let ba = psnr(b, &a, 255.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= PSNR_CAP);
        prop_assert!(ab > 0.0);
    }

    /// A single-phase probe schedule is accurate everywhere except its
    /// designated phase.
    #[test]
    fn single_phase_probe_is_isolated(
        phase in 0usize..4,
        expected in 4u64..200,
        levels in proptest::collection::vec(0u8..4, 2..4),
    ) {
        prop_assume!(levels.iter().any(|&l| l > 0));
        let cfg = LevelConfig::new(levels);
        let s = PhaseSchedule::single_phase(cfg.clone(), phase, 4, expected).unwrap();
        for it in 0..expected {
            if s.phase_of(it) == phase {
                prop_assert_eq!(s.config_at(it), &cfg);
            } else {
                prop_assert!(s.config_at(it).is_accurate());
            }
        }
    }

    /// Validation accepts exactly the configurations whose levels are all
    /// within their block maxima.
    #[test]
    fn config_validation_matches_levels(levels in proptest::collection::vec(0u8..8, 3)) {
        let blocks = vec![
            BlockDescriptor::new("a", TechniqueKind::LoopPerforation, 5),
            BlockDescriptor::new("b", TechniqueKind::Memoization, 3),
            BlockDescriptor::new("c", TechniqueKind::LoopTruncation, 6),
        ];
        let cfg = LevelConfig::new(levels.clone());
        let ok = levels[0] <= 5 && levels[1] <= 3 && levels[2] <= 6;
        prop_assert_eq!(cfg.validate(&blocks).is_ok(), ok);
    }
}
