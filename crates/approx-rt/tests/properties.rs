//! Property-based tests for the approximation runtime.

use opprox_approx_rt::app::AppMeta;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::qos::{psnr, relative_distortion, PSNR_CAP, QOS_SATURATION};
use opprox_approx_rt::technique::{
    perforated_indices, perforated_indices_offset, perforated_len, precision_cost,
    quantization_step, quantized, should_skip, truncated_len, Memoizer,
};
use opprox_approx_rt::{
    ApproxApp, InputParams, LevelConfig, PhaseSchedule, RunResult, RuntimeError, WorkCounter,
};
use proptest::prelude::*;

/// A synthetic two-block fixture exercising the survey techniques:
/// block 0 precision-scales a deterministic value stream, block 1
/// task-skips low-significance values. The blocks write disjoint output
/// ranges, so per-element error — and therefore the relative-distortion
/// QoS — is provably monotone in each level: floor quantization onto a
/// doubling grid nests (each coarser grid is a sub-grid of the finer
/// one), and the skipped set only grows with the level.
struct SyntheticSurvey {
    meta: AppMeta,
}

impl SyntheticSurvey {
    fn new() -> Self {
        SyntheticSurvey {
            meta: AppMeta {
                name: "SyntheticSurvey".into(),
                input_param_names: vec!["tasks".into()],
                blocks: vec![
                    BlockDescriptor::new("quantize", TechniqueKind::PrecisionScaling, 5),
                    BlockDescriptor::new("skip", TechniqueKind::TaskSkipping, 5),
                ],
            },
        }
    }
}

impl ApproxApp for SyntheticSurvey {
    fn meta(&self) -> &AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let tasks = input.get(0) as usize;
        if !(1..=4096).contains(&tasks) {
            return Err(RuntimeError::InvalidInput(format!(
                "tasks must be in 1..=4096, got {tasks}"
            )));
        }
        let mut log = CallContextLog::new();
        let mut counter = WorkCounter::new();
        let mut output = Vec::with_capacity(2 * 4 * tasks);
        for iter in 0..4u64 {
            let cfg = schedule.config_at(iter);
            // A deterministic value stream in [-5, 5.1).
            let value = |k: usize| ((iter as usize * 17 + k * 29) % 101) as f64 / 10.0 - 5.0;

            let lvl_p = cfg.level(0);
            let cost = precision_cost(4, lvl_p);
            let mut w = 0u64;
            for k in 0..tasks {
                output.push(quantized(value(k), lvl_p, 0.1));
                w += cost;
            }
            counter.charge(w, w * 2);
            log.record(iter, 0, w);

            let lvl_s = cfg.level(1);
            let mut w = 0u64;
            for k in 0..tasks {
                let v = value(k);
                let significance = v.abs() / 5.1;
                if should_skip(significance, lvl_s, 0.15) {
                    output.push(0.0);
                    w += 1;
                } else {
                    output.push(v);
                    w += 5;
                }
            }
            counter.charge(w, w);
            log.record(iter, 1, w);
        }
        Ok(RunResult {
            output,
            work: counter.total(),
            outer_iters: 4,
            log,
        })
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        vec![InputParams::new(vec![64.0])]
    }
}

proptest! {
    /// Perforation visits a subset of the index space, in order, starting
    /// at 0, and the count matches the closed form.
    #[test]
    fn perforation_visits_ordered_subset(n in 0usize..200, level in 0u8..8) {
        let idx: Vec<usize> = perforated_indices(n, level).collect();
        prop_assert_eq!(idx.len(), perforated_len(n, level));
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(idx.iter().all(|&i| i < n));
        if n > 0 {
            prop_assert_eq!(idx[0], 0);
        }
    }

    /// Rotating-offset perforation covers EVERY index within one full
    /// stride cycle of outer iterations.
    #[test]
    fn offset_perforation_covers_everything_per_cycle(n in 1usize..100, level in 0u8..6) {
        let stride = level as usize + 1;
        let mut seen = vec![false; n];
        for offset in 0..stride {
            for i in perforated_indices_offset(n, level, offset) {
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "uncovered indices at level {level}");
    }

    /// Truncation never yields more iterations than the original loop and
    /// is monotone non-increasing in the level.
    #[test]
    fn truncation_is_monotone(n in 1usize..300, drop in 1usize..50, min_len in 0usize..20) {
        let mut prev = usize::MAX;
        for level in 0u8..8 {
            let len = truncated_len(n, level, drop, min_len);
            prop_assert!(len <= n);
            prop_assert!(len <= prev);
            prev = len;
        }
    }

    /// Memoization at level `l` computes exactly ceil(n / (l+1)) times
    /// over n sequential iterations starting from an empty cache.
    #[test]
    fn memoizer_compute_count_matches_stride(n in 1usize..100, level in 0u8..6) {
        let mut memo: Memoizer<usize> = Memoizer::new();
        let mut computes = 0usize;
        for i in 0..n {
            memo.get_or_compute(i, level, || { computes += 1; i });
        }
        prop_assert_eq!(computes, n.div_ceil(level as usize + 1));
    }

    /// Relative distortion is zero iff outputs match, non-negative, and
    /// saturated at the crash plateau.
    #[test]
    fn distortion_properties(
        exact in proptest::collection::vec(-100.0f64..100.0, 1..30),
        noise in proptest::collection::vec(-1.0f64..1.0, 30),
    ) {
        prop_assert_eq!(relative_distortion(&exact, &exact), 0.0);
        let approx: Vec<f64> = exact.iter().zip(noise.iter()).map(|(e, d)| e + d).collect();
        let q = relative_distortion(&exact, &approx);
        prop_assert!(q >= 0.0);
        prop_assert!(q <= QOS_SATURATION);
    }

    /// PSNR is symmetric and capped.
    #[test]
    fn psnr_properties(
        a in proptest::collection::vec(0.0f64..255.0, 4..40),
        b in proptest::collection::vec(0.0f64..255.0, 40),
    ) {
        let b = &b[..a.len()];
        let ab = psnr(&a, b, 255.0);
        let ba = psnr(b, &a, 255.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= PSNR_CAP);
        prop_assert!(ab > 0.0);
    }

    /// A single-phase probe schedule is accurate everywhere except its
    /// designated phase.
    #[test]
    fn single_phase_probe_is_isolated(
        phase in 0usize..4,
        expected in 4u64..200,
        levels in proptest::collection::vec(0u8..4, 2..4),
    ) {
        prop_assume!(levels.iter().any(|&l| l > 0));
        let cfg = LevelConfig::new(levels);
        let s = PhaseSchedule::single_phase(cfg.clone(), phase, 4, expected).unwrap();
        for it in 0..expected {
            if s.phase_of(it) == phase {
                prop_assert_eq!(s.config_at(it), &cfg);
            } else {
                prop_assert!(s.config_at(it).is_accurate());
            }
        }
    }

    /// Floor quantization is exact at level 0 and its error never
    /// decreases as the grid coarsens — each doubled step is a sub-grid
    /// of the previous one.
    #[test]
    fn quantization_error_is_monotone_in_level(
        v in -1e4f64..1e4,
        base in 1e-3f64..10.0,
    ) {
        prop_assert_eq!(quantized(v, 0, base), v);
        prop_assert_eq!(quantization_step(0, base), 0.0);
        let mut prev_err = 0.0;
        for level in 1u8..9 {
            let q = quantized(v, level, base);
            let err = (v - q).abs();
            prop_assert!(q <= v, "floor quantization rounds down");
            prop_assert!(err < quantization_step(level, base));
            prop_assert!(err + 1e-12 >= prev_err, "error shrank from {prev_err} to {err} at level {level}");
            prev_err = err;
        }
    }

    /// Precision cost is non-increasing in the level, equals the full
    /// cost at level 0, and never reaches zero — approximate hardware
    /// still executes the instruction.
    #[test]
    fn precision_cost_is_monotone_and_positive(full in 1u64..100_000) {
        prop_assert_eq!(precision_cost(full, 0), full);
        let mut prev = full;
        for level in 1u8..12 {
            let c = precision_cost(full, level);
            prop_assert!(c >= 1);
            prop_assert!(c <= prev);
            prev = c;
        }
    }

    /// The skipped set grows with the level: a task skipped at level `l`
    /// is skipped at every higher level, and level 0 skips nothing.
    #[test]
    fn skipped_set_grows_with_level(
        significance in 0.0f64..2.0,
        step in 1e-3f64..1.0,
    ) {
        prop_assert!(!should_skip(significance, 0, step));
        for level in 0u8..8 {
            if should_skip(significance, level, step) {
                prop_assert!(
                    should_skip(significance, level + 1, step),
                    "task un-skipped when the level rose from {level}"
                );
            }
        }
    }

    /// The synthetic survey app accepts every in-range configuration
    /// without panicking and rejects out-of-range levels with a typed
    /// error — never an unwind.
    #[test]
    fn synthetic_survey_never_panics(
        levels in proptest::collection::vec(0u8..10, 2),
        tasks in 1u64..200,
    ) {
        let app = SyntheticSurvey::new();
        let input = InputParams::new(vec![tasks as f64]);
        let schedule = PhaseSchedule::constant(LevelConfig::new(levels.clone()));
        match app.run(&input, &schedule) {
            Ok(run) => {
                prop_assert!(levels.iter().all(|&l| l <= 5));
                prop_assert!(run.output.iter().all(|v| v.is_finite()));
                prop_assert!(run.work > 0);
            }
            Err(e) => {
                prop_assert!(levels.iter().any(|&l| l > 5), "in-range config refused: {e}");
            }
        }
    }

    /// QoS degradation is monotone under the pointwise order on
    /// configurations: raising any level never improves quality.
    #[test]
    fn synthetic_survey_qos_is_monotone_in_levels(
        lo in proptest::collection::vec(0u8..6, 2),
        bump in proptest::collection::vec(0u8..6, 2),
        tasks in 8u64..128,
    ) {
        let app = SyntheticSurvey::new();
        let input = InputParams::new(vec![tasks as f64]);
        let hi: Vec<u8> = lo.iter().zip(bump.iter()).map(|(&a, &d)| (a + d).min(5)).collect();
        let golden = app.golden(&input).unwrap();
        let q_lo = app.qos_degradation(
            &golden,
            &app.run(&input, &PhaseSchedule::constant(LevelConfig::new(lo))).unwrap(),
        );
        let q_hi = app.qos_degradation(
            &golden,
            &app.run(&input, &PhaseSchedule::constant(LevelConfig::new(hi))).unwrap(),
        );
        prop_assert!(
            q_lo <= q_hi + 1e-12,
            "raising levels improved QoS: {q_lo} -> {q_hi}"
        );
    }

    /// Validation accepts exactly the configurations whose levels are all
    /// within their block maxima.
    #[test]
    fn config_validation_matches_levels(levels in proptest::collection::vec(0u8..8, 3)) {
        let blocks = vec![
            BlockDescriptor::new("a", TechniqueKind::LoopPerforation, 5),
            BlockDescriptor::new("b", TechniqueKind::Memoization, 3),
            BlockDescriptor::new("c", TechniqueKind::LoopTruncation, 6),
        ];
        let cfg = LevelConfig::new(levels.clone());
        let ok = levels[0] <= 5 && levels[1] <= 3 && levels[2] <= 6;
        prop_assert_eq!(cfg.validate(&blocks).is_ok(), ok);
    }
}
