//! Approximable-block descriptors.

use serde::{Deserialize, Serialize};

/// Index of an approximable block within an application's block list.
///
/// Blocks are identified positionally; the order is fixed by the
/// application's [`crate::app::AppMeta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub usize);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AB{}", self.0)
    }
}

/// The approximation technique a block implements (paper Sec. 3.2, plus
/// the two survey techniques added for the non-paper workloads: precision
/// scaling and task skipping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechniqueKind {
    /// Skip a fraction of a loop's iterations (stride sampling).
    LoopPerforation,
    /// Drop the last few iterations of a loop.
    LoopTruncation,
    /// Compute-and-cache: reuse a cached result for most iterations.
    Memoization,
    /// Use an accuracy-controlling input parameter of the application.
    ParameterTuning,
    /// Compute at reduced numeric precision (coarser quantization step).
    PrecisionScaling,
    /// Skip whole tasks whose significance falls below a level threshold.
    TaskSkipping,
}

impl std::fmt::Display for TechniqueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TechniqueKind::LoopPerforation => "loop perforation",
            TechniqueKind::LoopTruncation => "loop truncation",
            TechniqueKind::Memoization => "memoization",
            TechniqueKind::ParameterTuning => "parameter tuning",
            TechniqueKind::PrecisionScaling => "precision scaling",
            TechniqueKind::TaskSkipping => "task skipping",
        };
        f.write_str(s)
    }
}

/// Static description of one approximable block.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
///
/// let b = BlockDescriptor::new("forces_on_elements", TechniqueKind::LoopPerforation, 5);
/// assert_eq!(b.num_levels(), 6); // levels 0..=5
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockDescriptor {
    /// Human-readable kernel name (e.g. `forces_on_elements`).
    pub name: String,
    /// The technique used to approximate this block.
    pub technique: TechniqueKind,
    /// Maximum approximation level; level 0 is always the accurate run.
    pub max_level: u8,
}

impl BlockDescriptor {
    /// Creates a descriptor.
    pub fn new(name: impl Into<String>, technique: TechniqueKind, max_level: u8) -> Self {
        BlockDescriptor {
            name: name.into(),
            technique,
            max_level,
        }
    }

    /// Number of discrete levels, including the accurate level 0.
    pub fn num_levels(&self) -> usize {
        self.max_level as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_displays_positionally() {
        assert_eq!(BlockId(2).to_string(), "AB2");
    }

    #[test]
    fn technique_kind_displays_paper_names() {
        assert_eq!(
            TechniqueKind::LoopPerforation.to_string(),
            "loop perforation"
        );
        assert_eq!(TechniqueKind::Memoization.to_string(), "memoization");
        assert_eq!(
            TechniqueKind::PrecisionScaling.to_string(),
            "precision scaling"
        );
        assert_eq!(TechniqueKind::TaskSkipping.to_string(), "task skipping");
    }

    #[test]
    fn num_levels_includes_accurate_level() {
        let b = BlockDescriptor::new("k", TechniqueKind::LoopTruncation, 0);
        assert_eq!(b.num_levels(), 1);
        let b = BlockDescriptor::new("k", TechniqueKind::LoopTruncation, 7);
        assert_eq!(b.num_levels(), 8);
    }
}
