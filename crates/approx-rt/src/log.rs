//! Call-context logging (paper Sec. 3.3).
//!
//! During training, the instrumented application records which
//! approximable block executed in which outer-loop iteration and how much
//! work it did. OPPROX uses the logs to (a) derive the control-flow
//! signature — the sequence of unique block call contexts — that the
//! decision tree classifies over, (b) count outer-loop iterations by how
//! often that sequence repeats, and (c) attribute work to blocks and
//! phases.

use serde::{Deserialize, Serialize};

/// One log record: a block executed during an outer-loop iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Outer-loop iteration index.
    pub iteration: u64,
    /// Index of the block that executed.
    pub block: usize,
    /// Work units the block performed in this call.
    pub work: u64,
}

/// An execution log of block call contexts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallContextLog {
    records: Vec<LogRecord>,
}

impl CallContextLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CallContextLog {
            records: Vec::new(),
        }
    }

    /// Records that `block` executed `work` units during `iteration`.
    pub fn record(&mut self, iteration: u64, block: usize, work: u64) {
        self.records.push(LogRecord {
            iteration,
            block,
            work,
        });
    }

    /// All raw records in execution order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The control-flow signature: the block sequence of the first
    /// complete outer-loop iteration. Two runs that execute their blocks
    /// in a different order (e.g. FFmpeg with swapped filters) get
    /// different signatures.
    pub fn control_flow_signature(&self) -> Vec<usize> {
        let Some(first_iter) = self.records.first().map(|r| r.iteration) else {
            return Vec::new();
        };
        self.records
            .iter()
            .take_while(|r| r.iteration == first_iter)
            .map(|r| r.block)
            .collect()
    }

    /// Number of distinct outer-loop iterations observed — the paper's
    /// "how many times a call-context sequence of ABs has repeated".
    pub fn outer_iterations(&self) -> u64 {
        let mut count = 0;
        let mut last = None;
        for r in &self.records {
            if last != Some(r.iteration) {
                count += 1;
                last = Some(r.iteration);
            }
        }
        count
    }

    /// Total work attributed to `block` across the whole log.
    pub fn work_of_block(&self, block: usize) -> u64 {
        self.records
            .iter()
            .filter(|r| r.block == block)
            .map(|r| r.work)
            .sum()
    }

    /// Total work in iterations `lo..hi` (half-open) — used to attribute
    /// work to phases.
    pub fn work_in_iteration_range(&self, lo: u64, hi: u64) -> u64 {
        self.records
            .iter()
            .filter(|r| r.iteration >= lo && r.iteration < hi)
            .map(|r| r.work)
            .sum()
    }

    /// Total work across all records.
    pub fn total_work(&self) -> u64 {
        self.records.iter().map(|r| r.work).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> CallContextLog {
        let mut log = CallContextLog::new();
        for it in 0..3u64 {
            log.record(it, 0, 10);
            log.record(it, 1, 20);
            log.record(it, 2, 5);
        }
        log
    }

    #[test]
    fn signature_is_first_iteration_sequence() {
        let log = sample_log();
        assert_eq!(log.control_flow_signature(), vec![0, 1, 2]);
        assert_eq!(
            CallContextLog::new().control_flow_signature(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn signature_distinguishes_block_order() {
        let mut swapped = CallContextLog::new();
        swapped.record(0, 1, 20);
        swapped.record(0, 0, 10);
        assert_ne!(
            swapped.control_flow_signature(),
            sample_log().control_flow_signature()
        );
    }

    #[test]
    fn outer_iterations_count_distinct() {
        assert_eq!(sample_log().outer_iterations(), 3);
        assert_eq!(CallContextLog::new().outer_iterations(), 0);
    }

    #[test]
    fn work_attribution() {
        let log = sample_log();
        assert_eq!(log.work_of_block(1), 60);
        assert_eq!(log.work_of_block(9), 0);
        assert_eq!(log.total_work(), 105);
        assert_eq!(log.work_in_iteration_range(1, 3), 70);
        assert_eq!(log.work_in_iteration_range(0, 0), 0);
    }

    #[test]
    fn len_and_is_empty() {
        assert!(CallContextLog::new().is_empty());
        assert_eq!(sample_log().len(), 9);
    }
}
