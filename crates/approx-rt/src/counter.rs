//! Abstract work accounting.
//!
//! The paper expresses speedup as the ratio of the number of instructions
//! executed by the accurate run to that of the approximate run. Our
//! applications increment a [`WorkCounter`] with deterministic
//! instruction-like unit counts in every kernel, which makes the metric
//! exact and machine independent.

/// Accumulates abstract work units.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::WorkCounter;
///
/// let mut w = WorkCounter::new();
/// w.add(10);
/// w.add(5);
/// assert_eq!(w.total(), 15);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkCounter {
    total: u64,
}

impl WorkCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        WorkCounter { total: 0 }
    }

    /// Adds `units` of work.
    #[inline]
    pub fn add(&mut self, units: u64) {
        self.total += units;
    }

    /// Total work accumulated so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.total = 0;
    }
}

/// Computes speedup as defined in the paper (Sec. 3.6):
/// `S = work(accurate) / work(approximate)`.
///
/// Returns `f64::INFINITY` when the approximate run did zero work and the
/// accurate run did not; `1.0` when both did zero work.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::counter::speedup;
/// assert_eq!(speedup(200, 100), 2.0);
/// assert!(speedup(100, 120) < 1.0); // approximation can slow things down
/// ```
pub fn speedup(accurate_work: u64, approximate_work: u64) -> f64 {
    if approximate_work == 0 {
        if accurate_work == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        accurate_work as f64 / approximate_work as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut w = WorkCounter::new();
        assert_eq!(w.total(), 0);
        w.add(3);
        w.add(0);
        w.add(7);
        assert_eq!(w.total(), 10);
        w.reset();
        assert_eq!(w.total(), 0);
    }

    #[test]
    fn speedup_ratio_semantics() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(100, 100), 1.0);
        assert_eq!(speedup(50, 100), 0.5);
    }

    #[test]
    fn speedup_zero_work_edge_cases() {
        assert_eq!(speedup(0, 0), 1.0);
        assert_eq!(speedup(10, 0), f64::INFINITY);
        assert_eq!(speedup(0, 10), 0.0);
    }
}
