//! Abstract work accounting.
//!
//! The paper expresses speedup as the ratio of the number of instructions
//! executed by the accurate run to that of the approximate run. Our
//! applications increment a [`WorkCounter`] with deterministic
//! instruction-like unit counts in every kernel, which makes the metric
//! exact and machine independent.

/// Accumulates abstract work units, plus an optional second channel of
/// abstract *energy* units (the Approxify-style multi-resource cost:
/// memory traffic and wide arithmetic cost more energy than they cost
/// time). Applications that do not charge energy leave the channel at
/// zero; budget division can then remain single-resource.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::WorkCounter;
///
/// let mut w = WorkCounter::new();
/// w.add(10);
/// w.charge(5, 12); // 5 work units, 12 energy units
/// assert_eq!(w.total(), 15);
/// assert_eq!(w.energy(), 12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkCounter {
    total: u64,
    energy: u64,
}

impl WorkCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        WorkCounter {
            total: 0,
            energy: 0,
        }
    }

    /// Adds `units` of work.
    #[inline]
    pub fn add(&mut self, units: u64) {
        self.total += units;
    }

    /// Adds `units` of abstract energy without touching the work channel.
    #[inline]
    pub fn add_energy(&mut self, units: u64) {
        self.energy += units;
    }

    /// Adds to both channels at once: `work` work units and `energy`
    /// energy units.
    #[inline]
    pub fn charge(&mut self, work: u64, energy: u64) {
        self.total += work;
        self.energy += energy;
    }

    /// Total work accumulated so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total abstract energy accumulated so far (zero when the
    /// application never charged the channel).
    pub fn energy(&self) -> u64 {
        self.energy
    }

    /// Resets both channels to zero.
    pub fn reset(&mut self) {
        self.total = 0;
        self.energy = 0;
    }
}

/// Computes speedup as defined in the paper (Sec. 3.6):
/// `S = work(accurate) / work(approximate)`.
///
/// Returns `f64::INFINITY` when the approximate run did zero work and the
/// accurate run did not; `1.0` when both did zero work.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::counter::speedup;
/// assert_eq!(speedup(200, 100), 2.0);
/// assert!(speedup(100, 120) < 1.0); // approximation can slow things down
/// ```
pub fn speedup(accurate_work: u64, approximate_work: u64) -> f64 {
    if approximate_work == 0 {
        if accurate_work == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        accurate_work as f64 / approximate_work as f64
    }
}

/// Energy saving ratio, with the same conventions as [`speedup`]:
/// `E = energy(accurate) / energy(approximate)`.
///
/// A second objective for multi-resource budget division: an optimizer
/// can weigh time speedup against energy saving when both channels of a
/// [`WorkCounter`] are charged.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::counter::energy_saving;
/// assert_eq!(energy_saving(300, 100), 3.0);
/// assert_eq!(energy_saving(0, 0), 1.0); // app never charged the channel
/// ```
pub fn energy_saving(accurate_energy: u64, approximate_energy: u64) -> f64 {
    speedup(accurate_energy, approximate_energy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut w = WorkCounter::new();
        assert_eq!(w.total(), 0);
        w.add(3);
        w.add(0);
        w.add(7);
        assert_eq!(w.total(), 10);
        w.reset();
        assert_eq!(w.total(), 0);
    }

    #[test]
    fn energy_channel_is_independent_of_work() {
        let mut w = WorkCounter::new();
        w.add(5);
        assert_eq!(w.energy(), 0, "work must not leak into energy");
        w.add_energy(9);
        assert_eq!(w.total(), 5);
        assert_eq!(w.energy(), 9);
        w.charge(2, 3);
        assert_eq!(w.total(), 7);
        assert_eq!(w.energy(), 12);
        w.reset();
        assert_eq!((w.total(), w.energy()), (0, 0));
    }

    #[test]
    fn energy_saving_matches_speedup_semantics() {
        assert_eq!(energy_saving(100, 50), 2.0);
        assert_eq!(energy_saving(0, 10), 0.0);
        assert_eq!(energy_saving(10, 0), f64::INFINITY);
    }

    #[test]
    fn speedup_ratio_semantics() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(100, 100), 1.0);
        assert_eq!(speedup(50, 100), 0.5);
    }

    #[test]
    fn speedup_zero_work_edge_cases() {
        assert_eq!(speedup(0, 0), 1.0);
        assert_eq!(speedup(10, 0), f64::INFINITY);
        assert_eq!(speedup(0, 10), 0.0);
    }
}
