//! Approximation-level configurations and configuration-space enumeration.

use crate::block::BlockDescriptor;
use crate::error::RuntimeError;
use rand_like::SimpleRng;
use serde::{Deserialize, Serialize};

/// An assignment of one approximation level per approximable block.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::LevelConfig;
///
/// let accurate = LevelConfig::accurate(3);
/// assert!(accurate.is_accurate());
/// let cfg = LevelConfig::new(vec![0, 2, 5]);
/// assert_eq!(cfg.level(2), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LevelConfig {
    levels: Vec<u8>,
}

impl LevelConfig {
    /// Creates a configuration from explicit levels.
    pub fn new(levels: Vec<u8>) -> Self {
        LevelConfig { levels }
    }

    /// The all-zero (accurate) configuration for `num_blocks` blocks.
    pub fn accurate(num_blocks: usize) -> Self {
        LevelConfig {
            levels: vec![0; num_blocks],
        }
    }

    /// Number of blocks the configuration covers.
    pub fn num_blocks(&self) -> usize {
        self.levels.len()
    }

    /// The level assigned to block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn level(&self, block: usize) -> u8 {
        self.levels[block]
    }

    /// All levels, in block order.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Whether every block runs accurately.
    pub fn is_accurate(&self) -> bool {
        self.levels.iter().all(|&l| l == 0)
    }

    /// Returns a copy with block `block` set to `level`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn with_level(&self, block: usize, level: u8) -> LevelConfig {
        let mut levels = self.levels.clone();
        levels[block] = level;
        LevelConfig { levels }
    }

    /// Validates the configuration against block descriptors.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::BlockCountMismatch`] on a length mismatch.
    /// * [`RuntimeError::LevelOutOfRange`] if any level exceeds its
    ///   block's maximum.
    pub fn validate(&self, blocks: &[BlockDescriptor]) -> Result<(), RuntimeError> {
        if self.levels.len() != blocks.len() {
            return Err(RuntimeError::BlockCountMismatch {
                expected: blocks.len(),
                actual: self.levels.len(),
            });
        }
        for (l, b) in self.levels.iter().zip(blocks.iter()) {
            if *l > b.max_level {
                return Err(RuntimeError::LevelOutOfRange {
                    block: b.name.clone(),
                    level: *l,
                    max: b.max_level,
                });
            }
        }
        Ok(())
    }
}

/// Enumerates the full cartesian level space of the given blocks:
/// every combination of `0..=max_level` per block, accurate config
/// first, block 0 varying fastest (ascending mixed-radix count).
///
/// The space can be large (the paper reports up to ~2M combinations for
/// Bodytrack), so enumeration is lazy: configurations are produced one
/// odometer step at a time and the full space is never materialized.
/// Collect only when a `Vec` is genuinely needed, or prefer
/// [`sample_configs`] for sparse sampling.
pub fn enumerate_configs(blocks: &[BlockDescriptor]) -> ConfigEnumerator<'_> {
    ConfigEnumerator {
        blocks,
        current: vec![0u8; blocks.len()],
        started: false,
    }
}

/// Lazy iterator over the cartesian level space; see
/// [`enumerate_configs`].
#[derive(Debug, Clone)]
pub struct ConfigEnumerator<'a> {
    blocks: &'a [BlockDescriptor],
    current: Vec<u8>,
    started: bool,
}

impl Iterator for ConfigEnumerator<'_> {
    type Item = LevelConfig;

    fn next(&mut self) -> Option<LevelConfig> {
        if !self.started {
            self.started = true;
            return Some(LevelConfig::accurate(self.blocks.len()));
        }
        // Odometer increment over the mixed-radix level space. Once every
        // position sits at its maximum the scan falls off the end and the
        // iterator stays exhausted.
        let mut pos = 0;
        loop {
            if pos == self.blocks.len() {
                return None;
            }
            if self.current[pos] < self.blocks[pos].max_level {
                self.current[pos] += 1;
                for c in self.current.iter_mut().take(pos) {
                    *c = 0;
                }
                break;
            }
            pos += 1;
        }
        Some(LevelConfig::new(self.current.clone()))
    }
}

/// Total number of level combinations without materializing them.
/// Saturates at `u64::MAX` on pathological block counts (e.g. 64 blocks
/// of 4 levels is 2^128 combinations) instead of overflowing; callers
/// compare the result against enumeration limits, and a saturated size
/// routes to the pruned/capped search exactly like any huge space.
pub fn config_space_size(blocks: &[BlockDescriptor]) -> u64 {
    blocks
        .iter()
        .fold(1u64, |acc, b| acc.saturating_mul(b.num_levels() as u64))
}

/// Draws `count` random sparse configurations (paper Sec. 3.3: "random
/// sparse samples ... where approximation levels in all the ABs are
/// arbitrarily set"). Deterministic for a given seed. The accurate
/// configuration is never returned.
pub fn sample_configs(blocks: &[BlockDescriptor], count: usize, seed: u64) -> Vec<LevelConfig> {
    let mut rng = SimpleRng::new(seed);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let levels: Vec<u8> = blocks
            .iter()
            .map(|b| (rng.next_u64() % (b.max_level as u64 + 1)) as u8)
            .collect();
        let cfg = LevelConfig::new(levels);
        if !cfg.is_accurate() {
            out.push(cfg);
        }
    }
    out
}

/// Enumerates the *local* sweep for one block: every nonzero level for
/// `block`, all other blocks accurate (paper Sec. 3.3: exhaustive
/// per-block coverage for local models).
pub fn local_sweep(blocks: &[BlockDescriptor], block: usize) -> Vec<LevelConfig> {
    (1..=blocks[block].max_level)
        .map(|l| LevelConfig::accurate(blocks.len()).with_level(block, l))
        .collect()
}

/// A tiny deterministic xorshift RNG so this crate does not need a `rand`
/// dependency; quality is irrelevant here (it only spreads samples).
mod rand_like {
    /// Deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct SimpleRng(u64);

    impl SimpleRng {
        /// Seeds the generator (zero is mapped to a fixed odd constant).
        pub fn new(seed: u64) -> Self {
            SimpleRng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::TechniqueKind;

    fn blocks() -> Vec<BlockDescriptor> {
        vec![
            BlockDescriptor::new("a", TechniqueKind::LoopPerforation, 2),
            BlockDescriptor::new("b", TechniqueKind::Memoization, 1),
        ]
    }

    #[test]
    fn accurate_config_is_all_zero() {
        let c = LevelConfig::accurate(3);
        assert!(c.is_accurate());
        assert_eq!(c.levels(), &[0, 0, 0]);
        assert!(!c.with_level(1, 2).is_accurate());
    }

    #[test]
    fn validate_catches_shape_and_range() {
        let bs = blocks();
        assert!(LevelConfig::new(vec![0]).validate(&bs).is_err());
        assert!(LevelConfig::new(vec![0, 2]).validate(&bs).is_err());
        assert!(LevelConfig::new(vec![2, 1]).validate(&bs).is_ok());
    }

    #[test]
    fn enumerate_covers_full_space_once() {
        let bs = blocks();
        let all: Vec<LevelConfig> = enumerate_configs(&bs).collect();
        assert_eq!(all.len(), 6); // 3 * 2
        assert_eq!(all.len() as u64, config_space_size(&bs));
        let mut set = std::collections::HashSet::new();
        for c in &all {
            assert!(set.insert(c.clone()), "duplicate {c:?}");
            assert!(c.validate(&bs).is_ok());
        }
        assert!(all[0].is_accurate());
    }

    #[test]
    fn space_size_matches_paper_style_products() {
        // 4 blocks with 6 levels each -> 1296 combos per phase.
        let bs: Vec<BlockDescriptor> = (0..4)
            .map(|i| BlockDescriptor::new(format!("b{i}"), TechniqueKind::LoopPerforation, 5))
            .collect();
        assert_eq!(config_space_size(&bs), 1296);
    }

    #[test]
    fn enumeration_is_lazy_and_stays_exhausted() {
        let bs = blocks();
        let mut it = enumerate_configs(&bs);
        assert!(it.next().unwrap().is_accurate());
        assert_eq!(it.by_ref().count(), 5);
        assert_eq!(it.next(), None, "exhausted enumerator must stay empty");
    }

    #[test]
    fn space_size_saturates_on_pathological_block_counts() {
        // 64 blocks of 4 levels each is 2^128 combinations: far past
        // u64. The size must saturate, not wrap to something small that
        // would trick the optimizer into exhaustive enumeration.
        let bs: Vec<BlockDescriptor> = (0..64)
            .map(|i| BlockDescriptor::new(format!("b{i}"), TechniqueKind::LoopPerforation, 3))
            .collect();
        assert_eq!(config_space_size(&bs), u64::MAX);
        // A single block past 2^64 levels is impossible (levels are u8),
        // but a long chain of modest blocks must still be monotone:
        // adding a block never shrinks the reported size.
        let mut prev = 1u64;
        for n in 1..=64 {
            let size = config_space_size(&bs[..n]);
            assert!(size >= prev, "size shrank at {n} blocks");
            prev = size;
        }
    }

    #[test]
    fn samples_are_deterministic_valid_and_nonaccurate() {
        let bs = blocks();
        let s1 = sample_configs(&bs, 20, 7);
        let s2 = sample_configs(&bs, 20, 7);
        assert_eq!(s1, s2);
        for c in &s1 {
            assert!(c.validate(&bs).is_ok());
            assert!(!c.is_accurate());
        }
        assert_ne!(sample_configs(&bs, 20, 8), s1);
    }

    #[test]
    fn local_sweep_touches_only_one_block() {
        let bs = blocks();
        let sweep = local_sweep(&bs, 0);
        assert_eq!(sweep.len(), 2); // levels 1, 2
        for (i, c) in sweep.iter().enumerate() {
            assert_eq!(c.level(0), i as u8 + 1);
            assert_eq!(c.level(1), 0);
        }
    }
}
