//! Approximation runtime for the OPPROX reproduction.
//!
//! The paper assumes applications expose *approximable blocks* (ABs) whose
//! *approximation levels* (ALs) can be set per execution phase through
//! environment variables. This crate is the Rust equivalent of that
//! contract: a small runtime that applications link against to
//!
//! * describe their ABs ([`block`]),
//! * implement the four approximation techniques the paper evaluates —
//!   loop perforation, loop truncation, memoization, and parameter tuning
//!   ([`technique`]),
//! * receive a per-phase level assignment ([`schedule`], [`config`]),
//! * account for the work they perform in abstract instruction-like units
//!   ([`counter`]),
//! * log the call contexts of their blocks ([`log`]), and
//! * measure output quality ([`qos`]).
//!
//! Applications implement the [`app::ApproxApp`] trait on top of these
//! pieces; the OPPROX core drives them through it.
//!
//! # Example
//!
//! ```
//! use opprox_approx_rt::technique::perforated_indices;
//!
//! // Level 0 visits every element; level 2 visits every third one.
//! let full: Vec<usize> = perforated_indices(9, 0).collect();
//! assert_eq!(full.len(), 9);
//! let sparse: Vec<usize> = perforated_indices(9, 2).collect();
//! assert_eq!(sparse, vec![0, 3, 6]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod block;
pub mod config;
pub mod counter;
pub mod error;
pub mod log;
pub mod qos;
pub mod schedule;
pub mod technique;

pub use app::{run_with_timeout, ApproxApp, InputParams, RunResult};
pub use block::{BlockDescriptor, BlockId};
pub use config::LevelConfig;
pub use counter::WorkCounter;
pub use error::RuntimeError;
pub use schedule::PhaseSchedule;
