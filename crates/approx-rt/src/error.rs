//! Error type for the approximation runtime.

use std::fmt;

/// Errors produced by the approximation runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A level configuration had the wrong number of blocks.
    BlockCountMismatch {
        /// Blocks the application declares.
        expected: usize,
        /// Blocks the configuration provides.
        actual: usize,
    },
    /// A level exceeded the block's maximum.
    LevelOutOfRange {
        /// The block whose level was out of range.
        block: String,
        /// The offending level.
        level: u8,
        /// The block's maximum level.
        max: u8,
    },
    /// Input parameters did not match the application's declaration.
    InvalidInput(String),
    /// A phase schedule was malformed (zero phases, zero expected
    /// iterations, or per-phase configs of inconsistent shape).
    InvalidSchedule(String),
    /// The execution exceeded its wall-clock budget (see
    /// [`crate::app::run_with_timeout`]).
    Timeout {
        /// Milliseconds the execution actually took.
        elapsed_ms: u64,
        /// The budget it was given.
        budget_ms: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::BlockCountMismatch { expected, actual } => write!(
                f,
                "level configuration covers {actual} blocks, application declares {expected}"
            ),
            RuntimeError::LevelOutOfRange { block, level, max } => {
                write!(f, "level {level} for block `{block}` exceeds maximum {max}")
            }
            RuntimeError::InvalidInput(msg) => write!(f, "invalid input parameters: {msg}"),
            RuntimeError::InvalidSchedule(msg) => write!(f, "invalid phase schedule: {msg}"),
            RuntimeError::Timeout {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "execution took {elapsed_ms} ms, exceeding its {budget_ms} ms budget"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::BlockCountMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("3 blocks"));
        let e = RuntimeError::LevelOutOfRange {
            block: "forces".into(),
            level: 9,
            max: 5,
        };
        assert!(e.to_string().contains("forces"));
        assert!(e.to_string().contains('9'));
    }
}
