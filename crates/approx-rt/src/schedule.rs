//! Phase schedules: per-phase approximation-level assignments.
//!
//! The paper divides the outer loop's `I` iterations into `N` phases of
//! approximately `I/N` iterations each, with the remainder added to the
//! final phase (footnote 2). Because `I` can itself depend on the
//! approximation (e.g. LULESH's convergence loop), the schedule carries an
//! *expected* iteration count — measured from the accurate run — and maps
//! every iteration at or beyond the expected end into the final phase.

use crate::config::LevelConfig;
use crate::error::RuntimeError;
use serde::{Deserialize, Serialize};

/// A per-phase assignment of approximation levels.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::{LevelConfig, PhaseSchedule};
///
/// // Two blocks, four phases: approximate only in the last phase.
/// let accurate = LevelConfig::accurate(2);
/// let hot = LevelConfig::new(vec![3, 1]);
/// let sched = PhaseSchedule::new(
///     vec![accurate.clone(), accurate.clone(), accurate.clone(), hot.clone()],
///     100,
/// ).unwrap();
/// assert_eq!(sched.phase_of(10), 0);
/// assert_eq!(sched.phase_of(99), 3);
/// assert_eq!(sched.config_at(80), &hot);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSchedule {
    configs: Vec<LevelConfig>,
    expected_iters: u64,
}

impl PhaseSchedule {
    /// Creates a schedule from one configuration per phase.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidSchedule`] when `configs` is empty,
    /// the configs disagree on block count, or `expected_iters == 0`.
    pub fn new(configs: Vec<LevelConfig>, expected_iters: u64) -> Result<Self, RuntimeError> {
        if configs.is_empty() {
            return Err(RuntimeError::InvalidSchedule(
                "a schedule needs at least one phase".into(),
            ));
        }
        if expected_iters == 0 {
            return Err(RuntimeError::InvalidSchedule(
                "expected iteration count must be positive".into(),
            ));
        }
        let nb = configs[0].num_blocks();
        if configs.iter().any(|c| c.num_blocks() != nb) {
            return Err(RuntimeError::InvalidSchedule(
                "all phase configs must cover the same blocks".into(),
            ));
        }
        Ok(PhaseSchedule {
            configs,
            expected_iters,
        })
    }

    /// The fully accurate single-phase schedule for `num_blocks` blocks.
    pub fn accurate(num_blocks: usize) -> Self {
        PhaseSchedule {
            configs: vec![LevelConfig::accurate(num_blocks)],
            expected_iters: 1,
        }
    }

    /// A phase-agnostic schedule applying `config` to the whole execution
    /// (what the prior-work baseline does).
    pub fn constant(config: LevelConfig) -> Self {
        PhaseSchedule {
            configs: vec![config],
            expected_iters: 1,
        }
    }

    /// A schedule with `num_phases` phases that applies `config` only in
    /// phase `phase` and runs every other phase accurately — the probe
    /// the paper uses to characterize phase-specific behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidSchedule`] when `phase >= num_phases`
    /// or the other [`PhaseSchedule::new`] conditions fail.
    pub fn single_phase(
        config: LevelConfig,
        phase: usize,
        num_phases: usize,
        expected_iters: u64,
    ) -> Result<Self, RuntimeError> {
        if phase >= num_phases {
            return Err(RuntimeError::InvalidSchedule(format!(
                "phase {phase} out of range for {num_phases} phases"
            )));
        }
        let nb = config.num_blocks();
        let configs = (0..num_phases)
            .map(|p| {
                if p == phase {
                    config.clone()
                } else {
                    LevelConfig::accurate(nb)
                }
            })
            .collect();
        PhaseSchedule::new(configs, expected_iters)
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.configs.len()
    }

    /// Number of blocks each phase config covers.
    pub fn num_blocks(&self) -> usize {
        self.configs[0].num_blocks()
    }

    /// The expected (accurate-run) outer-loop iteration count.
    pub fn expected_iters(&self) -> u64 {
        self.expected_iters
    }

    /// The per-phase configurations, in phase order.
    pub fn configs(&self) -> &[LevelConfig] {
        &self.configs
    }

    /// Maps an outer-loop iteration index to its phase.
    ///
    /// Phases have `⌊expected/N⌋` iterations each; the remainder — and any
    /// iterations beyond the expected count — belong to the final phase.
    pub fn phase_of(&self, iter: u64) -> usize {
        let n = self.configs.len() as u64;
        let base = (self.expected_iters / n).max(1);
        ((iter / base).min(n - 1)) as usize
    }

    /// The level configuration in force at iteration `iter`.
    pub fn config_at(&self, iter: u64) -> &LevelConfig {
        &self.configs[self.phase_of(iter)]
    }

    /// The level of `block` at iteration `iter` — the runtime call that
    /// replaces the paper's per-phase environment variables.
    pub fn level_at(&self, iter: u64, block: usize) -> u8 {
        self.config_at(iter).level(block)
    }

    /// Whether the whole schedule is accurate (no approximation anywhere).
    pub fn is_accurate(&self) -> bool {
        self.configs.iter().all(LevelConfig::is_accurate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shape() {
        assert!(PhaseSchedule::new(vec![], 10).is_err());
        assert!(PhaseSchedule::new(vec![LevelConfig::accurate(2)], 0).is_err());
        assert!(
            PhaseSchedule::new(vec![LevelConfig::accurate(2), LevelConfig::accurate(3)], 10)
                .is_err()
        );
    }

    #[test]
    fn phases_partition_expected_iterations() {
        let cfgs = vec![LevelConfig::accurate(1); 4];
        let s = PhaseSchedule::new(cfgs, 10).unwrap();
        // base = 2; phases: [0,1] [2,3] [4,5] [6..] with remainder to last.
        let phases: Vec<usize> = (0..10).map(|i| s.phase_of(i)).collect();
        assert_eq!(phases, vec![0, 0, 1, 1, 2, 2, 3, 3, 3, 3]);
        // Beyond expected end stays in the final phase.
        assert_eq!(s.phase_of(500), 3);
    }

    #[test]
    fn iterations_at_and_beyond_expected_end_map_to_final_phase() {
        // The expected count came from the *accurate* run; an approximate
        // run can converge later, so every overshoot iteration must stay
        // in the last phase rather than index out of range.
        let s = PhaseSchedule::new(vec![LevelConfig::accurate(1); 3], 9).unwrap();
        assert_eq!(s.phase_of(8), 2); // last expected iteration
        assert_eq!(s.phase_of(9), 2); // exactly the expected count
        assert_eq!(s.phase_of(10), 2); // one past
        assert_eq!(s.phase_of(u64::MAX), 2); // arbitrarily far past
    }

    #[test]
    fn single_phase_schedule_accepts_any_iteration() {
        let s = PhaseSchedule::new(vec![LevelConfig::accurate(2)], 7).unwrap();
        for iter in [0, 6, 7, 8, 1_000_000, u64::MAX] {
            assert_eq!(s.phase_of(iter), 0, "iteration {iter}");
        }
    }

    #[test]
    fn divisible_iterations_split_evenly() {
        let cfgs = vec![LevelConfig::accurate(1); 4];
        let s = PhaseSchedule::new(cfgs, 8).unwrap();
        let counts: Vec<usize> = (0..4)
            .map(|p| (0..8).filter(|&i| s.phase_of(i) == p).count())
            .collect();
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn fewer_iterations_than_phases_collapse_sanely() {
        let cfgs = vec![LevelConfig::accurate(1); 8];
        let s = PhaseSchedule::new(cfgs, 3).unwrap();
        // base clamps to 1: iterations 0,1,2 -> phases 0,1,2.
        assert_eq!(s.phase_of(0), 0);
        assert_eq!(s.phase_of(2), 2);
        assert_eq!(s.phase_of(7), 7);
        assert_eq!(s.phase_of(100), 7);
    }

    #[test]
    fn single_phase_probe_is_accurate_elsewhere() {
        let hot = LevelConfig::new(vec![2, 3]);
        let s = PhaseSchedule::single_phase(hot.clone(), 1, 4, 100).unwrap();
        assert_eq!(s.num_phases(), 4);
        assert!(s.config_at(10).is_accurate()); // phase 0
        assert_eq!(s.config_at(30), &hot); // phase 1
        assert!(s.config_at(60).is_accurate()); // phase 2
        assert!(s.config_at(99).is_accurate()); // phase 3
        assert!(PhaseSchedule::single_phase(hot, 4, 4, 100).is_err());
    }

    #[test]
    fn constant_schedule_applies_everywhere() {
        let cfg = LevelConfig::new(vec![1]);
        let s = PhaseSchedule::constant(cfg.clone());
        assert_eq!(s.config_at(0), &cfg);
        assert_eq!(s.config_at(12345), &cfg);
        assert!(!s.is_accurate());
    }

    #[test]
    fn accurate_schedule_reports_accurate() {
        let s = PhaseSchedule::accurate(4);
        assert!(s.is_accurate());
        assert_eq!(s.level_at(9, 3), 0);
    }
}
