//! The application contract the OPPROX core drives.

use crate::block::BlockDescriptor;
use crate::error::RuntimeError;
use crate::log::CallContextLog;
use crate::qos::relative_distortion;
use crate::schedule::PhaseSchedule;
use serde::{Deserialize, Serialize};

/// A concrete setting of an application's input parameters, in the order
/// declared by [`AppMeta::input_param_names`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputParams {
    values: Vec<f64>,
}

impl InputParams {
    /// Creates input parameters from raw values.
    pub fn new(values: Vec<f64>) -> Self {
        InputParams { values }
    }

    /// The raw parameter values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the parameter list is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl From<Vec<f64>> for InputParams {
    fn from(values: Vec<f64>) -> Self {
        InputParams::new(values)
    }
}

/// Static metadata of an approximable application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppMeta {
    /// Application name (e.g. `LULESH`).
    pub name: String,
    /// Names of the input parameters, in [`InputParams`] order.
    pub input_param_names: Vec<String>,
    /// The approximable blocks, in [`crate::config::LevelConfig`] order.
    pub blocks: Vec<BlockDescriptor>,
}

impl AppMeta {
    /// Number of approximable blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Validates that `input` matches the declared parameter count.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidInput`] on a count mismatch.
    pub fn validate_input(&self, input: &InputParams) -> Result<(), RuntimeError> {
        if input.len() != self.input_param_names.len() {
            return Err(RuntimeError::InvalidInput(format!(
                "{} expects {} parameters ({:?}), got {}",
                self.name,
                self.input_param_names.len(),
                self.input_param_names,
                input.len()
            )));
        }
        Ok(())
    }

    /// Validates a schedule's block arity and levels against this app.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::config::LevelConfig::validate`] errors for each phase config.
    pub fn validate_schedule(&self, schedule: &PhaseSchedule) -> Result<(), RuntimeError> {
        for cfg in schedule.configs() {
            cfg.validate(&self.blocks)?;
        }
        Ok(())
    }
}

/// The result of one (exact or approximate) application execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The application's output vector (domain specific: final energies,
    /// particle positions, pixel values, …).
    pub output: Vec<f64>,
    /// Total abstract work units executed.
    pub work: u64,
    /// Number of outer-loop iterations performed.
    pub outer_iters: u64,
    /// The call-context log collected during the run.
    pub log: CallContextLog,
}

impl RunResult {
    /// Speedup of this run relative to `self` being the accurate run:
    /// `self.work / approx.work`.
    pub fn speedup_over(&self, approx: &RunResult) -> f64 {
        crate::counter::speedup(self.work, approx.work)
    }
}

/// An application with tunable approximable blocks — the unit OPPROX
/// optimizes.
///
/// Implementations must be **deterministic**: the same input and schedule
/// must produce the same output, work count, and log. All five benchmark
/// ports in `opprox-apps` satisfy this by seeding their internal RNGs from
/// the input parameters.
///
/// The `Sync` bound allows the training sampler to profile several
/// representative inputs in parallel; since `run` takes `&self`,
/// implementations are naturally stateless between runs.
pub trait ApproxApp: Sync {
    /// Static metadata: name, parameters, blocks.
    fn meta(&self) -> &AppMeta;

    /// Executes the application under the given schedule.
    ///
    /// # Errors
    ///
    /// Implementations reject malformed inputs and schedules with
    /// [`RuntimeError`].
    fn run(&self, input: &InputParams, schedule: &PhaseSchedule)
        -> Result<RunResult, RuntimeError>;

    /// QoS degradation (lower is better, 0 = perfect) of an approximate
    /// run against the exact run. The default is the paper's relative
    /// distortion; applications with a domain metric override this.
    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        relative_distortion(&exact.output, &approx.output)
    }

    /// Representative training inputs (paper Sec. 3.1, accuracy
    /// specification item 1).
    fn representative_inputs(&self) -> Vec<InputParams>;

    /// Convenience: runs the fully accurate execution.
    ///
    /// # Errors
    ///
    /// Propagates [`ApproxApp::run`] errors.
    fn golden(&self, input: &InputParams) -> Result<RunResult, RuntimeError> {
        let schedule = PhaseSchedule::accurate(self.meta().num_blocks());
        self.run(input, &schedule)
    }
}

/// Runs `app` under a wall-clock budget, timing the execution and
/// rejecting results that arrive late.
///
/// Applications run in-process and cooperatively, so the check is
/// post-hoc: the run is not interrupted mid-flight, but a slow execution
/// is discarded and reported as [`RuntimeError::Timeout`] instead of
/// being treated as a valid observation. The OPPROX evaluation engine and
/// the benchmark probe runner both route timed executions through here.
///
/// # Errors
///
/// [`RuntimeError::Timeout`] when the run exceeds `budget_ms`; otherwise
/// propagates [`ApproxApp::run`] errors.
pub fn run_with_timeout(
    app: &dyn ApproxApp,
    input: &InputParams,
    schedule: &PhaseSchedule,
    budget_ms: u64,
) -> Result<RunResult, RuntimeError> {
    let start = std::time::Instant::now();
    let result = app.run(input, schedule)?;
    let elapsed_ms = start.elapsed().as_millis() as u64;
    if elapsed_ms > budget_ms {
        return Err(RuntimeError::Timeout {
            elapsed_ms,
            budget_ms,
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::TechniqueKind;
    use crate::config::LevelConfig;

    fn meta() -> AppMeta {
        AppMeta {
            name: "toy".into(),
            input_param_names: vec!["n".into()],
            blocks: vec![BlockDescriptor::new(
                "kernel",
                TechniqueKind::LoopPerforation,
                3,
            )],
        }
    }

    /// A minimal app: sums 0..n with a perforable loop.
    struct Toy {
        meta: AppMeta,
    }

    impl ApproxApp for Toy {
        fn meta(&self) -> &AppMeta {
            &self.meta
        }

        fn run(
            &self,
            input: &InputParams,
            schedule: &PhaseSchedule,
        ) -> Result<RunResult, RuntimeError> {
            self.meta.validate_input(input)?;
            self.meta.validate_schedule(schedule)?;
            let n = input.get(0) as usize;
            let mut log = CallContextLog::new();
            let mut sum = 0.0;
            let mut work = 0u64;
            for it in 0..4u64 {
                let level = schedule.level_at(it, 0);
                let mut w = 0u64;
                for i in crate::technique::perforated_indices(n, level) {
                    sum += i as f64;
                    w += 1;
                }
                work += w;
                log.record(it, 0, w);
            }
            Ok(RunResult {
                output: vec![sum],
                work,
                outer_iters: 4,
                log,
            })
        }

        fn representative_inputs(&self) -> Vec<InputParams> {
            vec![InputParams::new(vec![16.0])]
        }
    }

    #[test]
    fn golden_runs_accurately() {
        let app = Toy { meta: meta() };
        let input = InputParams::new(vec![10.0]);
        let g = app.golden(&input).unwrap();
        assert_eq!(g.output[0], 4.0 * 45.0);
        assert_eq!(g.work, 40);
        assert_eq!(g.log.outer_iterations(), 4);
    }

    #[test]
    fn approximation_reduces_work_and_degrades_qos() {
        let app = Toy { meta: meta() };
        let input = InputParams::new(vec![10.0]);
        let exact = app.golden(&input).unwrap();
        let approx = app
            .run(&input, &PhaseSchedule::constant(LevelConfig::new(vec![3])))
            .unwrap();
        assert!(approx.work < exact.work);
        assert!(exact.speedup_over(&approx) > 1.0);
        assert!(app.qos_degradation(&exact, &approx) > 0.0);
    }

    #[test]
    fn input_validation_rejects_wrong_arity() {
        let app = Toy { meta: meta() };
        let bad = InputParams::new(vec![1.0, 2.0]);
        assert!(app.golden(&bad).is_err());
    }

    #[test]
    fn schedule_validation_rejects_out_of_range_levels() {
        let app = Toy { meta: meta() };
        let input = InputParams::new(vec![10.0]);
        let bad = PhaseSchedule::constant(LevelConfig::new(vec![9]));
        assert!(app.run(&input, &bad).is_err());
    }

    #[test]
    fn run_with_timeout_passes_fast_runs_and_cuts_slow_ones() {
        let app = Toy { meta: meta() };
        let input = InputParams::new(vec![10.0]);
        let schedule = PhaseSchedule::accurate(1);
        // A generous budget passes the result through untouched.
        let ok = run_with_timeout(&app, &input, &schedule, 60_000).unwrap();
        assert_eq!(ok.output[0], 4.0 * 45.0);

        /// Wraps Toy with an artificial stall to trip the budget.
        struct Slow {
            inner: Toy,
        }
        impl ApproxApp for Slow {
            fn meta(&self) -> &AppMeta {
                self.inner.meta()
            }
            fn run(
                &self,
                input: &InputParams,
                schedule: &PhaseSchedule,
            ) -> Result<RunResult, RuntimeError> {
                std::thread::sleep(std::time::Duration::from_millis(25));
                self.inner.run(input, schedule)
            }
            fn representative_inputs(&self) -> Vec<InputParams> {
                self.inner.representative_inputs()
            }
        }
        let slow = Slow {
            inner: Toy { meta: meta() },
        };
        match run_with_timeout(&slow, &input, &schedule, 1) {
            Err(RuntimeError::Timeout {
                elapsed_ms,
                budget_ms,
            }) => {
                assert!(elapsed_ms >= budget_ms);
                assert_eq!(budget_ms, 1);
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn input_params_accessors() {
        let p = InputParams::from(vec![1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.get(1), 2.0);
        assert_eq!(p.values(), &[1.0, 2.0]);
    }
}
