//! Quality-of-service metrics (paper Sec. 3.1).
//!
//! Applications without a domain-specific metric use the default
//! *relative distortion* (Rinard, ICS 2006): the relative scaled
//! difference between the approximate and exact outputs. Image/video
//! applications use PSNR, where *higher* is better; for a uniform
//! "lower is better" degradation scale the video application reports
//! `PSNR_CAP − psnr` (see [`PSNR_CAP`]).

/// The PSNR value (dB) treated as "indistinguishable from exact". PSNR of
/// identical signals is infinite; capping keeps degradation finite.
pub const PSNR_CAP: f64 = 60.0;

/// Saturation value for QoS degradation. A run whose output diverged this
/// far is unusable regardless of the exact number — the analogue of the
/// "crash or unusable quality" outcomes that the paper's sensitivity
/// profiling filters out. Saturating keeps the error models' target space
/// bounded instead of chasing numerically meaningless 10⁶% distortions.
pub const QOS_SATURATION: f64 = 1e4;

/// Relative scaled distortion between an exact and an approximate output
/// vector, in percent.
///
/// For each element the absolute difference is scaled by the magnitude of
/// the exact element (or by 1 when the exact element is tiny), then
/// averaged and multiplied by 100.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::qos::relative_distortion;
/// let exact = [100.0, 200.0];
/// let approx = [110.0, 200.0];
/// assert!((relative_distortion(&exact, &approx) - 5.0).abs() < 1e-12);
/// ```
pub fn relative_distortion(exact: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        exact.len(),
        approx.len(),
        "distortion inputs must have equal length"
    );
    if exact.is_empty() {
        return 0.0;
    }
    let sum: f64 = exact
        .iter()
        .zip(approx.iter())
        .map(|(e, a)| {
            let scale = e.abs().max(1e-9);
            (a - e).abs() / scale
        })
        .sum();
    (100.0 * sum / exact.len() as f64).min(QOS_SATURATION)
}

/// Peak signal-to-noise ratio in decibels between an exact and an
/// approximate signal with the given peak value, capped at [`PSNR_CAP`].
///
/// # Panics
///
/// Panics if the slices have different lengths or `peak <= 0`.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::qos::{psnr, PSNR_CAP};
/// assert_eq!(psnr(&[1.0, 2.0], &[1.0, 2.0], 255.0), PSNR_CAP);
/// assert!(psnr(&[0.0, 255.0], &[255.0, 0.0], 255.0) < 1.0);
/// ```
pub fn psnr(exact: &[f64], approx: &[f64], peak: f64) -> f64 {
    assert_eq!(
        exact.len(),
        approx.len(),
        "psnr inputs must have equal length"
    );
    assert!(peak > 0.0, "psnr peak must be positive");
    if exact.is_empty() {
        return PSNR_CAP;
    }
    let mse: f64 = exact
        .iter()
        .zip(approx.iter())
        .map(|(e, a)| (e - a) * (e - a))
        .sum::<f64>()
        / exact.len() as f64;
    if mse == 0.0 {
        return PSNR_CAP;
    }
    (10.0 * (peak * peak / mse).log10()).min(PSNR_CAP)
}

/// Converts a PSNR value into a "lower is better" degradation on the same
/// scale as [`relative_distortion`]: `PSNR_CAP − psnr`, clamped at 0.
pub fn psnr_degradation(psnr_value: f64) -> f64 {
    (PSNR_CAP - psnr_value).max(0.0)
}

/// Recovers the PSNR from a degradation produced by [`psnr_degradation`].
pub fn degradation_to_psnr(degradation: f64) -> f64 {
    PSNR_CAP - degradation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distortion_of_identical_outputs_is_zero() {
        assert_eq!(
            relative_distortion(&[1.0, -2.0, 3.0], &[1.0, -2.0, 3.0]),
            0.0
        );
        assert_eq!(relative_distortion(&[], &[]), 0.0);
    }

    #[test]
    fn distortion_scales_relatively() {
        // 10% error on every element -> 10.
        let exact = [10.0, 100.0, 1000.0];
        let approx = [11.0, 110.0, 1100.0];
        assert!((relative_distortion(&exact, &approx) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn distortion_handles_near_zero_exact_values() {
        let d = relative_distortion(&[0.0], &[0.5]);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    #[should_panic]
    fn distortion_rejects_length_mismatch() {
        relative_distortion(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 1, peak = 255 -> PSNR = 20 log10(255) ≈ 48.13 dB.
        let exact = [0.0, 2.0];
        let approx = [1.0, 3.0];
        let p = psnr(&exact, &approx, 255.0);
        assert!((p - 48.1308).abs() < 1e-3, "psnr {p}");
    }

    #[test]
    fn psnr_caps_for_identical_signals() {
        assert_eq!(psnr(&[5.0; 4], &[5.0; 4], 255.0), PSNR_CAP);
        assert_eq!(psnr(&[], &[], 255.0), PSNR_CAP);
    }

    #[test]
    fn psnr_degradation_round_trips() {
        let p = 37.5;
        assert!((degradation_to_psnr(psnr_degradation(p)) - p).abs() < 1e-12);
        assert_eq!(psnr_degradation(PSNR_CAP + 5.0), 0.0);
    }
}
