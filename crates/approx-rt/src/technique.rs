//! The four approximation techniques evaluated in the paper (Sec. 3.2).
//!
//! Each technique is expressed as a small, reusable helper so the
//! benchmark applications approximate their kernels the same way the
//! paper's transformed C/C++ code does:
//!
//! * **Loop perforation** — `for (i = 0; i < n; i += approx_level)`:
//!   stride sampling over the iteration space.
//! * **Loop truncation** — `for (i = 0; i < n − approx_level; i++)`:
//!   dropping trailing iterations.
//! * **Memoization** — compute on every `approx_level`-th iteration,
//!   reuse the cached result otherwise.
//! * **Parameter tuning** — map the level onto an accuracy-controlling
//!   application parameter.

/// Iterator over the indices a perforated loop visits.
///
/// Level 0 is the accurate run (stride 1); level `l` uses stride `l + 1`,
/// matching the paper's `i = i + approx_level` with the convention that
/// the exposed knob value `approx_level` is `level + 1` and level 0 means
/// "no approximation".
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::perforated_indices;
/// let idx: Vec<usize> = perforated_indices(10, 1).collect();
/// assert_eq!(idx, vec![0, 2, 4, 6, 8]);
/// ```
pub fn perforated_indices(n: usize, level: u8) -> impl Iterator<Item = usize> {
    let stride = level as usize + 1;
    (0..n).step_by(stride)
}

/// Number of iterations a perforated loop of `n` iterations executes.
pub fn perforated_len(n: usize, level: u8) -> usize {
    let stride = level as usize + 1;
    n.div_ceil(stride)
}

/// Perforated indices with a rotating offset — the interleaved-sampling
/// variant of loop perforation, where each outer-loop iteration visits a
/// different residue class so every index is refreshed within
/// `level + 1` outer iterations.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::perforated_indices_offset;
/// assert_eq!(perforated_indices_offset(8, 1, 0).collect::<Vec<_>>(), vec![0, 2, 4, 6]);
/// assert_eq!(perforated_indices_offset(8, 1, 1).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
/// assert_eq!(perforated_indices_offset(8, 1, 2).collect::<Vec<_>>(), vec![0, 2, 4, 6]);
/// ```
pub fn perforated_indices_offset(
    n: usize,
    level: u8,
    offset: usize,
) -> impl Iterator<Item = usize> {
    let stride = level as usize + 1;
    (offset % stride..n).step_by(stride)
}

/// Number of iterations a truncated loop executes.
///
/// The paper's pattern is `for (i = 0; i < n − approx_level; i++)`; to
/// make the knob meaningful across loop sizes, each level drops
/// `drop_per_level` trailing iterations. The result never goes below
/// `min_len`, so a kernel always does some work.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::truncated_len;
/// assert_eq!(truncated_len(100, 0, 10, 1), 100);
/// assert_eq!(truncated_len(100, 3, 10, 1), 70);
/// assert_eq!(truncated_len(100, 5, 30, 1), 1); // clamped to min_len
/// ```
pub fn truncated_len(n: usize, level: u8, drop_per_level: usize, min_len: usize) -> usize {
    let drop = level as usize * drop_per_level;
    n.saturating_sub(drop).max(min_len.min(n))
}

/// Iterator over the indices a truncated loop visits.
pub fn truncated_indices(
    n: usize,
    level: u8,
    drop_per_level: usize,
    min_len: usize,
) -> impl Iterator<Item = usize> {
    0..truncated_len(n, level, drop_per_level, min_len)
}

/// Compute-and-cache helper implementing the paper's memoization pattern.
///
/// On iteration `i` at level `l > 0`, the value is recomputed only when
/// `i % (l + 1) == 0`; otherwise the last computed value is reused.
/// Level 0 recomputes every iteration.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::Memoizer;
///
/// let mut memo = Memoizer::new();
/// let mut computations = 0;
/// for i in 0..10 {
///     let v = memo.get_or_compute(i, 1, || { computations += 1; i * i });
///     if i % 2 == 0 { assert_eq!(v, i * i); } else { assert_eq!(v, (i - 1) * (i - 1)); }
/// }
/// assert_eq!(computations, 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memoizer<T: Clone> {
    cached: Option<T>,
}

impl<T: Clone> Memoizer<T> {
    /// Creates an empty memoizer.
    pub fn new() -> Self {
        Memoizer { cached: None }
    }

    /// Returns whether iteration `i` at `level` must recompute.
    ///
    /// The first iteration always computes (there is nothing cached yet).
    pub fn must_compute(&self, i: usize, level: u8) -> bool {
        self.cached.is_none() || level == 0 || i.is_multiple_of(level as usize + 1)
    }

    /// Returns the cached value or computes (and caches) a fresh one
    /// according to the memoization schedule.
    pub fn get_or_compute<F: FnOnce() -> T>(&mut self, i: usize, level: u8, compute: F) -> T {
        if self.must_compute(i, level) {
            let v = compute();
            self.cached = Some(v.clone());
            v
        } else {
            self.cached.clone().expect("checked by must_compute")
        }
    }

    /// Clears the cache (e.g. at the start of an outer-loop iteration).
    pub fn reset(&mut self) {
        self.cached = None;
    }
}

/// Maps an approximation level onto a tunable application parameter
/// (the paper's *parameter tuning* technique, e.g. Bodytrack's
/// `min-particles` or annealing-layer count).
///
/// The `values` slice lists the parameter settings from accurate
/// (`values[0]`) to most approximate (`values[max]`); out-of-range levels
/// clamp to the last entry.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::tuned_parameter;
/// let particle_counts = [4000.0, 2000.0, 1000.0, 500.0];
/// assert_eq!(tuned_parameter(&particle_counts, 0), 4000.0);
/// assert_eq!(tuned_parameter(&particle_counts, 2), 1000.0);
/// assert_eq!(tuned_parameter(&particle_counts, 9), 500.0);
/// ```
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn tuned_parameter(values: &[f64], level: u8) -> f64 {
    assert!(!values.is_empty(), "parameter-tuning table cannot be empty");
    values[(level as usize).min(values.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perforation_level_zero_is_accurate() {
        let all: Vec<usize> = perforated_indices(7, 0).collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn perforation_stride_matches_level() {
        assert_eq!(perforated_indices(10, 4).collect::<Vec<_>>(), vec![0, 5]);
        assert_eq!(perforated_len(10, 4), 2);
    }

    #[test]
    fn perforated_len_matches_iterator_count() {
        for n in [0usize, 1, 5, 17, 100] {
            for level in 0u8..6 {
                assert_eq!(
                    perforated_len(n, level),
                    perforated_indices(n, level).count(),
                    "n={n} level={level}"
                );
            }
        }
    }

    #[test]
    fn truncation_drops_tail_and_respects_floor() {
        assert_eq!(truncated_len(50, 0, 5, 2), 50);
        assert_eq!(truncated_len(50, 2, 5, 2), 40);
        assert_eq!(truncated_len(50, 5, 20, 2), 2);
        // min_len larger than n clamps to n.
        assert_eq!(truncated_len(3, 0, 5, 10), 3);
        assert_eq!(truncated_indices(50, 2, 5, 2).count(), 40);
    }

    #[test]
    fn memoizer_level_zero_always_computes() {
        let mut memo = Memoizer::new();
        let mut count = 0;
        for i in 0..8 {
            memo.get_or_compute(i, 0, || {
                count += 1;
                i
            });
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn memoizer_reuses_between_compute_points() {
        let mut memo = Memoizer::new();
        let mut count = 0;
        let mut values = Vec::new();
        for i in 0..9 {
            values.push(memo.get_or_compute(i, 2, || {
                count += 1;
                i * 10
            }));
        }
        assert_eq!(count, 3); // i = 0, 3, 6
        assert_eq!(values, vec![0, 0, 0, 30, 30, 30, 60, 60, 60]);
    }

    #[test]
    fn memoizer_first_call_computes_even_misaligned() {
        let mut memo = Memoizer::new();
        // i = 1 at level 2 would normally reuse, but the cache is empty.
        let v = memo.get_or_compute(1, 2, || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn memoizer_reset_forces_recompute() {
        let mut memo = Memoizer::new();
        memo.get_or_compute(0, 3, || 1);
        memo.reset();
        let v = memo.get_or_compute(1, 3, || 2);
        assert_eq!(v, 2);
    }

    #[test]
    fn tuned_parameter_clamps() {
        let vals = [10.0, 5.0];
        assert_eq!(tuned_parameter(&vals, 0), 10.0);
        assert_eq!(tuned_parameter(&vals, 1), 5.0);
        assert_eq!(tuned_parameter(&vals, 200), 5.0);
    }

    #[test]
    #[should_panic]
    fn tuned_parameter_rejects_empty_table() {
        tuned_parameter(&[], 0);
    }
}
