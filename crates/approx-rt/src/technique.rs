//! The four approximation techniques evaluated in the paper (Sec. 3.2),
//! plus two from the approximate-computing survey used by the non-paper
//! workload ports.
//!
//! Each technique is expressed as a small, reusable helper so the
//! benchmark applications approximate their kernels the same way the
//! paper's transformed C/C++ code does:
//!
//! * **Loop perforation** — `for (i = 0; i < n; i += approx_level)`:
//!   stride sampling over the iteration space.
//! * **Loop truncation** — `for (i = 0; i < n − approx_level; i++)`:
//!   dropping trailing iterations.
//! * **Memoization** — compute on every `approx_level`-th iteration,
//!   reuse the cached result otherwise.
//! * **Parameter tuning** — map the level onto an accuracy-controlling
//!   application parameter.
//! * **Precision scaling** — quantize intermediate values onto a
//!   power-of-two grid whose step doubles per level, charging fewer work
//!   units for lower-precision arithmetic ([`quantized`],
//!   [`precision_cost`]).
//! * **Task skipping** — skip whole tasks whose significance score falls
//!   below a threshold that grows with the level ([`should_skip`]).

/// Iterator over the indices a perforated loop visits.
///
/// Level 0 is the accurate run (stride 1); level `l` uses stride `l + 1`,
/// matching the paper's `i = i + approx_level` with the convention that
/// the exposed knob value `approx_level` is `level + 1` and level 0 means
/// "no approximation".
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::perforated_indices;
/// let idx: Vec<usize> = perforated_indices(10, 1).collect();
/// assert_eq!(idx, vec![0, 2, 4, 6, 8]);
/// ```
pub fn perforated_indices(n: usize, level: u8) -> impl Iterator<Item = usize> {
    let stride = level as usize + 1;
    (0..n).step_by(stride)
}

/// Number of iterations a perforated loop of `n` iterations executes.
pub fn perforated_len(n: usize, level: u8) -> usize {
    let stride = level as usize + 1;
    n.div_ceil(stride)
}

/// Perforated indices with a rotating offset — the interleaved-sampling
/// variant of loop perforation, where each outer-loop iteration visits a
/// different residue class so every index is refreshed within
/// `level + 1` outer iterations.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::perforated_indices_offset;
/// assert_eq!(perforated_indices_offset(8, 1, 0).collect::<Vec<_>>(), vec![0, 2, 4, 6]);
/// assert_eq!(perforated_indices_offset(8, 1, 1).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
/// assert_eq!(perforated_indices_offset(8, 1, 2).collect::<Vec<_>>(), vec![0, 2, 4, 6]);
/// ```
pub fn perforated_indices_offset(
    n: usize,
    level: u8,
    offset: usize,
) -> impl Iterator<Item = usize> {
    let stride = level as usize + 1;
    (offset % stride..n).step_by(stride)
}

/// Number of iterations a truncated loop executes.
///
/// The paper's pattern is `for (i = 0; i < n − approx_level; i++)`; to
/// make the knob meaningful across loop sizes, each level drops
/// `drop_per_level` trailing iterations. The result never goes below
/// `min_len`, so a kernel always does some work.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::truncated_len;
/// assert_eq!(truncated_len(100, 0, 10, 1), 100);
/// assert_eq!(truncated_len(100, 3, 10, 1), 70);
/// assert_eq!(truncated_len(100, 5, 30, 1), 1); // clamped to min_len
/// ```
pub fn truncated_len(n: usize, level: u8, drop_per_level: usize, min_len: usize) -> usize {
    let drop = level as usize * drop_per_level;
    n.saturating_sub(drop).max(min_len.min(n))
}

/// Iterator over the indices a truncated loop visits.
pub fn truncated_indices(
    n: usize,
    level: u8,
    drop_per_level: usize,
    min_len: usize,
) -> impl Iterator<Item = usize> {
    0..truncated_len(n, level, drop_per_level, min_len)
}

/// Compute-and-cache helper implementing the paper's memoization pattern.
///
/// On iteration `i` at level `l > 0`, the value is recomputed only when
/// `i % (l + 1) == 0`; otherwise the last computed value is reused.
/// Level 0 recomputes every iteration.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::Memoizer;
///
/// let mut memo = Memoizer::new();
/// let mut computations = 0;
/// for i in 0..10 {
///     let v = memo.get_or_compute(i, 1, || { computations += 1; i * i });
///     if i % 2 == 0 { assert_eq!(v, i * i); } else { assert_eq!(v, (i - 1) * (i - 1)); }
/// }
/// assert_eq!(computations, 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memoizer<T: Clone> {
    cached: Option<T>,
}

impl<T: Clone> Memoizer<T> {
    /// Creates an empty memoizer.
    pub fn new() -> Self {
        Memoizer { cached: None }
    }

    /// Returns whether iteration `i` at `level` must recompute.
    ///
    /// The first iteration always computes (there is nothing cached yet).
    pub fn must_compute(&self, i: usize, level: u8) -> bool {
        self.cached.is_none() || level == 0 || i.is_multiple_of(level as usize + 1)
    }

    /// Returns the cached value or computes (and caches) a fresh one
    /// according to the memoization schedule.
    pub fn get_or_compute<F: FnOnce() -> T>(&mut self, i: usize, level: u8, compute: F) -> T {
        if self.must_compute(i, level) {
            let v = compute();
            self.cached = Some(v.clone());
            v
        } else {
            self.cached.clone().expect("checked by must_compute")
        }
    }

    /// Clears the cache (e.g. at the start of an outer-loop iteration).
    pub fn reset(&mut self) {
        self.cached = None;
    }
}

/// Maps an approximation level onto a tunable application parameter
/// (the paper's *parameter tuning* technique, e.g. Bodytrack's
/// `min-particles` or annealing-layer count).
///
/// The `values` slice lists the parameter settings from accurate
/// (`values[0]`) to most approximate (`values[max]`); out-of-range levels
/// clamp to the last entry.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::tuned_parameter;
/// let particle_counts = [4000.0, 2000.0, 1000.0, 500.0];
/// assert_eq!(tuned_parameter(&particle_counts, 0), 4000.0);
/// assert_eq!(tuned_parameter(&particle_counts, 2), 1000.0);
/// assert_eq!(tuned_parameter(&particle_counts, 9), 500.0);
/// ```
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn tuned_parameter(values: &[f64], level: u8) -> f64 {
    assert!(!values.is_empty(), "parameter-tuning table cannot be empty");
    values[(level as usize).min(values.len() - 1)]
}

/// Quantization step for precision scaling at `level`.
///
/// Level 0 is exact (step 0 means "no quantization"); level `l > 0` uses
/// `base_step * 2^(l − 1)`, so every level doubles the grid spacing. The
/// power-of-two ladder makes the truncation error provably monotone in
/// the level: each coarser grid is a sub-grid of the finer one.
pub fn quantization_step(level: u8, base_step: f64) -> f64 {
    if level == 0 {
        0.0
    } else {
        base_step * f64::powi(2.0, level as i32 - 1)
    }
}

/// Quantizes `v` onto the precision-scaling grid for `level` by rounding
/// toward negative infinity (floor), the paper-style truncating
/// conversion to a narrower fixed-point type.
///
/// Level 0 returns `v` unchanged. For any fixed `v`, the absolute
/// truncation error `v − quantized(v, l, s)` is non-decreasing in `l`
/// because each level's grid is a subset of the previous one.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::quantized;
/// assert_eq!(quantized(3.7, 0, 0.5), 3.7);          // exact
/// assert_eq!(quantized(3.7, 1, 0.5), 3.5);          // step 0.5
/// assert_eq!(quantized(3.7, 2, 0.5), 3.0);          // step 1.0
/// assert_eq!(quantized(-0.3, 1, 0.5), -0.5);        // floor, not trunc
/// ```
pub fn quantized(v: f64, level: u8, base_step: f64) -> f64 {
    let step = quantization_step(level, base_step);
    if step == 0.0 {
        v
    } else {
        (v / step).floor() * step
    }
}

/// Number of precision steps the cost model of [`precision_cost`]
/// divides a full-precision operation into.
pub const PRECISION_STEPS: u64 = 8;

/// Work units charged for an operation computed at reduced precision.
///
/// Full precision (`level` 0) costs `full_cost`; every level sheds one
/// eighth of the full cost — the abstract analogue of narrowing the
/// datapath — with a floor of one unit so an executed operation is never
/// free. Monotone non-increasing in `level` by construction.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::precision_cost;
/// assert_eq!(precision_cost(8, 0), 8);
/// assert_eq!(precision_cost(8, 3), 5);
/// assert_eq!(precision_cost(8, 200), 1); // clamped to the floor
/// ```
pub fn precision_cost(full_cost: u64, level: u8) -> u64 {
    let shed = (full_cost * (level as u64).min(PRECISION_STEPS)) / PRECISION_STEPS;
    (full_cost - shed).max(1)
}

/// Significance threshold for task skipping at `level`: `level * step`.
///
/// Level 0 has threshold 0, so nothing is skipped in the accurate run;
/// the threshold grows linearly with the level, so the skipped set only
/// ever grows as the level rises.
pub fn skip_threshold(level: u8, step: f64) -> f64 {
    level as f64 * step
}

/// Whether a task with the given (non-negative) significance score is
/// skipped at `level`.
///
/// # Example
///
/// ```
/// use opprox_approx_rt::technique::should_skip;
/// assert!(!should_skip(0.0, 0, 0.1));    // accurate run skips nothing
/// assert!(should_skip(0.05, 1, 0.1));    // below the level-1 threshold
/// assert!(!should_skip(0.25, 2, 0.1));   // significant enough to run
/// ```
pub fn should_skip(significance: f64, level: u8, step: f64) -> bool {
    level > 0 && significance < skip_threshold(level, step)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perforation_level_zero_is_accurate() {
        let all: Vec<usize> = perforated_indices(7, 0).collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn perforation_stride_matches_level() {
        assert_eq!(perforated_indices(10, 4).collect::<Vec<_>>(), vec![0, 5]);
        assert_eq!(perforated_len(10, 4), 2);
    }

    #[test]
    fn perforated_len_matches_iterator_count() {
        for n in [0usize, 1, 5, 17, 100] {
            for level in 0u8..6 {
                assert_eq!(
                    perforated_len(n, level),
                    perforated_indices(n, level).count(),
                    "n={n} level={level}"
                );
            }
        }
    }

    #[test]
    fn truncation_drops_tail_and_respects_floor() {
        assert_eq!(truncated_len(50, 0, 5, 2), 50);
        assert_eq!(truncated_len(50, 2, 5, 2), 40);
        assert_eq!(truncated_len(50, 5, 20, 2), 2);
        // min_len larger than n clamps to n.
        assert_eq!(truncated_len(3, 0, 5, 10), 3);
        assert_eq!(truncated_indices(50, 2, 5, 2).count(), 40);
    }

    #[test]
    fn memoizer_level_zero_always_computes() {
        let mut memo = Memoizer::new();
        let mut count = 0;
        for i in 0..8 {
            memo.get_or_compute(i, 0, || {
                count += 1;
                i
            });
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn memoizer_reuses_between_compute_points() {
        let mut memo = Memoizer::new();
        let mut count = 0;
        let mut values = Vec::new();
        for i in 0..9 {
            values.push(memo.get_or_compute(i, 2, || {
                count += 1;
                i * 10
            }));
        }
        assert_eq!(count, 3); // i = 0, 3, 6
        assert_eq!(values, vec![0, 0, 0, 30, 30, 30, 60, 60, 60]);
    }

    #[test]
    fn memoizer_first_call_computes_even_misaligned() {
        let mut memo = Memoizer::new();
        // i = 1 at level 2 would normally reuse, but the cache is empty.
        let v = memo.get_or_compute(1, 2, || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn memoizer_reset_forces_recompute() {
        let mut memo = Memoizer::new();
        memo.get_or_compute(0, 3, || 1);
        memo.reset();
        let v = memo.get_or_compute(1, 3, || 2);
        assert_eq!(v, 2);
    }

    #[test]
    fn tuned_parameter_clamps() {
        let vals = [10.0, 5.0];
        assert_eq!(tuned_parameter(&vals, 0), 10.0);
        assert_eq!(tuned_parameter(&vals, 1), 5.0);
        assert_eq!(tuned_parameter(&vals, 200), 5.0);
    }

    #[test]
    #[should_panic]
    fn tuned_parameter_rejects_empty_table() {
        tuned_parameter(&[], 0);
    }

    #[test]
    fn quantization_error_is_monotone_in_level() {
        for &v in &[0.0, 0.123, 3.7, -2.9, 1017.25, -0.0001] {
            let mut prev_err = 0.0;
            for level in 0u8..=6 {
                let q = quantized(v, level, 0.125);
                assert!(q <= v, "floor quantization overshot: {q} > {v}");
                let err = v - q;
                assert!(
                    err >= prev_err - 1e-15,
                    "error shrank: v={v} level={level} {prev_err} -> {err}"
                );
                prev_err = err;
            }
        }
    }

    #[test]
    fn quantized_level_zero_is_identity() {
        for &v in &[0.0, 1.5, -7.25, 1e9] {
            assert_eq!(quantized(v, 0, 0.5), v);
        }
    }

    #[test]
    fn precision_cost_is_monotone_with_unit_floor() {
        let mut prev = u64::MAX;
        for level in 0u8..=10 {
            let c = precision_cost(16, level);
            assert!(c <= prev, "cost rose at level {level}");
            assert!(c >= 1);
            prev = c;
        }
        assert_eq!(precision_cost(16, 0), 16);
        assert_eq!(precision_cost(1, 7), 1);
    }

    #[test]
    fn skip_threshold_grows_and_accurate_level_never_skips() {
        for sig in [0.0, 0.001, 0.5, 10.0] {
            assert!(!should_skip(sig, 0, 0.1));
        }
        let mut prev = -1.0;
        for level in 0u8..=8 {
            let t = skip_threshold(level, 0.25);
            assert!(t > prev);
            prev = t;
        }
        // The skipped set only grows: skipped at level l => skipped at l+1.
        for level in 1u8..=7 {
            for sig in [0.01, 0.3, 0.9, 1.4] {
                if should_skip(sig, level, 0.25) {
                    assert!(should_skip(sig, level + 1, 0.25));
                }
            }
        }
    }
}
