//! Exhaustive bounded model checks for the concurrency protocols the
//! `opprox-analyze` registry tracks as rules `C001` and `C002`:
//!
//! * `C001` — [`opprox_core::pool::WorkPool`]'s submit/steal/shutdown
//!   protocol: every job runs exactly once and results land in submission
//!   order, on every explored interleaving of the worker threads.
//! * `C002` — [`opprox_core::evaluator::EvalEngine`]'s execution cache:
//!   the check-then-insert race between concurrent `run` calls never
//!   loses a result, never double-counts, and converges to one cached
//!   entry.
//! * `C005` — the cache's failure contract under fault injection: a key
//!   whose every attempt fails is never memoized, so no later request can
//!   be served a poisoned or partial result, on any interleaving.
//! * `C006` — the cache's shard protocol: the cache is split into
//!   digest-selected shards each behind its own lock; concurrent
//!   population of different keys (direct `run` and the batch
//!   insert-back path) loses no entry on any interleaving, and
//!   `cached_results` sums correctly across shards.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, which also swaps the
//! pool's and evaluator's sync primitives for loom's instrumented
//! look-alikes (see `core::sync`). Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p opprox-core --test loom --release
//! ```
#![cfg(loom)]

use std::sync::atomic::{AtomicUsize, Ordering};

use opprox_approx_rt::app::AppMeta;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult};
use opprox_core::evaluator::EvalEngine;
use opprox_core::pool::WorkPool;

/// A trivially deterministic app: no real compute, so the model run
/// explores the synchronization protocol rather than the workload.
struct StubApp {
    meta: AppMeta,
}

impl StubApp {
    fn new() -> Self {
        StubApp {
            meta: AppMeta {
                name: "loom-stub".into(),
                input_param_names: vec!["x".into()],
                blocks: vec![BlockDescriptor::new(
                    "b0",
                    TechniqueKind::LoopPerforation,
                    2,
                )],
            },
        }
    }
}

impl ApproxApp for StubApp {
    fn meta(&self) -> &AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        _schedule: &PhaseSchedule,
    ) -> Result<RunResult, opprox_approx_rt::RuntimeError> {
        Ok(RunResult {
            output: vec![input.values()[0]],
            work: 7,
            outer_iters: 1,
            log: CallContextLog::new(),
        })
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        vec![InputParams::new(vec![1.0])]
    }
}

/// C001: two workers, three jobs (so one worker must steal or drain two).
/// Plain `std` atomics observe execution counts without adding scheduling
/// points, keeping the explored state space the pool's own protocol.
#[test]
fn c001_workpool_submit_steal_shutdown_is_exact_once_in_order() {
    loom::model(|| {
        let ran = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        let pool = WorkPool::new(2);
        let out = pool.run(3, |i| {
            ran[i].fetch_add(1, Ordering::SeqCst);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20], "results in submission order");
        for (i, r) in ran.iter().enumerate() {
            assert_eq!(r.load(Ordering::SeqCst), 1, "job {i} ran exactly once");
        }
    });
}

/// C002: two threads race `EvalEngine::run` on the same key. Whichever
/// interleaving wins the check-then-insert race, no request is lost, the
/// counters balance, and exactly one result is memoized.
#[test]
fn c002_eval_cache_insert_hit_race_converges() {
    loom::model(|| {
        let engine = EvalEngine::new(1);
        let app = StubApp::new();
        let input = InputParams::new(vec![1.0]);
        let schedule = PhaseSchedule::accurate(1);
        loom::thread::scope(|s| {
            let (engine, app, input, schedule) = (&engine, &app, &input, &schedule);
            s.spawn(move || {
                let r = engine.run(app, input, schedule).unwrap();
                assert_eq!(r.work, 7);
            });
            s.spawn(move || {
                let r = engine.run(app, input, schedule).unwrap();
                assert_eq!(r.work, 7);
            });
        });
        let m = engine.metrics();
        assert_eq!(
            m.executions + m.cache_hits,
            2,
            "every request either executed or hit"
        );
        assert!(
            (1..=2).contains(&m.executions),
            "the race may double-execute but never loses or over-counts"
        );
        assert_eq!(engine.cached_results(), 1, "one memoized entry per key");
        assert_eq!(m.total_work_units, 7 * m.executions);
    });
}

/// C002 (batch path): `run_batch` resolves duplicates before touching the
/// pool, and its post-execution insert tolerates any worker interleaving.
#[test]
fn c002_run_batch_dedup_under_worker_interleavings() {
    loom::model(|| {
        let engine = EvalEngine::new(2);
        let app = StubApp::new();
        let jobs = vec![
            (InputParams::new(vec![1.0]), PhaseSchedule::accurate(1)),
            (InputParams::new(vec![2.0]), PhaseSchedule::accurate(1)),
            (InputParams::new(vec![1.0]), PhaseSchedule::accurate(1)),
        ];
        let results = engine.run_batch(&app, &jobs).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].output, vec![1.0]);
        assert_eq!(results[1].output, vec![2.0]);
        assert_eq!(results[2].output, vec![1.0]);
        let m = engine.metrics();
        assert_eq!(m.executions, 2, "duplicate submission deduplicated");
        assert_eq!(m.cache_hits, 1);
        assert_eq!(engine.cached_results(), 2);
    });
}

/// C006: two threads populate *different* keys — digest-selected, so
/// possibly in different shards — then each reads back the sibling key.
/// On every interleaving both entries must be memoized exactly once per
/// shard, the sibling readback must be served (as an execution or a hit,
/// never an error or a lost entry), and `cached_results` must sum the
/// shard sizes to exactly two.
#[test]
fn c006_sharded_cache_cross_key_population_converges() {
    loom::model(|| {
        let engine = EvalEngine::new(1);
        let app = StubApp::new();
        let k1 = InputParams::new(vec![1.0]);
        let k2 = InputParams::new(vec![2.0]);
        let schedule = PhaseSchedule::accurate(1);
        loom::thread::scope(|s| {
            let (engine, app, schedule) = (&engine, &app, &schedule);
            let (a, b) = (&k1, &k2);
            s.spawn(move || {
                assert_eq!(engine.run(app, a, schedule).unwrap().output, vec![1.0]);
                assert_eq!(engine.run(app, b, schedule).unwrap().output, vec![2.0]);
            });
            s.spawn(move || {
                assert_eq!(engine.run(app, b, schedule).unwrap().output, vec![2.0]);
                assert_eq!(engine.run(app, a, schedule).unwrap().output, vec![1.0]);
            });
        });
        let m = engine.metrics();
        assert_eq!(
            m.executions + m.cache_hits,
            4,
            "every request either executed or hit"
        );
        assert!(
            (2..=4).contains(&m.executions),
            "each key executes at least once; same-key races may double"
        );
        assert_eq!(
            engine.cached_results(),
            2,
            "both keys memoized; shard sum is exact"
        );
    });
}

/// C006 (batch path): the batch insert-back takes each result's shard
/// lock individually, racing a concurrent direct `run` on one of the
/// batch's keys. Whichever side wins each per-shard race, no entry is
/// lost, nothing is double-memoized, and every request is answered.
#[test]
fn c006_batch_insert_back_races_with_direct_run() {
    loom::model(|| {
        let engine = EvalEngine::new(1);
        let app = StubApp::new();
        let shared = InputParams::new(vec![1.0]);
        let schedule = PhaseSchedule::accurate(1);
        loom::thread::scope(|s| {
            let (engine, app, schedule) = (&engine, &app, &schedule);
            let shared = &shared;
            s.spawn(move || {
                let jobs = vec![
                    (shared.clone(), schedule.clone()),
                    (InputParams::new(vec![2.0]), schedule.clone()),
                ];
                let results = engine.run_batch(app, &jobs).unwrap();
                assert_eq!(results[0].output, vec![1.0]);
                assert_eq!(results[1].output, vec![2.0]);
            });
            s.spawn(move || {
                assert_eq!(engine.run(app, shared, schedule).unwrap().output, vec![1.0]);
            });
        });
        let m = engine.metrics();
        assert_eq!(
            m.executions + m.cache_hits,
            3,
            "every request either executed or hit"
        );
        assert!(
            (2..=3).contains(&m.executions),
            "the shared key may double-execute but never loses"
        );
        assert_eq!(
            engine.cached_results(),
            2,
            "one memoized entry per distinct key, summed across shards"
        );
    });
}

/// C005: two threads race `EvalEngine::run` on the same key while every
/// attempt is forced to fail (injected timeouts via `fail_first_attempts`,
/// so no unwinding perturbs the model). Whichever thread loses the race
/// arrives after the winner exhausted its attempts and quarantined the
/// key — or fails through its own attempts first. Either way: both get a
/// typed error, the failed evaluation is never memoized, and the
/// failure/quarantine counters balance.
#[test]
fn c005_failed_evaluations_are_never_cached_under_races() {
    use opprox_core::{FaultPlan, RecoveryPolicy};
    loom::model(|| {
        // Every attempt of every evaluation fails; one retry keeps the
        // explored state space small.
        let plan = FaultPlan::seeded(11).fail_first_attempts(u32::MAX);
        let policy = RecoveryPolicy {
            max_retries: 1,
            backoff_base_ms: 1,
            eval_timeout_ms: None,
        };
        let engine = EvalEngine::with_faults(1, plan, policy);
        let app = StubApp::new();
        let input = InputParams::new(vec![1.0]);
        let schedule = PhaseSchedule::accurate(1);
        loom::thread::scope(|s| {
            let (engine, app, input, schedule) = (&engine, &app, &input, &schedule);
            for _ in 0..2 {
                s.spawn(move || {
                    assert!(
                        engine.run(app, input, schedule).is_err(),
                        "an always-failing key must never yield a result"
                    );
                });
            }
        });
        assert_eq!(
            engine.cached_results(),
            0,
            "a failed evaluation must never be memoized"
        );
        let m = engine.metrics();
        assert_eq!(m.executions, 0, "no attempt may count as an execution");
        let report = engine.robustness_report();
        assert_eq!(
            report.failed_evaluations + report.quarantine_hits,
            2,
            "each request either exhausted its attempts or was refused \
             by the quarantine: {report:?}"
        );
        assert_eq!(report.quarantined_keys, 1, "one distinct key quarantined");
        assert!(report.failed_evaluations >= 1, "someone did the failing");
    });
}
