//! Golden-file guards for the telemetry exporters.
//!
//! `opprox trace summarize` prints [`TelemetryReport::render_text`] and
//! external viewers load [`TelemetryReport::to_chrome_trace`]; both are
//! stable interfaces. This suite pins the text summary's rendered bytes
//! against `tests/golden/trace_summary.txt` (mirroring the analyze
//! crate's golden diagnostics test) and checks the Chrome export against
//! the trace-event schema viewers require. If either format must change,
//! update the golden file in the same commit and call it out in the
//! changelog.

use opprox_core::{ManualClock, Telemetry, TelemetryReport};
use serde_json::value::Value;
use std::sync::Arc;

/// A fixed report exercising every section of the summary: nested and
/// repeated spans, aggregate and per-key counters, gauges, a histogram
/// with out-of-range observations, and structured events.
fn fixed_report() -> TelemetryReport {
    let clock = Arc::new(ManualClock::new());
    let tele = Telemetry::with_clock(clock.clone());
    tele.span("stage/train", || {
        tele.span("profiling/goldens", || clock.advance_micros(40));
        tele.span("profiling/samples", || clock.advance_micros(80));
    });
    tele.span("stage/optimize", || clock.advance_micros(15));
    tele.add("eval.exec", 6);
    tele.add("eval.cache.hit", 9);
    tele.incr("eval.golden.exec");
    tele.incr("eval.golden.exec[0x00000000deadbeef]");
    tele.set_gauge("eval.queue_depth", 0.0);
    tele.set_gauge("profile.phase[0].max_speedup", 1.8);
    let bounds = [1.0, 2.0, 4.0, 8.0];
    for v in [0.5, 1.5, 3.0, 3.5, 9.0] {
        tele.observe("ml.cv_solves_per_degree", &bounds, v);
    }
    tele.event(
        "optimize.phase",
        &[
            ("solve", 0.0),
            ("step", 0.0),
            ("phase", 1.0),
            ("roi", 2.5),
            ("allocated", 5.0),
            ("leftover_in", 0.0),
            ("leftover_out", 1.5),
        ],
    );
    tele.event("optimize.plan", &[("predicted_speedup", 1.4)]);
    // One adaptive-controller session: a clean step, a drifted step that
    // re-planned and moved budget, and the closing summary — exercising
    // the `adaptive control:` section's flags and ledger columns.
    tele.event(
        "control.start",
        &[
            ("session", 0.0),
            ("budget", 10.0),
            ("phases", 2.0),
            ("tolerance", 0.25),
        ],
    );
    tele.event(
        "control.step",
        &[
            ("session", 0.0),
            ("step", 0.0),
            ("phase", 0.0),
            ("observed_speedup", 1.5),
            ("band_lo", 1.2),
            ("band_hi", 1.875),
            ("drift", 0.0),
            ("replanned", 0.0),
            ("resegmented", 0.0),
            ("reclaimed", 0.0),
            ("redistributed", 0.0),
        ],
    );
    tele.event(
        "control.step",
        &[
            ("session", 0.0),
            ("step", 1.0),
            ("phase", 1.0),
            ("observed_speedup", 3.5),
            ("band_lo", 1.2),
            ("band_hi", 1.875),
            ("drift", 0.8),
            ("replanned", 1.0),
            ("resegmented", 1.0),
            ("reclaimed", 1.5),
            ("redistributed", 1.5),
        ],
    );
    tele.event(
        "control.plan",
        &[
            ("session", 0.0),
            ("replans", 1.0),
            ("reclaimed", 1.5),
            ("redistributed", 1.5),
            ("predicted_speedup", 1.6),
            ("predicted_qos", 9.5),
            ("degraded", 0.0),
        ],
    );
    tele.report()
}

#[test]
fn text_summary_matches_golden_file() {
    let golden = include_str!("golden/trace_summary.txt");
    let rendered = fixed_report().render_text();
    assert_eq!(
        rendered, golden,
        "the `trace summarize` text format is a stable interface; if this \
         change is intentional, regenerate tests/golden/trace_summary.txt"
    );
}

/// Regenerates the golden file after an intentional format change:
/// `cargo test -p opprox-core --test telemetry_export -- --ignored regenerate`
#[test]
#[ignore = "writes the golden file; run explicitly after format changes"]
fn regenerate_golden() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_summary.txt"
    );
    std::fs::write(path, fixed_report().render_text()).unwrap();
}

#[test]
fn golden_file_covers_every_summary_section() {
    let golden = include_str!("golden/trace_summary.txt");
    assert!(golden.starts_with("telemetry summary\n=================\n"));
    for section in [
        "spans (count / total micros):",
        "counters:",
        "gauges (last / max):",
        "histograms:",
        "adaptive control:",
        "  session 0: budget 10 over 2 phases (tolerance 0.25)",
        "[re-segmented] [re-planned: reclaimed 1.5, redistributed 1.5]",
        "    plan: 1 re-plans, reclaimed 1.5, redistributed 1.5",
        "events: 6 recorded",
    ] {
        assert!(golden.contains(section), "golden file lost `{section}`");
    }
}

fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Chrome's trace-event importer (and speedscope, perfetto) require the
/// keys asserted here; a missing one makes the whole file unloadable.
#[test]
fn chrome_trace_satisfies_the_trace_event_schema() {
    let report = fixed_report();
    let parsed = serde_json::parse_value(&report.to_chrome_trace()).expect("valid JSON");
    let Value::Array(events) = parsed else {
        panic!("chrome trace must be a JSON array of trace events");
    };
    // One complete event per timeline record, one counter sample per
    // counter — nothing dropped, nothing invented.
    assert_eq!(
        events.len(),
        report.timeline.len() + report.counters.len(),
        "unexpected trace-event count"
    );
    let mut complete = 0;
    let mut samples = 0;
    for (i, event) in events.iter().enumerate() {
        let obj = event.as_object().unwrap_or_else(|| {
            panic!("trace event {i} is not a JSON object");
        });
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(field(obj, key).is_some(), "trace event {i} lacks `{key}`");
        }
        assert_eq!(field(obj, "cat").unwrap().as_str(), Some("opprox"));
        assert!(field(obj, "ts").unwrap().as_u64().is_some());
        match field(obj, "ph").unwrap().as_str() {
            Some("X") => {
                complete += 1;
                let dur = field(obj, "dur").expect("complete events carry `dur`");
                assert!(dur.as_u64().is_some());
            }
            Some("C") => {
                samples += 1;
                let args = field(obj, "args")
                    .and_then(Value::as_object)
                    .expect("counter samples carry `args`");
                assert!(field(args, "value").unwrap().as_u64().is_some());
            }
            other => panic!("trace event {i} has unexpected phase {other:?}"),
        }
    }
    assert_eq!(complete, report.timeline.len());
    assert_eq!(samples, report.counters.len());
}
