use opprox_approx_rt::InputParams;
use opprox_apps::registry::all_apps;
use opprox_core::oracle::phase_agnostic_oracle;
use opprox_core::pipeline::{Opprox, TrainingOptions};
use opprox_core::report::percent_less_work;
use opprox_core::request::OptimizeRequest;
use opprox_core::sampling::SamplingPlan;
use opprox_core::AccuracySpec;

fn main() {
    let prod_inputs: Vec<(&str, Vec<f64>)> = vec![
        ("LULESH", vec![64.0, 2.0]),
        ("FFmpeg", vec![16.0, 5.0, 600.0, 0.0]),
        ("Bodytrack", vec![3.0, 150.0, 30.0]),
        ("PSO", vec![20.0, 4.0]),
        ("CoMD", vec![3.0, 1.2, 150.0]),
    ];
    for app in all_apps() {
        let name = app.meta().name.clone();
        let t0 = std::time::Instant::now();
        let opts = TrainingOptions {
            num_phases: Some(4),
            sampling: SamplingPlan {
                num_phases: 4,
                sparse_samples: 36,
                whole_run_samples: 0,
                seed: 11,
            },
            ..TrainingOptions::default()
        };
        let trained = match Opprox::train(app.as_ref(), &opts) {
            Ok(t) => t,
            Err(e) => {
                println!("{name}: TRAIN FAILED: {e}");
                continue;
            }
        };
        let train_time = t0.elapsed();
        let input = InputParams::new(
            prod_inputs
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1
                .clone(),
        );
        for budget in [5.0, 10.0, 20.0] {
            // FFmpeg budgets are PSNR-degradation: psnr targets 30/20/10 -> deg 30/40/50
            let b = if name == "FFmpeg" {
                match budget as u32 {
                    5 => 30.0,
                    10 => 40.0,
                    _ => 50.0,
                }
            } else {
                budget
            };
            let spec = AccuracySpec::new(b);
            let result = OptimizeRequest::new(input.clone(), spec)
                .validate_on(app.as_ref())
                .run(&trained)
                .unwrap();
            let (plan, outcome) = (result.plan, result.measured.unwrap());
            let orc = phase_agnostic_oracle(app.as_ref(), &input, &spec).unwrap();
            println!("{name:10} budget {b:5.1}: OPPROX {:6.1}% less work (qos {:7.2}, pred qos {:6.2}) | oracle {:6.1}% (qos {:7.2})",
                percent_less_work(outcome.speedup), outcome.qos, plan.predicted_qos,
                percent_less_work(orc.speedup), orc.qos);
        }
        println!("  ({name} train {train_time:?})");
    }
}
