//! Result types for OPPROX-vs-baseline comparisons (paper Fig. 14) and
//! re-exports of the evaluation-engine metrics surfaced by the CLI.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use crate::evaluator::{EvalMetrics, StageMetrics};

/// One row of the OPPROX-vs-oracle comparison: an application at one QoS
/// budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Application name.
    pub app: String,
    /// QoS-degradation budget of the experiment.
    pub budget: f64,
    /// OPPROX's measured speedup.
    pub opprox_speedup: f64,
    /// OPPROX's measured QoS degradation.
    pub opprox_qos: f64,
    /// Phase-agnostic oracle's measured speedup.
    pub oracle_speedup: f64,
    /// Phase-agnostic oracle's measured QoS degradation.
    pub oracle_qos: f64,
}

impl ComparisonRow {
    /// OPPROX's speedup expressed as "% less work", the unit of the
    /// paper's headline numbers (a speedup of 1.25 does 20% less work).
    pub fn opprox_percent(&self) -> f64 {
        percent_less_work(self.opprox_speedup)
    }

    /// The oracle's speedup as "% less work".
    pub fn oracle_percent(&self) -> f64 {
        percent_less_work(self.oracle_speedup)
    }
}

impl fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} budget {:>5.1}: OPPROX {:.2}x (qos {:.2}) vs oracle {:.2}x (qos {:.2})",
            self.app,
            self.budget,
            self.opprox_speedup,
            self.opprox_qos,
            self.oracle_speedup,
            self.oracle_qos
        )
    }
}

/// Converts a work-ratio speedup into the paper's "% less work" scale:
/// `100 · (1 − 1/S)`, clamped below at large slowdowns.
pub fn percent_less_work(speedup: f64) -> f64 {
    if speedup <= 0.0 {
        return -100.0;
    }
    100.0 * (1.0 - 1.0 / speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_less_work_known_values() {
        assert_eq!(percent_less_work(1.0), 0.0);
        assert!((percent_less_work(1.25) - 20.0).abs() < 1e-12);
        assert!((percent_less_work(2.0) - 50.0).abs() < 1e-12);
        assert!(percent_less_work(0.5) < 0.0);
        assert_eq!(percent_less_work(0.0), -100.0);
    }

    #[test]
    fn row_percentages_and_display() {
        let row = ComparisonRow {
            app: "LULESH".into(),
            budget: 20.0,
            opprox_speedup: 1.25,
            opprox_qos: 18.0,
            oracle_speedup: 1.1,
            oracle_qos: 19.0,
        };
        assert!((row.opprox_percent() - 20.0).abs() < 1e-9);
        assert!(row.oracle_percent() < row.opprox_percent());
        let s = row.to_string();
        assert!(s.contains("LULESH"));
        assert!(s.contains("1.25x"));
    }
}
