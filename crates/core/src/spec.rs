//! The user-provided accuracy specification (paper Sec. 3.1).
//!
//! An accuracy specification consists of representative inputs (provided
//! by the application through
//! [`opprox_approx_rt::ApproxApp::representative_inputs`]), an accuracy
//! metric (the application's
//! [`opprox_approx_rt::ApproxApp::qos_degradation`]), and the error
//! budget captured here.

use crate::error::OpproxError;
use serde::{Deserialize, Serialize};

/// The QoS-degradation budget the user is willing to tolerate.
///
/// # Example
///
/// ```
/// use opprox_core::AccuracySpec;
///
/// let spec = AccuracySpec::new(10.0);
/// assert_eq!(spec.error_budget(), 10.0);
/// assert!(AccuracySpec::try_new(-1.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracySpec {
    error_budget: f64,
}

impl AccuracySpec {
    /// Creates a specification with the given QoS-degradation budget
    /// (same unit as the application's QoS metric, e.g. percent).
    ///
    /// This is a thin wrapper over [`AccuracySpec::try_new`] — the two
    /// constructors apply the *same* validation (and `opprox analyze`
    /// rule A011 delegates to it too); this one just trades the
    /// `Result` for a panic, for literals known to be valid.
    ///
    /// # Panics
    ///
    /// Panics if the budget is negative or not finite; use
    /// [`AccuracySpec::try_new`] for fallible construction.
    ///
    /// ```should_panic
    /// use opprox_core::AccuracySpec;
    ///
    /// // A negative budget is rejected by try_new, so new panics.
    /// AccuracySpec::new(-1.0);
    /// ```
    pub fn new(error_budget: f64) -> Self {
        Self::try_new(error_budget).expect("valid error budget")
    }

    /// Fallible constructor — the single source of budget validation
    /// ([`AccuracySpec::new`] and lint rule A011 both route through it).
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::InvalidSpec`] for negative or non-finite
    /// budgets.
    pub fn try_new(error_budget: f64) -> Result<Self, OpproxError> {
        if !error_budget.is_finite() || error_budget < 0.0 {
            return Err(OpproxError::InvalidSpec(format!(
                "error budget must be a non-negative finite number, got {error_budget}"
            )));
        }
        Ok(AccuracySpec { error_budget })
    }

    /// The QoS-degradation budget.
    pub fn error_budget(&self) -> f64 {
        self.error_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_zero_and_positive_budgets() {
        assert!(AccuracySpec::try_new(0.0).is_ok());
        assert!(AccuracySpec::try_new(20.0).is_ok());
    }

    #[test]
    fn rejects_bad_budgets() {
        assert!(AccuracySpec::try_new(-0.1).is_err());
        assert!(AccuracySpec::try_new(f64::NAN).is_err());
        assert!(AccuracySpec::try_new(f64::INFINITY).is_err());
    }

    #[test]
    #[should_panic]
    fn new_panics_on_invalid() {
        AccuracySpec::new(-5.0);
    }
}
