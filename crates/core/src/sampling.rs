//! Training-data collection (paper Sec. 3.3).
//!
//! OPPROX profiles the instrumented application with different level
//! combinations and representative inputs. Per phase it collects
//!
//! * **local sweeps** — for each approximable block, every nonzero level
//!   with all other blocks accurate (exhaustive per-block coverage for
//!   the local models), and
//! * **random sparse samples** — level combinations drawn over all blocks
//!   simultaneously, capturing interactions.
//!
//! Every run is reduced to a [`SampleRecord`] holding the configuration,
//! the phase it was applied in, and the measured speedup, QoS
//! degradation, and outer-loop iteration count.

use crate::error::OpproxError;
use crate::evaluator::EvalEngine;
use crate::fault::{degradable_kind, DroppedSample};
use opprox_approx_rt::config::{local_sweep, sample_configs};
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule};
use serde::{Deserialize, Serialize};

/// One profiled execution, reduced to its modeling-relevant outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// The input parameters of the run.
    pub input: InputParams,
    /// The phase the approximation was applied to (`None` for a
    /// whole-run, phase-agnostic sample).
    pub phase: Option<usize>,
    /// Number of phases the execution was divided into.
    pub num_phases: usize,
    /// The level configuration applied in the approximated phase(s).
    pub config: LevelConfig,
    /// Measured speedup over the accurate run (work ratio).
    pub speedup: f64,
    /// Measured QoS degradation (application metric; lower is better).
    pub qos: f64,
    /// Measured outer-loop iteration count.
    pub outer_iters: u64,
    /// Control-flow class signature of the run.
    pub control_flow: Vec<usize>,
}

/// Golden (accurate) run facts for one input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenRecord {
    /// The input parameters.
    pub input: InputParams,
    /// Work units of the accurate run.
    pub work: u64,
    /// Outer-loop iterations of the accurate run.
    pub outer_iters: u64,
    /// Control-flow signature of the accurate run.
    pub control_flow: Vec<usize>,
}

/// The full training set for one application.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingData {
    /// Per-input golden facts.
    pub goldens: Vec<GoldenRecord>,
    /// All profiled samples.
    pub records: Vec<SampleRecord>,
}

impl TrainingData {
    /// Records for a specific phase (across inputs).
    pub fn phase_records(&self, phase: usize) -> Vec<&SampleRecord> {
        self.records
            .iter()
            .filter(|r| r.phase == Some(phase))
            .collect()
    }

    /// The golden record for an input, if profiled.
    pub fn golden_for(&self, input: &InputParams) -> Option<&GoldenRecord> {
        self.goldens.iter().find(|g| &g.input == input)
    }

    /// All distinct control-flow signatures seen, in first-seen order.
    pub fn control_flow_classes(&self) -> Vec<Vec<usize>> {
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for g in &self.goldens {
            if !classes.contains(&g.control_flow) {
                classes.push(g.control_flow.clone());
            }
        }
        classes
    }
}

/// How much training data to collect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Number of execution phases.
    pub num_phases: usize,
    /// Random sparse multi-block samples per (input, phase).
    pub sparse_samples: usize,
    /// Whether to also collect whole-run (phase-agnostic) samples, used
    /// by Fig. 9/10's "All" column and by baseline comparisons.
    pub whole_run_samples: usize,
    /// RNG seed for the sparse sampling.
    pub seed: u64,
}

impl Default for SamplingPlan {
    fn default() -> Self {
        SamplingPlan {
            num_phases: 4,
            sparse_samples: 36,
            whole_run_samples: 0,
            seed: 0xC60,
        }
    }
}

/// Profiles `app` on the given inputs according to the plan.
///
/// # Errors
///
/// Propagates application runtime errors; returns
/// [`OpproxError::InsufficientData`] when `inputs` is empty.
pub fn collect_training_data(
    app: &dyn ApproxApp,
    inputs: &[InputParams],
    plan: &SamplingPlan,
) -> Result<TrainingData, OpproxError> {
    collect_training_data_with(&EvalEngine::default(), app, inputs, plan)
}

/// [`collect_training_data`] on a shared [`EvalEngine`].
///
/// All profiling runs — goldens, per-phase sweeps, sparse samples, and
/// whole-run samples — are submitted as engine batches and execute on the
/// work-stealing pool (the analogue of the paper's cluster-parallel
/// profiling jobs). Results are assembled in submission order, so the
/// training data is **bit-identical** to a sequential collection for any
/// thread count.
///
/// # Errors
///
/// Propagates application runtime errors; returns
/// [`OpproxError::InsufficientData`] when `inputs` is empty or when
/// degraded-mode collection dropped every sample.
///
/// # Degraded mode
///
/// Evaluation failures (exhausted retries, quarantined keys — see
/// [`crate::fault`]) do not abort the collection. A failed golden drops
/// that input wholesale (every QoS label depends on it); a failed sample
/// drops only that row. Every drop is recorded in the engine's
/// [`crate::fault::RobustnessReport`], and the models are simply fitted
/// on the surviving rows. Fatal errors (rejected inputs or schedules)
/// still abort.
pub fn collect_training_data_with(
    engine: &EvalEngine,
    app: &dyn ApproxApp,
    inputs: &[InputParams],
    plan: &SamplingPlan,
) -> Result<TrainingData, OpproxError> {
    if inputs.is_empty() {
        return Err(OpproxError::InsufficientData(
            "no representative inputs provided".into(),
        ));
    }
    engine.stage("profiling", || {
        let blocks = &app.meta().blocks;

        // Golden runs for every input, as one parallel batch. A failed
        // golden drops the whole input.
        let accurate = PhaseSchedule::accurate(blocks.len());
        let golden_jobs: Vec<(InputParams, PhaseSchedule)> = inputs
            .iter()
            .map(|input| (input.clone(), accurate.clone()))
            .collect();
        let mut live_inputs: Vec<&InputParams> = Vec::with_capacity(inputs.len());
        let mut goldens = Vec::with_capacity(inputs.len());
        let golden_outcomes = engine.telemetry().span("profiling/goldens", || {
            engine.run_batch_resilient(app, &golden_jobs)
        });
        for (input, outcome) in inputs.iter().zip(golden_outcomes) {
            match outcome {
                Ok(golden) => {
                    live_inputs.push(input);
                    goldens.push(golden);
                }
                Err(e) => match degradable_kind(&e) {
                    Some(kind) => engine.faults().record_drop(DroppedSample {
                        phase: None,
                        levels: vec![0; blocks.len()],
                        golden: true,
                        kind,
                    }),
                    None => return Err(e),
                },
            }
        }
        if live_inputs.is_empty() {
            return Err(OpproxError::InsufficientData(
                "every representative input's golden run failed".into(),
            ));
        }

        // Per-phase: exhaustive local sweeps + sparse multi-block samples.
        let mut configs: Vec<LevelConfig> = Vec::new();
        for b in 0..blocks.len() {
            configs.extend(local_sweep(blocks, b));
        }
        configs.extend(sample_configs(blocks, plan.sparse_samples, plan.seed));
        let whole = sample_configs(blocks, plan.whole_run_samples, plan.seed ^ 0xA11);

        // One flat batch covering every (input, phase, config) sample plus
        // the whole-run samples, in the order the records are emitted.
        let mut jobs: Vec<(InputParams, PhaseSchedule)> = Vec::new();
        // The sample each job produces: (live input index, phase, config).
        let mut labels: Vec<(usize, Option<usize>, LevelConfig)> = Vec::new();
        for (ii, input) in live_inputs.iter().enumerate() {
            let golden_iters = goldens[ii].outer_iters;
            for phase in 0..plan.num_phases {
                engine.telemetry().event(
                    "profiling.sweep",
                    &[
                        ("input", ii as f64),
                        ("phase", phase as f64),
                        ("jobs", configs.len() as f64),
                    ],
                );
                for config in &configs {
                    let schedule = PhaseSchedule::single_phase(
                        config.clone(),
                        phase,
                        plan.num_phases,
                        golden_iters,
                    )?;
                    jobs.push(((*input).clone(), schedule));
                    labels.push((ii, Some(phase), config.clone()));
                }
            }
            for config in &whole {
                jobs.push(((*input).clone(), PhaseSchedule::constant(config.clone())));
                labels.push((ii, None, config.clone()));
            }
        }
        engine.faults().add_requested_samples(labels.len() as u64);
        engine
            .telemetry()
            .add("sampling.requested", labels.len() as u64);
        let results = engine.telemetry().span("profiling/samples", || {
            engine.run_batch_resilient(app, &jobs)
        });

        let mut data = TrainingData::default();
        for (input, golden) in live_inputs.iter().zip(goldens.iter()) {
            data.goldens.push(GoldenRecord {
                input: (*input).clone(),
                work: golden.work,
                outer_iters: golden.outer_iters,
                control_flow: golden.log.control_flow_signature(),
            });
        }
        for ((ii, phase, config), outcome) in labels.into_iter().zip(results) {
            let golden = &goldens[ii];
            let result = match outcome {
                Ok(result) => result,
                Err(e) => match degradable_kind(&e) {
                    // Degraded mode: drop the row, keep collecting.
                    Some(kind) => {
                        engine.faults().record_drop(DroppedSample {
                            phase,
                            levels: config.levels().to_vec(),
                            golden: false,
                            kind,
                        });
                        continue;
                    }
                    None => return Err(e),
                },
            };
            data.records.push(SampleRecord {
                input: live_inputs[ii].clone(),
                phase,
                num_phases: if phase.is_some() { plan.num_phases } else { 1 },
                config,
                speedup: golden.speedup_over(&result),
                qos: app.qos_degradation(golden, &result),
                outer_iters: result.outer_iters,
                control_flow: result.log.control_flow_signature(),
            });
        }
        if data.records.is_empty() {
            return Err(OpproxError::InsufficientData(
                "every training sample was dropped by degraded-mode collection".into(),
            ));
        }
        // Per-phase measured speedup ceilings: an order-independent fact
        // the A016 lint compares against the optimizer's predictions.
        for phase in 0..plan.num_phases {
            let max_speedup = data
                .records
                .iter()
                .filter(|r| r.phase == Some(phase))
                .map(|r| r.speedup)
                .fold(0.0, f64::max);
            if max_speedup > 0.0 {
                engine
                    .telemetry()
                    .set_gauge(&format!("profile.phase[{phase}].max_speedup"), max_speedup);
            }
        }
        Ok(data)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_apps::Pso;

    fn small_plan() -> SamplingPlan {
        SamplingPlan {
            num_phases: 2,
            sparse_samples: 3,
            whole_run_samples: 2,
            seed: 1,
        }
    }

    #[test]
    fn collects_goldens_locals_sparse_and_whole_run() {
        let app = Pso::new();
        let inputs = vec![InputParams::new(vec![16.0, 3.0])];
        let data = collect_training_data(&app, &inputs, &small_plan()).unwrap();
        assert_eq!(data.goldens.len(), 1);
        // PSO: 3 blocks × 5 nonzero levels = 15 locals + 3 sparse = 18 per
        // phase, × 2 phases + 2 whole-run.
        assert_eq!(data.records.len(), 18 * 2 + 2);
        assert_eq!(data.phase_records(0).len(), 18);
        assert_eq!(data.phase_records(1).len(), 18);
        assert_eq!(data.records.iter().filter(|r| r.phase.is_none()).count(), 2);
    }

    #[test]
    fn samples_have_sane_measurements() {
        let app = Pso::new();
        let inputs = vec![InputParams::new(vec![16.0, 3.0])];
        let data = collect_training_data(&app, &inputs, &small_plan()).unwrap();
        for r in &data.records {
            assert!(r.speedup.is_finite() && r.speedup > 0.0);
            assert!(r.qos.is_finite() && r.qos >= 0.0);
            assert!(r.outer_iters > 0);
            assert!(!r.config.is_accurate());
        }
    }

    #[test]
    fn golden_lookup_and_classes() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let data =
            collect_training_data(&app, std::slice::from_ref(&input), &small_plan()).unwrap();
        assert!(data.golden_for(&input).is_some());
        assert!(data
            .golden_for(&InputParams::new(vec![99.0, 3.0]))
            .is_none());
        assert_eq!(data.control_flow_classes().len(), 1);
    }

    #[test]
    fn empty_inputs_rejected() {
        let app = Pso::new();
        assert!(collect_training_data(&app, &[], &small_plan()).is_err());
    }

    #[test]
    fn training_data_is_deterministic() {
        let app = Pso::new();
        let inputs = vec![InputParams::new(vec![16.0, 3.0])];
        let a = collect_training_data(&app, &inputs, &small_plan()).unwrap();
        let b = collect_training_data(&app, &inputs, &small_plan()).unwrap();
        assert_eq!(a, b);
    }
}
