//! The optimization framework (paper Sec. 3.8, Algorithm 2).
//!
//! Given a total QoS-degradation budget, OPPROX
//!
//! 1. computes each phase's *return on investment* (Eq. 1) from the
//!    training data,
//! 2. allocates the budget across phases in proportion to their
//!    normalized ROI,
//! 3. visits phases in decreasing ROI order, solving for each the
//!    constrained maximization
//!    `max S(A)  s.t.  δQoS(A) ≤ phase budget`
//!    over the discrete level space, using the conservative model
//!    predictions, and
//! 4. rolls any unused sub-budget over to the remaining phases.
//!
//! The per-phase problem is solved by a best-first branch-and-bound
//! search over partial level assignments: subtrees are cut when an
//! admissible per-block speedup upper bound cannot beat the incumbent,
//! when a conservative QoS lower bound already exceeds the sub-budget,
//! or when the upper bound cannot clear the worth-it gate (see
//! [`PhaseBounds`](crate::modeling::PhaseBounds)). The pruning rules are
//! chosen so the search returns the *identical* plan the exhaustive scan
//! would (ties broken by enumeration index), which the exhaustive oracle
//! [`exhaustive_phase_oracle`] pins under property test. Spaces above
//! [`EXHAUSTIVE_LIMIT`] additionally cap the number of leaf evaluations,
//! turning the search into an any-time heuristic there.

use crate::error::OpproxError;
use crate::modeling::{AppModels, PhaseBounds};
use crate::spec::AccuracySpec;
use crate::telemetry::Telemetry;
use opprox_approx_rt::block::BlockDescriptor;
use opprox_approx_rt::config::{config_space_size, enumerate_configs};
use opprox_approx_rt::{InputParams, LevelConfig, PhaseSchedule};
use serde::{Deserialize, Serialize};

/// Above this per-phase configuration-space size the pruned search caps
/// its number of leaf evaluations at this many configurations (capped
/// subtrees are reported as pruned in the search stats), trading
/// exhaustive optimality for bounded latency. At or below the limit the
/// search is exact: it returns the configuration the exhaustive scan
/// would.
pub const EXHAUSTIVE_LIMIT: u64 = 20_000;

/// The "worth it" gate (Algorithm 2): a configuration must predict at
/// least this point speedup to be preferred over staying accurate.
/// Slightly above 1.0 so model noise around break-even never flips a
/// phase into approximation for a ~0% win.
pub const WORTH_IT_SPEEDUP: f64 = 1.005;

/// Subtrees with at most this many leaf configurations are evaluated
/// directly (batched) instead of bounded further: a bound costs three
/// interval predictions — on the order of tens of batched row
/// evaluations — so below this size just evaluating the leaves is
/// cheaper, and in the worst (unprunable) case the search degrades to
/// the exhaustive scan plus only a handful of bound calls.
const DIRECT_EVAL_LEAVES: u64 = 48;

/// Flush the buffered-leaf batch to the models once it reaches this many
/// rows, so the incumbent tightens while the search is still running.
const LEAF_BATCH: usize = 512;

/// Minimum buffered rows worth flushing early just to tighten the
/// incumbent between sibling subtrees.
const LEAF_FLUSH_MIN: usize = 36;

/// The plan chosen for one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// The phase index.
    pub phase: usize,
    /// The chosen level configuration.
    pub config: LevelConfig,
    /// The sub-budget that was allocated to the phase.
    pub allocated_budget: f64,
    /// The (conservative) QoS degradation the chosen config is predicted
    /// to consume.
    pub predicted_qos: f64,
    /// The (conservative) whole-run speedup predicted for approximating
    /// only this phase.
    pub predicted_speedup: f64,
}

/// The complete optimization outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationPlan {
    /// Per-phase choices, in phase order.
    pub phases: Vec<PhasePlan>,
    /// The schedule to run the application with.
    pub schedule: PhaseSchedule,
    /// Combined predicted speedup across phases.
    pub predicted_speedup: f64,
    /// Combined predicted QoS degradation across phases.
    pub predicted_qos: f64,
}

/// How the per-phase search treats the models' uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Conservatism {
    /// Constrain on the upper confidence band of the QoS prediction —
    /// the paper's default, which guarantees the *predicted* QoS stays
    /// within budget even under model error.
    Band,
    /// Constrain on the point prediction. More aggressive; used by the
    /// validated optimizer to generate candidate plans that a real
    /// execution then vets.
    Point,
}

/// Solves Algorithm 2 for one input and budget.
///
/// `expected_iters` is the accurate-run iteration count used to lay out
/// the phase boundaries (the paper derives it from the golden run of the
/// production input's control-flow class).
///
/// # Errors
///
/// Propagates model prediction errors. An empty result is never an
/// error: if no configuration fits a phase's budget, that phase stays
/// accurate.
pub fn optimize(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    spec: &AccuracySpec,
    expected_iters: u64,
) -> Result<OptimizationPlan, OpproxError> {
    optimize_with(
        models,
        blocks,
        input,
        spec,
        expected_iters,
        Conservatism::Band,
    )
}

/// [`optimize`] with an explicit conservatism mode.
///
/// # Errors
///
/// Same as [`optimize`].
pub fn optimize_with(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    spec: &AccuracySpec,
    expected_iters: u64,
    conservatism: Conservatism,
) -> Result<OptimizationPlan, OpproxError> {
    optimize_traced(
        models,
        blocks,
        input,
        spec,
        expected_iters,
        conservatism,
        None,
    )
}

/// [`optimize_with`] with an optional telemetry registry: every phase
/// visit emits an `optimize.phase` event (solve id, visit step, ROI,
/// allocated sub-budget, leftover roll-over, predicted QoS/speedup) and
/// each solve closes with an `optimize.plan` event. Events are emitted in
/// visit order — decreasing ROI — so traces make Algorithm 2's budget
/// redistribution an assertable fact.
///
/// # Errors
///
/// Same as [`optimize`].
#[allow(clippy::too_many_arguments)]
pub fn optimize_traced(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    spec: &AccuracySpec,
    expected_iters: u64,
    conservatism: Conservatism,
    telemetry: Option<&Telemetry>,
) -> Result<OptimizationPlan, OpproxError> {
    let num_phases = models.num_phases();
    let rois = models.rois(input)?;
    let roi_sum: f64 = rois.iter().sum();

    // Visit phases in decreasing ROI order (Algorithm 2, line 3).
    let mut order: Vec<usize> = (0..num_phases).collect();
    order.sort_by(|&a, &b| {
        rois[b]
            .partial_cmp(&rois[a])
            .expect("finite ROI")
            .then(a.cmp(&b))
    });

    let total_budget = spec.error_budget();
    let mut leftover = 0.0f64;
    let mut chosen: Vec<Option<PhasePlan>> = vec![None; num_phases];

    // A per-registry solve id keeps events from the many candidate solves
    // a validated request performs distinguishable in one trace. The root
    // `optimize.start` event carries the total budget, so the per-phase
    // allocations in the `optimize.phase` ledger telescope to an amount a
    // cross-artifact audit can check (rule X002).
    let solve = telemetry.map(|t| {
        t.incr("optimize.solves");
        let solve = (t.counter_value("optimize.solves") - 1) as f64;
        t.event(
            "optimize.start",
            &[
                ("solve", solve),
                ("budget", total_budget),
                ("phases", num_phases as f64),
            ],
        );
        solve
    });

    for (step, &phase) in order.iter().enumerate() {
        let norm_roi = if roi_sum > 0.0 {
            rois[phase] / roi_sum
        } else {
            1.0 / num_phases as f64
        };
        let leftover_in = leftover;
        let phase_budget = total_budget * norm_roi + leftover;
        // The span path carries the phase id, linking the span tree to
        // the `optimize.phase` event ledger (one span per phase visit).
        let searched = match telemetry {
            Some(t) => t.span(&format!("optimize/phase[{phase}]"), || {
                optimize_phase(models, blocks, input, phase, phase_budget, conservatism)
            }),
            None => optimize_phase(models, blocks, input, phase, phase_budget, conservatism),
        };
        let (best, stats) = searched?;
        match best {
            Some(plan) => {
                leftover = (phase_budget - plan.predicted_qos).max(0.0);
                chosen[phase] = Some(PhasePlan {
                    allocated_budget: phase_budget,
                    ..plan
                });
            }
            None => {
                // Nothing fits: the whole sub-budget rolls over.
                leftover = phase_budget;
                chosen[phase] = Some(PhasePlan {
                    phase,
                    config: LevelConfig::accurate(blocks.len()),
                    allocated_budget: phase_budget,
                    predicted_qos: 0.0,
                    predicted_speedup: 1.0,
                });
            }
        }
        if let (Some(t), Some(solve)) = (telemetry, solve) {
            let plan = chosen[phase].as_ref().expect("just filled");
            t.event(
                "optimize.phase",
                &[
                    ("solve", solve),
                    ("step", step as f64),
                    ("phase", phase as f64),
                    ("roi", rois[phase]),
                    ("allocated", phase_budget),
                    ("leftover_in", leftover_in),
                    ("leftover_out", leftover),
                    ("predicted_qos", plan.predicted_qos),
                    ("predicted_speedup", plan.predicted_speedup),
                    ("space", config_space_size(blocks) as f64),
                    ("visited", stats.visited as f64),
                    ("expanded", stats.expanded as f64),
                    ("pruned", stats.pruned as f64),
                    ("evaluated", stats.evaluated as f64),
                    ("bound_quality", stats.bound_quality()),
                ],
            );
        }
    }

    let phases: Vec<PhasePlan> = chosen.into_iter().map(|p| p.expect("filled")).collect();

    // Combine per-phase predictions: speedups compose via saved time
    // fractions (each per-phase speedup is a whole-run speedup with only
    // that phase approximated), QoS degradations compose additively.
    let mut saved_fraction = 0.0;
    let mut predicted_qos = 0.0;
    for p in &phases {
        saved_fraction += 1.0 - 1.0 / p.predicted_speedup.max(0.01);
        predicted_qos += p.predicted_qos;
    }
    let predicted_speedup = 1.0 / (1.0 - saved_fraction).clamp(0.05, 1.0);

    let schedule = PhaseSchedule::new(
        phases.iter().map(|p| p.config.clone()).collect(),
        expected_iters.max(1),
    )
    .map_err(OpproxError::from)?;

    if let (Some(t), Some(solve)) = (telemetry, solve) {
        t.event(
            "optimize.plan",
            &[
                ("solve", solve),
                ("predicted_speedup", predicted_speedup),
                ("predicted_qos", predicted_qos),
            ],
        );
    }

    Ok(OptimizationPlan {
        phases,
        schedule,
        predicted_speedup,
        predicted_qos,
    })
}

/// Counters describing one per-phase search, surfaced as fields on the
/// `optimize.phase` telemetry event. A considered interior node is either
/// pruned or expanded, so `visited == pruned + expanded` always holds —
/// the `analyze` A019 rule lints traces that violate it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Interior nodes whose bounds were computed.
    pub visited: u64,
    /// Visited nodes whose subtree was searched further.
    pub expanded: u64,
    /// Visited nodes whose subtree was cut (infeasible, gated, dominated
    /// by the incumbent, or dropped by the evaluation cap).
    pub pruned: u64,
    /// Leaf configurations batch-evaluated through the models.
    pub evaluated: u64,
}

impl SearchStats {
    /// Fraction of considered nodes the bounds managed to cut — a cheap
    /// proxy for how tight the bounds were on this space.
    pub fn bound_quality(&self) -> f64 {
        self.pruned as f64 / self.visited.max(1) as f64
    }
}

/// Solves the per-phase constrained maximization (`optimizePhase` in
/// Algorithm 2) by bound-pruned search. Returns `None` when no
/// non-accurate configuration fits, along with the search counters.
///
/// On spaces at or below [`EXHAUSTIVE_LIMIT`] the result is bitwise
/// identical to [`exhaustive_phase_oracle`]'s.
///
/// # Errors
///
/// Propagates model prediction errors.
pub fn optimize_phase(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    phase: usize,
    budget: f64,
    conservatism: Conservatism,
) -> Result<(Option<PhasePlan>, SearchStats), OpproxError> {
    if budget <= 0.0 {
        return Ok((None, SearchStats::default()));
    }
    let cap = (config_space_size(blocks) > EXHAUSTIVE_LIMIT).then_some(EXHAUSTIVE_LIMIT);
    let bounds = models.phase_bounds(input, phase, blocks)?;
    let mut radix_prefix = Vec::with_capacity(blocks.len() + 1);
    radix_prefix.push(1u64);
    for block in blocks {
        let last = *radix_prefix.last().expect("non-empty");
        radix_prefix.push(last.saturating_mul(block.num_levels() as u64));
    }
    let mut search = PhaseSearch {
        models,
        input,
        phase,
        budget,
        conservatism,
        bounds,
        radix_prefix,
        cap,
        capped: false,
        stats: SearchStats::default(),
        buf: Vec::new(),
        buf_idx: Vec::new(),
        incumbent: None,
    };
    let mut levels = vec![0u8; blocks.len()];
    search.stats.visited += 1;
    let root = search.bounds.bound_suffix(&[], search.band());
    if root.qos_lb > budget || root.speedup_ub <= WORTH_IT_SPEEDUP {
        search.stats.pruned += 1;
    } else {
        search.stats.expanded += 1;
        search.visit(blocks.len(), &mut levels)?;
        search.flush()?;
    }
    let plan = search.incumbent.take().map(|inc| PhasePlan {
        phase,
        config: inc.config,
        allocated_budget: budget,
        predicted_qos: inc.qos,
        predicted_speedup: inc.speedup,
    });
    Ok((plan, search.stats))
}

/// The best feasible leaf seen so far. `idx` is the configuration's
/// mixed-radix enumeration index (block 0 least significant), which is
/// exactly its position in [`enumerate_configs`] order — the tie-break
/// that keeps the pruned search plan-identical to the exhaustive scan.
struct Incumbent {
    speedup: f64,
    qos: f64,
    idx: u64,
    config: LevelConfig,
}

/// One in-flight per-phase branch-and-bound search.
///
/// A node fixes the levels of a trailing run of blocks (`levels[split..]`)
/// and leaves the rest free; expanding it pins block `split - 1` to each
/// of its levels. Fixing from the most significant block down makes every
/// subtree a *contiguous* range of enumeration indices, and the pruning
/// rules preserve exhaustive-scan identity:
///
/// * `qos_lb > budget` — no leaf in the subtree is feasible;
/// * `speedup_ub <= WORTH_IT_SPEEDUP` — no leaf clears the gate;
/// * `speedup_ub < incumbent.speedup` (strictly) — no leaf can beat the
///   incumbent, and a leaf that merely *ties* it can still never win,
///   because ties go to the lower enumeration index and an equal-speedup
///   subtree is only cut when its bound is strictly below (never happens
///   for a tie, as bounds are admissible).
///
/// Children are expanded best-bound-first so strong incumbents appear
/// early and dominate more of the remaining siblings.
struct PhaseSearch<'a> {
    models: &'a AppModels,
    input: &'a InputParams,
    phase: usize,
    budget: f64,
    conservatism: Conservatism,
    bounds: PhaseBounds<'a>,
    /// `radix_prefix[i]` = number of level combinations of blocks `..i`
    /// (saturating); doubles as the enumeration-index weight of block `i`.
    radix_prefix: Vec<u64>,
    cap: Option<u64>,
    capped: bool,
    stats: SearchStats,
    buf: Vec<LevelConfig>,
    buf_idx: Vec<u64>,
    incumbent: Option<Incumbent>,
}

impl PhaseSearch<'_> {
    fn band(&self) -> bool {
        matches!(self.conservatism, Conservatism::Band)
    }

    fn index_of(&self, levels: &[u8]) -> u64 {
        levels
            .iter()
            .zip(&self.radix_prefix)
            .map(|(&l, &w)| (l as u64).saturating_mul(w))
            .fold(0u64, u64::saturating_add)
    }

    /// Searches the subtree where `levels[split..]` is fixed.
    fn visit(&mut self, split: usize, levels: &mut [u8]) -> Result<(), OpproxError> {
        if self.radix_prefix[split] <= DIRECT_EVAL_LEAVES {
            return self.buffer_subtree(split, levels);
        }
        let b = split - 1;
        let band = self.band();

        // Bound every child once; feasibility and the worth-it gate do
        // not depend on the incumbent, so those cuts are final.
        let mut survivors: Vec<(u8, f64)> = Vec::new();
        for level in 0..=self.bounds.max_level(b) {
            levels[b] = level;
            self.stats.visited += 1;
            let nb = self.bounds.bound_suffix(&levels[b..], band);
            if nb.qos_lb > self.budget || nb.speedup_ub <= WORTH_IT_SPEEDUP {
                self.stats.pruned += 1;
            } else {
                survivors.push((level, nb.speedup_ub));
            }
        }

        // Best bound first (ties by level, though the order of ties
        // cannot change the result thanks to the index tie-break).
        survivors.sort_by(|x, y| {
            y.1.partial_cmp(&x.1)
                .expect("bounds are never NaN")
                .then(x.0.cmp(&y.0))
        });
        for (level, ub) in survivors {
            // Let the incumbent catch up with recently buffered leaves
            // before judging the next sibling.
            if self.buf.len() >= LEAF_FLUSH_MIN {
                self.flush()?;
            }
            let dominated = self.incumbent.as_ref().is_some_and(|inc| ub < inc.speedup);
            if self.capped || dominated {
                self.stats.pruned += 1;
                continue;
            }
            self.stats.expanded += 1;
            levels[b] = level;
            self.visit(b, levels)?;
        }
        levels[b] = 0;
        Ok(())
    }

    /// Buffers every leaf of the subtree (all level combinations of
    /// blocks `..split`) for batched evaluation, in enumeration order.
    fn buffer_subtree(&mut self, split: usize, levels: &mut [u8]) -> Result<(), OpproxError> {
        for l in &mut levels[..split] {
            *l = 0;
        }
        'leaves: loop {
            if levels.iter().any(|&l| l > 0) {
                // (The all-zero leaf is the accurate config — never a
                // candidate.)
                if let Some(cap) = self.cap {
                    if self.stats.evaluated + self.buf.len() as u64 >= cap {
                        self.capped = true;
                        break 'leaves;
                    }
                }
                self.buf.push(LevelConfig::new(levels.to_vec()));
                self.buf_idx.push(self.index_of(levels));
            }
            let mut b = 0;
            loop {
                if b == split {
                    break 'leaves;
                }
                if levels[b] < self.bounds.max_level(b) {
                    levels[b] += 1;
                    break;
                }
                levels[b] = 0;
                b += 1;
            }
        }
        for l in &mut levels[..split] {
            *l = 0;
        }
        if self.buf.len() >= LEAF_BATCH {
            self.flush()?;
        }
        Ok(())
    }

    /// Evaluates the buffered leaves in one fused batched model pass
    /// (the same pass the exhaustive scan uses, so the values are bit
    /// identical) and folds the feasible ones into the incumbent.
    /// Feasibility uses the conservative (upper-band) QoS estimate; the
    /// worth-it gate and the ranking use the point speedup estimate,
    /// since the band is a per-phase constant in log space and would
    /// shift every candidate identically.
    fn flush(&mut self) -> Result<(), OpproxError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let pairs = self
            .models
            .predict_pair_batch(self.input, self.phase, &self.buf)?;
        self.stats.evaluated += self.buf.len() as u64;
        for (i, (point, conservative)) in pairs.iter().enumerate() {
            let constrained_qos = match self.conservatism {
                Conservatism::Band => conservative.qos,
                Conservatism::Point => point.qos,
            };
            if constrained_qos > self.budget || point.speedup <= WORTH_IT_SPEEDUP {
                continue;
            }
            let idx = self.buf_idx[i];
            let better = self.incumbent.as_ref().is_none_or(|inc| {
                point.speedup > inc.speedup || (point.speedup == inc.speedup && idx < inc.idx)
            });
            if better {
                self.incumbent = Some(Incumbent {
                    speedup: point.speedup,
                    qos: constrained_qos,
                    idx,
                    config: self.buf[i].clone(),
                });
            }
        }
        self.buf.clear();
        self.buf_idx.clear();
        Ok(())
    }
}

/// The exhaustive per-phase scan, kept as the oracle the pruned search is
/// checked against: property tests assert the branch-and-bound plan is
/// bitwise identical on every space at or below [`EXHAUSTIVE_LIMIT`].
///
/// Enumerates the level space once and predicts it in one fused batched
/// model pass (point + conservative together), then applies the
/// feasibility gate and strictly-greater ranking in enumeration order.
///
/// # Errors
///
/// Propagates model prediction errors.
pub fn exhaustive_phase_oracle(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    phase: usize,
    budget: f64,
    conservatism: Conservatism,
) -> Result<Option<PhasePlan>, OpproxError> {
    if budget <= 0.0 {
        return Ok(None);
    }
    let configs: Vec<LevelConfig> = enumerate_configs(blocks)
        .filter(|c| !c.is_accurate())
        .collect();
    let pairs = models.predict_pair_batch(input, phase, &configs)?;
    let mut best: Option<PhasePlan> = None;
    for (config, (point, conservative)) in configs.iter().zip(&pairs) {
        let constrained_qos = match conservatism {
            Conservatism::Band => conservative.qos,
            Conservatism::Point => point.qos,
        };
        if constrained_qos > budget || point.speedup <= WORTH_IT_SPEEDUP {
            continue;
        }
        let better = best
            .as_ref()
            .is_none_or(|b| point.speedup > b.predicted_speedup);
        if better {
            best = Some(PhasePlan {
                phase,
                config: config.clone(),
                allocated_budget: budget,
                predicted_qos: constrained_qos,
                predicted_speedup: point.speedup,
            });
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeling::ModelingOptions;
    use crate::sampling::{collect_training_data, SamplingPlan};
    use opprox_approx_rt::ApproxApp;
    use opprox_apps::Pso;

    fn setup() -> (Pso, AppModels, u64) {
        let app = Pso::new();
        let inputs = vec![
            InputParams::new(vec![16.0, 3.0]),
            InputParams::new(vec![24.0, 4.0]),
        ];
        let plan = SamplingPlan {
            num_phases: 2,
            sparse_samples: 10,
            whole_run_samples: 0,
            seed: 5,
        };
        let data = collect_training_data(&app, &inputs, &plan).unwrap();
        let iters = data.goldens[0].outer_iters;
        let models = AppModels::fit(&data, 2, &ModelingOptions::default()).unwrap();
        (app, models, iters)
    }

    #[test]
    fn pruned_search_prunes_and_ledger_balances() {
        let (app, models, _) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let mut total = SearchStats::default();
        for budget in [2.0, 10.0, 40.0] {
            for cons in [Conservatism::Band, Conservatism::Point] {
                for phase in 0..2 {
                    let (_, s) =
                        optimize_phase(&models, &app.meta().blocks, &input, phase, budget, cons)
                            .unwrap();
                    println!("budget {budget} {cons:?} phase {phase}: {s:?}");
                    assert_eq!(s.visited, s.expanded + s.pruned);
                    total.visited += s.visited;
                    total.pruned += s.pruned;
                    total.evaluated += s.evaluated;
                }
            }
        }
        // Individual solves may degenerate to a full scan (a flat phase
        // under a huge budget gives the bounds nothing to cut), but the
        // reference workload as a whole must show substantial pruning.
        assert!(total.pruned > 0, "no pruning on the reference workload");
        assert!(
            total.evaluated < 12 * 215 * 3 / 4,
            "bounds cut less than a quarter of the total leaf work: {total:?}"
        );
    }

    #[test]
    fn plan_respects_budget_in_prediction() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let spec = AccuracySpec::new(15.0);
        let plan = optimize(&models, &app.meta().blocks, &input, &spec, iters).unwrap();
        assert_eq!(plan.phases.len(), 2);
        assert!(
            plan.predicted_qos <= spec.error_budget() + 1e-6,
            "predicted qos {} over budget",
            plan.predicted_qos
        );
        assert!(plan.predicted_speedup >= 1.0);
    }

    #[test]
    fn zero_budget_yields_accurate_schedule() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let spec = AccuracySpec::new(0.0);
        let plan = optimize(&models, &app.meta().blocks, &input, &spec, iters).unwrap();
        assert!(plan.schedule.is_accurate());
        assert_eq!(plan.predicted_qos, 0.0);
    }

    #[test]
    fn larger_budget_never_predicts_less_speedup() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let small = optimize(
            &models,
            &app.meta().blocks,
            &input,
            &AccuracySpec::new(5.0),
            iters,
        )
        .unwrap();
        let large = optimize(
            &models,
            &app.meta().blocks,
            &input,
            &AccuracySpec::new(40.0),
            iters,
        )
        .unwrap();
        assert!(large.predicted_speedup >= small.predicted_speedup - 1e-9);
    }

    #[test]
    fn late_phase_gets_the_aggressive_config() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let spec = AccuracySpec::new(10.0);
        let plan = optimize(&models, &app.meta().blocks, &input, &spec, iters).unwrap();
        // With PSO's phase profile, the late phase carries the bulk of the
        // approximation.
        let early_sum: u32 = plan.phases[0]
            .config
            .levels()
            .iter()
            .map(|&l| l as u32)
            .sum();
        let late_sum: u32 = plan.phases[1]
            .config
            .levels()
            .iter()
            .map(|&l| l as u32)
            .sum();
        assert!(
            late_sum >= early_sum,
            "expected aggressive late phase, got early {early_sum} late {late_sum}"
        );
    }

    #[test]
    fn schedule_matches_chosen_configs() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let plan = optimize(
            &models,
            &app.meta().blocks,
            &input,
            &AccuracySpec::new(20.0),
            iters,
        )
        .unwrap();
        assert_eq!(plan.schedule.num_phases(), 2);
        for p in &plan.phases {
            assert_eq!(plan.schedule.configs()[p.phase], p.config);
        }
    }
}
