//! The optimization framework (paper Sec. 3.8, Algorithm 2).
//!
//! Given a total QoS-degradation budget, OPPROX
//!
//! 1. computes each phase's *return on investment* (Eq. 1) from the
//!    training data,
//! 2. allocates the budget across phases in proportion to their
//!    normalized ROI,
//! 3. visits phases in decreasing ROI order, solving for each the
//!    constrained maximization
//!    `max S(A)  s.t.  δQoS(A) ≤ phase budget`
//!    over the discrete level space, using the conservative model
//!    predictions, and
//! 4. rolls any unused sub-budget over to the remaining phases.
//!
//! The per-phase problem is solved exhaustively when the level space is
//! small enough (the paper's applications have 4–8 levels over 3–4
//! blocks, i.e. ≤ ~1300 combinations per phase) and by coordinate ascent
//! otherwise.

use crate::error::OpproxError;
use crate::modeling::AppModels;
use crate::spec::AccuracySpec;
use crate::telemetry::Telemetry;
use opprox_approx_rt::block::BlockDescriptor;
use opprox_approx_rt::config::{config_space_size, enumerate_configs};
use opprox_approx_rt::{InputParams, LevelConfig, PhaseSchedule};
use serde::{Deserialize, Serialize};

/// Above this per-phase configuration-space size the optimizer switches
/// from exhaustive enumeration to coordinate ascent.
pub const EXHAUSTIVE_LIMIT: u64 = 20_000;

/// The plan chosen for one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// The phase index.
    pub phase: usize,
    /// The chosen level configuration.
    pub config: LevelConfig,
    /// The sub-budget that was allocated to the phase.
    pub allocated_budget: f64,
    /// The (conservative) QoS degradation the chosen config is predicted
    /// to consume.
    pub predicted_qos: f64,
    /// The (conservative) whole-run speedup predicted for approximating
    /// only this phase.
    pub predicted_speedup: f64,
}

/// The complete optimization outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationPlan {
    /// Per-phase choices, in phase order.
    pub phases: Vec<PhasePlan>,
    /// The schedule to run the application with.
    pub schedule: PhaseSchedule,
    /// Combined predicted speedup across phases.
    pub predicted_speedup: f64,
    /// Combined predicted QoS degradation across phases.
    pub predicted_qos: f64,
}

/// How the per-phase search treats the models' uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Conservatism {
    /// Constrain on the upper confidence band of the QoS prediction —
    /// the paper's default, which guarantees the *predicted* QoS stays
    /// within budget even under model error.
    Band,
    /// Constrain on the point prediction. More aggressive; used by the
    /// validated optimizer to generate candidate plans that a real
    /// execution then vets.
    Point,
}

/// Solves Algorithm 2 for one input and budget.
///
/// `expected_iters` is the accurate-run iteration count used to lay out
/// the phase boundaries (the paper derives it from the golden run of the
/// production input's control-flow class).
///
/// # Errors
///
/// Propagates model prediction errors. An empty result is never an
/// error: if no configuration fits a phase's budget, that phase stays
/// accurate.
pub fn optimize(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    spec: &AccuracySpec,
    expected_iters: u64,
) -> Result<OptimizationPlan, OpproxError> {
    optimize_with(
        models,
        blocks,
        input,
        spec,
        expected_iters,
        Conservatism::Band,
    )
}

/// [`optimize`] with an explicit conservatism mode.
///
/// # Errors
///
/// Same as [`optimize`].
pub fn optimize_with(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    spec: &AccuracySpec,
    expected_iters: u64,
    conservatism: Conservatism,
) -> Result<OptimizationPlan, OpproxError> {
    optimize_traced(
        models,
        blocks,
        input,
        spec,
        expected_iters,
        conservatism,
        None,
    )
}

/// [`optimize_with`] with an optional telemetry registry: every phase
/// visit emits an `optimize.phase` event (solve id, visit step, ROI,
/// allocated sub-budget, leftover roll-over, predicted QoS/speedup) and
/// each solve closes with an `optimize.plan` event. Events are emitted in
/// visit order — decreasing ROI — so traces make Algorithm 2's budget
/// redistribution an assertable fact.
///
/// # Errors
///
/// Same as [`optimize`].
#[allow(clippy::too_many_arguments)]
pub fn optimize_traced(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    spec: &AccuracySpec,
    expected_iters: u64,
    conservatism: Conservatism,
    telemetry: Option<&Telemetry>,
) -> Result<OptimizationPlan, OpproxError> {
    let num_phases = models.num_phases();
    let rois = models.rois(input)?;
    let roi_sum: f64 = rois.iter().sum();

    // Visit phases in decreasing ROI order (Algorithm 2, line 3).
    let mut order: Vec<usize> = (0..num_phases).collect();
    order.sort_by(|&a, &b| {
        rois[b]
            .partial_cmp(&rois[a])
            .expect("finite ROI")
            .then(a.cmp(&b))
    });

    let total_budget = spec.error_budget();
    let mut leftover = 0.0f64;
    let mut chosen: Vec<Option<PhasePlan>> = vec![None; num_phases];

    // A per-registry solve id keeps events from the many candidate solves
    // a validated request performs distinguishable in one trace.
    let solve = telemetry.map(|t| {
        t.incr("optimize.solves");
        (t.counter_value("optimize.solves") - 1) as f64
    });

    for (step, &phase) in order.iter().enumerate() {
        let norm_roi = if roi_sum > 0.0 {
            rois[phase] / roi_sum
        } else {
            1.0 / num_phases as f64
        };
        let leftover_in = leftover;
        let phase_budget = total_budget * norm_roi + leftover;
        let best = optimize_phase(models, blocks, input, phase, phase_budget, conservatism)?;
        match best {
            Some(plan) => {
                leftover = (phase_budget - plan.predicted_qos).max(0.0);
                chosen[phase] = Some(PhasePlan {
                    allocated_budget: phase_budget,
                    ..plan
                });
            }
            None => {
                // Nothing fits: the whole sub-budget rolls over.
                leftover = phase_budget;
                chosen[phase] = Some(PhasePlan {
                    phase,
                    config: LevelConfig::accurate(blocks.len()),
                    allocated_budget: phase_budget,
                    predicted_qos: 0.0,
                    predicted_speedup: 1.0,
                });
            }
        }
        if let (Some(t), Some(solve)) = (telemetry, solve) {
            let plan = chosen[phase].as_ref().expect("just filled");
            t.event(
                "optimize.phase",
                &[
                    ("solve", solve),
                    ("step", step as f64),
                    ("phase", phase as f64),
                    ("roi", rois[phase]),
                    ("allocated", phase_budget),
                    ("leftover_in", leftover_in),
                    ("leftover_out", leftover),
                    ("predicted_qos", plan.predicted_qos),
                    ("predicted_speedup", plan.predicted_speedup),
                ],
            );
        }
    }

    let phases: Vec<PhasePlan> = chosen.into_iter().map(|p| p.expect("filled")).collect();

    // Combine per-phase predictions: speedups compose via saved time
    // fractions (each per-phase speedup is a whole-run speedup with only
    // that phase approximated), QoS degradations compose additively.
    let mut saved_fraction = 0.0;
    let mut predicted_qos = 0.0;
    for p in &phases {
        saved_fraction += 1.0 - 1.0 / p.predicted_speedup.max(0.01);
        predicted_qos += p.predicted_qos;
    }
    let predicted_speedup = 1.0 / (1.0 - saved_fraction).clamp(0.05, 1.0);

    let schedule = PhaseSchedule::new(
        phases.iter().map(|p| p.config.clone()).collect(),
        expected_iters.max(1),
    )
    .map_err(OpproxError::from)?;

    if let (Some(t), Some(solve)) = (telemetry, solve) {
        t.event(
            "optimize.plan",
            &[
                ("solve", solve),
                ("predicted_speedup", predicted_speedup),
                ("predicted_qos", predicted_qos),
            ],
        );
    }

    Ok(OptimizationPlan {
        phases,
        schedule,
        predicted_speedup,
        predicted_qos,
    })
}

/// Solves the per-phase constrained maximization (`optimizePhase` in
/// Algorithm 2). Returns `None` when no non-accurate configuration fits.
fn optimize_phase(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    phase: usize,
    budget: f64,
    conservatism: Conservatism,
) -> Result<Option<PhasePlan>, OpproxError> {
    if budget <= 0.0 {
        return Ok(None);
    }
    if config_space_size(blocks) <= EXHAUSTIVE_LIMIT {
        exhaustive_phase(models, blocks, input, phase, budget, conservatism)
    } else {
        coordinate_ascent_phase(models, blocks, input, phase, budget, conservatism)
    }
}

/// Scores one configuration against a phase budget. Feasibility uses the
/// conservative (upper-band) QoS estimate; the "is it worth it" gate and
/// the ranking use the point speedup estimate, since the band is a
/// per-phase constant in log space and would shift every candidate
/// identically.
fn evaluate(
    models: &AppModels,
    input: &InputParams,
    phase: usize,
    config: &LevelConfig,
    budget: f64,
    conservatism: Conservatism,
) -> Result<Option<(f64, f64)>, OpproxError> {
    let point = models.predict_point(input, phase, config)?;
    let constrained_qos = match conservatism {
        Conservatism::Band => models.predict(input, phase, config)?.qos,
        Conservatism::Point => point.qos,
    };
    if constrained_qos > budget {
        return Ok(None);
    }
    if point.speedup > 1.005 {
        Ok(Some((point.speedup, constrained_qos)))
    } else {
        Ok(None)
    }
}

fn exhaustive_phase(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    phase: usize,
    budget: f64,
    conservatism: Conservatism,
) -> Result<Option<PhasePlan>, OpproxError> {
    // Enumerate the level space once and predict it in two batched model
    // passes (point + conservative) instead of two scalar pipelines per
    // configuration; the scan then applies the same feasibility gate and
    // strictly-greater ranking in enumeration order, so the chosen plan
    // is identical to the per-row loop's.
    let configs: Vec<LevelConfig> = enumerate_configs(blocks)
        .into_iter()
        .filter(|c| !c.is_accurate())
        .collect();
    let points = models.predict_point_batch(input, phase, &configs)?;
    let conservative = match conservatism {
        Conservatism::Band => Some(models.predict_batch(input, phase, &configs)?),
        Conservatism::Point => None,
    };
    let mut best: Option<PhasePlan> = None;
    for (i, (config, point)) in configs.iter().zip(&points).enumerate() {
        let constrained_qos = match &conservative {
            Some(cons) => cons[i].qos,
            None => point.qos,
        };
        if constrained_qos > budget || point.speedup <= 1.005 {
            continue;
        }
        let better = best
            .as_ref()
            .is_none_or(|b| point.speedup > b.predicted_speedup);
        if better {
            best = Some(PhasePlan {
                phase,
                config: config.clone(),
                allocated_budget: budget,
                predicted_qos: constrained_qos,
                predicted_speedup: point.speedup,
            });
        }
    }
    Ok(best)
}

fn coordinate_ascent_phase(
    models: &AppModels,
    blocks: &[BlockDescriptor],
    input: &InputParams,
    phase: usize,
    budget: f64,
    conservatism: Conservatism,
) -> Result<Option<PhasePlan>, OpproxError> {
    let mut current = LevelConfig::accurate(blocks.len());
    let mut current_score = 1.0f64; // speedup of the accurate config
    let mut improved = true;
    while improved {
        improved = false;
        for (b, block) in blocks.iter().enumerate() {
            for level in 0..=block.max_level {
                if level == current.level(b) {
                    continue;
                }
                let candidate = current.with_level(b, level);
                if candidate.is_accurate() {
                    continue;
                }
                if let Some((speedup, _)) =
                    evaluate(models, input, phase, &candidate, budget, conservatism)?
                {
                    if speedup > current_score + 1e-9 {
                        current = candidate;
                        current_score = speedup;
                        improved = true;
                    }
                }
            }
        }
    }
    if current.is_accurate() {
        return Ok(None);
    }
    let pred = models.predict(input, phase, &current)?;
    Ok(Some(PhasePlan {
        phase,
        config: current,
        allocated_budget: budget,
        predicted_qos: pred.qos,
        predicted_speedup: pred.speedup,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeling::ModelingOptions;
    use crate::sampling::{collect_training_data, SamplingPlan};
    use opprox_approx_rt::ApproxApp;
    use opprox_apps::Pso;

    fn setup() -> (Pso, AppModels, u64) {
        let app = Pso::new();
        let inputs = vec![
            InputParams::new(vec![16.0, 3.0]),
            InputParams::new(vec![24.0, 4.0]),
        ];
        let plan = SamplingPlan {
            num_phases: 2,
            sparse_samples: 10,
            whole_run_samples: 0,
            seed: 5,
        };
        let data = collect_training_data(&app, &inputs, &plan).unwrap();
        let iters = data.goldens[0].outer_iters;
        let models = AppModels::fit(&data, 2, &ModelingOptions::default()).unwrap();
        (app, models, iters)
    }

    #[test]
    fn plan_respects_budget_in_prediction() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let spec = AccuracySpec::new(15.0);
        let plan = optimize(&models, &app.meta().blocks, &input, &spec, iters).unwrap();
        assert_eq!(plan.phases.len(), 2);
        assert!(
            plan.predicted_qos <= spec.error_budget() + 1e-6,
            "predicted qos {} over budget",
            plan.predicted_qos
        );
        assert!(plan.predicted_speedup >= 1.0);
    }

    #[test]
    fn zero_budget_yields_accurate_schedule() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let spec = AccuracySpec::new(0.0);
        let plan = optimize(&models, &app.meta().blocks, &input, &spec, iters).unwrap();
        assert!(plan.schedule.is_accurate());
        assert_eq!(plan.predicted_qos, 0.0);
    }

    #[test]
    fn larger_budget_never_predicts_less_speedup() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let small = optimize(
            &models,
            &app.meta().blocks,
            &input,
            &AccuracySpec::new(5.0),
            iters,
        )
        .unwrap();
        let large = optimize(
            &models,
            &app.meta().blocks,
            &input,
            &AccuracySpec::new(40.0),
            iters,
        )
        .unwrap();
        assert!(large.predicted_speedup >= small.predicted_speedup - 1e-9);
    }

    #[test]
    fn late_phase_gets_the_aggressive_config() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let spec = AccuracySpec::new(10.0);
        let plan = optimize(&models, &app.meta().blocks, &input, &spec, iters).unwrap();
        // With PSO's phase profile, the late phase carries the bulk of the
        // approximation.
        let early_sum: u32 = plan.phases[0]
            .config
            .levels()
            .iter()
            .map(|&l| l as u32)
            .sum();
        let late_sum: u32 = plan.phases[1]
            .config
            .levels()
            .iter()
            .map(|&l| l as u32)
            .sum();
        assert!(
            late_sum >= early_sum,
            "expected aggressive late phase, got early {early_sum} late {late_sum}"
        );
    }

    #[test]
    fn schedule_matches_chosen_configs() {
        let (app, models, iters) = setup();
        let input = InputParams::new(vec![16.0, 3.0]);
        let plan = optimize(
            &models,
            &app.meta().blocks,
            &input,
            &AccuracySpec::new(20.0),
            iters,
        )
        .unwrap();
        assert_eq!(plan.schedule.num_phases(), 2);
        for p in &plan.phases {
            assert_eq!(plan.schedule.configs()[p.phase], p.config);
        }
    }
}
