//! The unified optimization entry point.
//!
//! [`OptimizeRequest`] replaces the old trio of
//! `TrainedOpprox::optimize` / `optimize_validated` /
//! `optimize_validated_on` with one builder: every knob — conservatism,
//! empirical validation, validation budget, canary input, shared
//! evaluation engine — is an explicit, optional setting, and the result
//! ([`OptimizeOutcome`]) records which path actually produced the plan.
//!
//! # Example
//!
//! ```
//! use opprox_core::pipeline::{Opprox, TrainingOptions};
//! use opprox_core::request::{OptimizeRequest, OptimizePath};
//! use opprox_core::sampling::SamplingPlan;
//! use opprox_core::spec::AccuracySpec;
//! use opprox_apps::Pso;
//! use opprox_approx_rt::InputParams;
//!
//! let app = Pso::new();
//! let options = TrainingOptions {
//!     num_phases: Some(2),
//!     sampling: SamplingPlan { num_phases: 2, sparse_samples: 8, ..SamplingPlan::default() },
//!     ..TrainingOptions::default()
//! };
//! let trained = Opprox::train(&app, &options).unwrap();
//! let input = InputParams::new(vec![16.0, 3.0]);
//!
//! // Model-only: no real executions, plan straight from the models.
//! let outcome = OptimizeRequest::new(input.clone(), AccuracySpec::new(10.0))
//!     .run(&trained)
//!     .unwrap();
//! assert_eq!(outcome.path, OptimizePath::ModelOnly);
//! assert!(outcome.measured.is_none());
//!
//! // Validated: vet candidates with real executions before committing.
//! let outcome = OptimizeRequest::new(input, AccuracySpec::new(10.0))
//!     .validate_on(&app)
//!     .validation_budget(8)
//!     .run(&trained)
//!     .unwrap();
//! assert!(outcome.candidates_tried > 0);
//! assert!(outcome.measured.is_some());
//! ```

use crate::control::{self, ControlOptions, ControlSummary};
use crate::error::OpproxError;
use crate::evaluator::EvalEngine;
use crate::fault::{degradable_kind, RobustnessReport};
use crate::optimizer::{optimize_traced, Conservatism, OptimizationPlan};
use crate::pipeline::{MeasuredOutcome, TrainedOpprox};
use crate::spec::AccuracySpec;
use crate::telemetry::{Telemetry, TelemetryReport};
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule};
use serde::{Deserialize, Serialize};

/// Default cap on validation executions per optimization — orders of
/// magnitude below the exhaustive oracle's sweep.
pub const DEFAULT_VALIDATION_BUDGET: usize = 32;

/// Which path of the optimization pipeline produced the returned plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizePath {
    /// Pure Algorithm-2 solve; no real executions were performed.
    ModelOnly,
    /// A candidate plan passed empirical validation.
    Validated,
    /// No candidate passed validation; the fully accurate schedule was
    /// returned instead.
    AccurateFallback,
    /// The closed-loop adaptive controller produced the plan: the
    /// offline solve was executed phase-by-phase and re-planned on
    /// drift (see [`crate::control`]).
    Adaptive,
}

/// The result of an [`OptimizeRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeOutcome {
    /// The chosen plan.
    pub plan: OptimizationPlan,
    /// Which pipeline path produced it.
    pub path: OptimizePath,
    /// The measured outcome of the chosen plan on the validation input
    /// (`None` for the model-only path).
    pub measured: Option<MeasuredOutcome>,
    /// How many candidate plans were empirically validated (0 for the
    /// model-only path).
    pub candidates_tried: usize,
    /// The fault-injection and recovery ledger of the validation engine,
    /// when fault injection was configured or any recovery event (retry,
    /// quarantine, drop) occurred. `None` for a clean model-only solve.
    pub robustness: Option<RobustnessReport>,
    /// The telemetry snapshot of the request: optimizer budget-division
    /// events for every solve, plus — on the validated path — the
    /// engine's execution/cache counters and stage spans. For a fixed
    /// seed and an injected manual clock the JSON export is
    /// byte-identical across thread counts.
    pub telemetry: TelemetryReport,
    /// The adaptive controller's session ledger (`None` unless the
    /// request ran with [`OptimizeRequest::adaptive`]).
    pub control: Option<ControlSummary>,
}

/// Builder describing one optimization request against a trained system.
///
/// Construct with [`OptimizeRequest::new`], chain the optional settings,
/// and call [`OptimizeRequest::run`]. Without [`validate_on`] the request
/// is a pure model solve; with it, candidates are vetted with real
/// executions (optionally on a cheaper canary input) before the fastest
/// measured-within-budget plan is returned.
///
/// [`validate_on`]: OptimizeRequest::validate_on
#[derive(Clone)]
pub struct OptimizeRequest<'a> {
    input: InputParams,
    spec: AccuracySpec,
    conservatism: Conservatism,
    validation_app: Option<&'a dyn ApproxApp>,
    validation_budget: usize,
    canary: Option<InputParams>,
    engine: Option<&'a EvalEngine>,
    adaptive: Option<ControlOptions>,
}

impl<'a> OptimizeRequest<'a> {
    /// A request to optimize `input` under the accuracy budget `spec`.
    pub fn new(input: InputParams, spec: AccuracySpec) -> Self {
        OptimizeRequest {
            input,
            spec,
            conservatism: Conservatism::Band,
            validation_app: None,
            validation_budget: DEFAULT_VALIDATION_BUDGET,
            canary: None,
            engine: None,
            adaptive: None,
        }
    }

    /// Conservatism mode for the model-only solve (default:
    /// [`Conservatism::Band`], the paper's default). The validated path
    /// explores both modes regardless.
    #[must_use]
    pub fn conservatism(mut self, mode: Conservatism) -> Self {
        self.conservatism = mode;
        self
    }

    /// Enables empirical validation: candidate plans are vetted with real
    /// executions of `app` and the fastest measured-within-budget plan
    /// wins.
    #[must_use]
    pub fn validate_on(mut self, app: &'a dyn ApproxApp) -> Self {
        self.validation_app = Some(app);
        self
    }

    /// Caps the number of candidate plans validated with real executions
    /// (default [`DEFAULT_VALIDATION_BUDGET`]). Ignored without
    /// [`OptimizeRequest::validate_on`].
    #[must_use]
    pub fn validation_budget(mut self, budget: usize) -> Self {
        self.validation_budget = budget.max(1);
        self
    }

    /// Uses a separate *canary* input for the validation executions.
    ///
    /// The paper's related-work discussion points to canary inputs
    /// (Laurenzano et al., PLDI 2016) — scaled-down inputs that exercise
    /// the same behaviour at a fraction of the cost — as complementary to
    /// OPPROX. The request still optimizes *for* the production input;
    /// only the vetting runs use the canary, and the reported
    /// [`OptimizeOutcome::measured`] is the canary's measurement.
    #[must_use]
    pub fn canary(mut self, canary: InputParams) -> Self {
        self.canary = Some(canary);
        self
    }

    /// Runs the request through the closed-loop adaptive controller
    /// ([`crate::control::run_adaptive`]): the offline solve is executed
    /// phase-by-phase, realized per-phase work is checked against the
    /// model's confidence bands, and the remaining phases are re-planned
    /// with the remaining budget when reality drifts. Requires
    /// [`OptimizeRequest::validate_on`] (the controller executes the
    /// application for real).
    #[must_use]
    pub fn adaptive(mut self, options: ControlOptions) -> Self {
        self.adaptive = Some(options);
        self
    }

    /// Routes all validation executions through a shared [`EvalEngine`]
    /// so repeated configurations (across budgets, or against a prior
    /// training/oracle pass) come out of the execution cache. Without
    /// this a private engine is used.
    #[must_use]
    pub fn engine(mut self, engine: &'a EvalEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Executes the request against a trained system.
    ///
    /// # Errors
    ///
    /// Propagates model-prediction and (when validating) application
    /// runtime errors.
    pub fn run(&self, trained: &TrainedOpprox) -> Result<OptimizeOutcome, OpproxError> {
        // Reject corrupt model sets before any prediction runs on them:
        // a NaN coefficient or inverted band would silently poison every
        // Algorithm-2 solve below (`opprox analyze` rules A004/A007/A012).
        trained.validate_integrity()?;
        if let Some(options) = &self.adaptive {
            return self.run_adaptive(trained, options);
        }
        let expected = trained.estimate_golden_iters(&self.input)?;
        let Some(app) = self.validation_app else {
            // A model-only solve still traces its budget division: use the
            // shared engine's registry when one was attached, otherwise a
            // private registry local to this request.
            let local = Telemetry::new();
            let telemetry = match self.engine {
                Some(e) => e.telemetry(),
                None => &local,
            };
            let plan = optimize_traced(
                trained.models(),
                trained.blocks(),
                &self.input,
                &self.spec,
                expected,
                self.conservatism,
                Some(telemetry),
            )?;
            return Ok(OptimizeOutcome {
                plan,
                path: OptimizePath::ModelOnly,
                measured: None,
                candidates_tried: 0,
                robustness: None,
                telemetry: telemetry.report(),
                control: None,
            });
        };
        let private_engine;
        let engine = match self.engine {
            Some(e) => e,
            None => {
                private_engine = EvalEngine::default();
                &private_engine
            }
        };
        let mut outcome = engine.stage("validation", || {
            self.run_validated(engine, app, trained, expected)
        })?;
        let report = engine.robustness_report();
        if engine.fault_injection_enabled() || report.has_activity() {
            outcome.robustness = Some(report);
        }
        outcome.telemetry = engine.telemetry_report();
        Ok(outcome)
    }

    /// The adaptive path: hand the whole session to the controller.
    fn run_adaptive(
        &self,
        trained: &TrainedOpprox,
        options: &ControlOptions,
    ) -> Result<OptimizeOutcome, OpproxError> {
        let Some(app) = self.validation_app else {
            return Err(OpproxError::InvalidSpec(
                "adaptive mode executes the application: call validate_on(app) as well".into(),
            ));
        };
        let private_engine;
        let engine = match self.engine {
            Some(e) => e,
            None => {
                private_engine = EvalEngine::default();
                &private_engine
            }
        };
        let outcome = engine.stage("control", || {
            control::run_adaptive(trained, app, engine, &self.input, &self.spec, options)
        })?;
        let report = engine.robustness_report();
        let robustness = if engine.fault_injection_enabled() || report.has_activity() {
            Some(report)
        } else {
            None
        };
        Ok(OptimizeOutcome {
            plan: outcome.plan.clone(),
            path: OptimizePath::Adaptive,
            measured: outcome.measured,
            candidates_tried: 0,
            robustness,
            telemetry: engine.telemetry_report(),
            control: Some(outcome.summary()),
        })
    }

    /// The validated path: generate a bounded candidate set, vet every
    /// distinct candidate with one real execution (batched on the
    /// engine's pool), greedily merge the best passing plans, and return
    /// the fastest plan whose *measured* QoS stays within budget.
    fn run_validated(
        &self,
        engine: &EvalEngine,
        app: &dyn ApproxApp,
        trained: &TrainedOpprox,
        expected: u64,
    ) -> Result<OptimizeOutcome, OpproxError> {
        let budget = self.spec.error_budget();
        let canary = self.canary.as_ref().unwrap_or(&self.input);

        // Step 1: candidate plans from geometrically scaled model-driven
        // solves, plus structural variants of each (levels halved,
        // last-phase-only, last-half-only) that hedge against cross-phase
        // interactions the per-phase models cannot see, plus
        // phase-structured heuristic probes for the regimes where model
        // resolution bottoms out.
        let mut candidates: Vec<OptimizationPlan> = Vec::new();
        let push = |plan: OptimizationPlan, candidates: &mut Vec<OptimizationPlan>| {
            if !plan.schedule.is_accurate()
                && !candidates.iter().any(|c| c.schedule == plan.schedule)
            {
                candidates.push(plan);
            }
        };
        for scale in [1.0, 0.5, 2.0, 0.25, 4.0, 8.0] {
            let scaled = AccuracySpec::try_new(budget * scale)?;
            for mode in [Conservatism::Band, Conservatism::Point] {
                let plan = optimize_traced(
                    trained.models(),
                    trained.blocks(),
                    &self.input,
                    &scaled,
                    expected,
                    mode,
                    Some(engine.telemetry()),
                )?;
                for v in trained.plan_variants(&plan, expected)? {
                    push(v, &mut candidates);
                }
                push(plan, &mut candidates);
            }
        }
        for plan in trained.heuristic_candidates(expected)? {
            push(plan, &mut candidates);
        }
        candidates.truncate(self.validation_budget);

        // Step 2: validate each candidate once, as one engine batch. If
        // the canary's golden run itself fails past recovery, no
        // candidate can be vetted — degrade to the model-only plan
        // rather than aborting the whole request.
        let golden = match engine.golden(app, canary) {
            Ok(g) => g,
            Err(e) if degradable_kind(&e).is_some() => {
                let plan = optimize_traced(
                    trained.models(),
                    trained.blocks(),
                    &self.input,
                    &self.spec,
                    expected,
                    self.conservatism,
                    Some(engine.telemetry()),
                )?;
                return Ok(OptimizeOutcome {
                    plan,
                    path: OptimizePath::ModelOnly,
                    measured: None,
                    candidates_tried: 0,
                    robustness: None,
                    telemetry: TelemetryReport::default(),
                    control: None,
                });
            }
            Err(e) => return Err(e),
        };
        let outcomes = validate_batch(engine, app, canary, &golden, &candidates)?;
        let mut candidates_tried = candidates.len();
        // A candidate whose validation run failed past recovery is simply
        // dropped from consideration (degraded validation).
        let mut passing: Vec<(OptimizationPlan, MeasuredOutcome)> = candidates
            .into_iter()
            .zip(outcomes)
            .filter_map(|(c, o)| o.map(|o| (c, o)))
            .filter(|(_, o)| o.qos <= budget && o.speedup > 1.0)
            .collect();
        check_finite_speedups(&passing)?;
        passing.sort_by(|a, b| b.1.speedup.total_cmp(&a.1.speedup));

        // Step 3: greedy composition — merge the best passing plans
        // pairwise (levelwise max per phase) to compound independent
        // savings, validating each merge.
        let mut merged: Vec<OptimizationPlan> = Vec::new();
        for i in 0..passing.len().min(3) {
            for j in (i + 1)..passing.len().min(3) {
                let a = passing[i].0.schedule.configs();
                let b = passing[j].0.schedule.configs();
                if a.len() != b.len() {
                    continue;
                }
                let configs: Vec<LevelConfig> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(ca, cb)| {
                        LevelConfig::new(
                            ca.levels()
                                .iter()
                                .zip(cb.levels().iter())
                                .map(|(&x, &y)| x.max(y))
                                .collect(),
                        )
                    })
                    .collect();
                let schedule = PhaseSchedule::new(configs, expected.max(1))?;
                if passing.iter().any(|(p, _)| p.schedule == schedule)
                    || merged.iter().any(|p| p.schedule == schedule)
                {
                    continue;
                }
                merged.push(OptimizationPlan {
                    phases: Vec::new(),
                    schedule,
                    predicted_speedup: passing[i].0.predicted_speedup,
                    predicted_qos: passing[i].0.predicted_qos + passing[j].0.predicted_qos,
                });
            }
        }
        let outcomes = validate_batch(engine, app, canary, &golden, &merged)?;
        candidates_tried += merged.len();
        passing.extend(
            merged
                .into_iter()
                .zip(outcomes)
                .filter_map(|(c, o)| o.map(|o| (c, o)))
                .filter(|(_, o)| o.qos <= budget && o.speedup > 1.0),
        );

        check_finite_speedups(&passing)?;
        let best = passing
            .into_iter()
            .max_by(|a, b| a.1.speedup.total_cmp(&b.1.speedup));

        match best {
            Some((plan, measured)) => Ok(OptimizeOutcome {
                plan,
                path: OptimizePath::Validated,
                measured: Some(measured),
                candidates_tried,
                robustness: None,
                telemetry: TelemetryReport::default(),
                control: None,
            }),
            None => {
                // Fall back to the fully accurate schedule.
                let accurate = LevelConfig::accurate(trained.blocks().len());
                let schedule = PhaseSchedule::new(vec![accurate; trained.num_phases()], expected)?;
                Ok(OptimizeOutcome {
                    plan: OptimizationPlan {
                        phases: Vec::new(),
                        schedule,
                        predicted_speedup: 1.0,
                        predicted_qos: 0.0,
                    },
                    path: OptimizePath::AccurateFallback,
                    measured: Some(MeasuredOutcome {
                        speedup: 1.0,
                        qos: 0.0,
                        outer_iters: expected,
                    }),
                    candidates_tried,
                    robustness: None,
                    telemetry: TelemetryReport::default(),
                    control: None,
                })
            }
        }
    }
}

impl std::fmt::Debug for OptimizeRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptimizeRequest")
            .field("input", &self.input)
            .field("spec", &self.spec)
            .field("conservatism", &self.conservatism)
            .field("validated", &self.validation_app.is_some())
            .field("validation_budget", &self.validation_budget)
            .field("canary", &self.canary)
            .field("shared_engine", &self.engine.is_some())
            .finish()
    }
}

/// A measured speedup must be finite before it can rank candidates; a
/// NaN or infinite value means the golden run or the approximate run
/// reported a nonsensical work count, and silently ordering by it would
/// pick an arbitrary winner. Reported as
/// [`OpproxError::NonFiniteMeasurement`] (wire code
/// `non_finite_measurement`) instead of the panic this used to be.
fn check_finite_speedups(
    passing: &[(OptimizationPlan, MeasuredOutcome)],
) -> Result<(), OpproxError> {
    for (plan, measured) in passing {
        if !measured.speedup.is_finite() {
            return Err(OpproxError::NonFiniteMeasurement(format!(
                "validated candidate {:?} measured speedup {}",
                plan.schedule.configs(),
                measured.speedup
            )));
        }
    }
    Ok(())
}

/// Measures each plan once on `input`, re-anchored on the golden
/// iteration count, as one engine batch in submission order. A plan whose
/// validation run failed past recovery yields `None` (it is dropped from
/// consideration); fatal errors abort.
fn validate_batch(
    engine: &EvalEngine,
    app: &dyn ApproxApp,
    input: &InputParams,
    golden: &opprox_approx_rt::RunResult,
    plans: &[OptimizationPlan],
) -> Result<Vec<Option<MeasuredOutcome>>, OpproxError> {
    let jobs: Vec<(InputParams, PhaseSchedule)> = plans
        .iter()
        .map(|p| {
            Ok((
                input.clone(),
                PhaseSchedule::new(p.schedule.configs().to_vec(), golden.outer_iters.max(1))?,
            ))
        })
        .collect::<Result<_, OpproxError>>()?;
    engine
        .run_batch_resilient(app, &jobs)
        .into_iter()
        .map(|outcome| match outcome {
            Ok(r) => Ok(Some(MeasuredOutcome {
                speedup: golden.speedup_over(&r),
                qos: app.qos_degradation(golden, &r),
                outer_iters: r.outer_iters,
            })),
            Err(e) if degradable_kind(&e).is_some() => Ok(None),
            Err(e) => Err(e),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Opprox, TrainingOptions};
    use crate::sampling::SamplingPlan;
    use opprox_apps::Pso;

    fn fast_options() -> TrainingOptions {
        TrainingOptions {
            num_phases: Some(2),
            sampling: SamplingPlan {
                num_phases: 2,
                sparse_samples: 10,
                whole_run_samples: 0,
                seed: 5,
            },
            ..TrainingOptions::default()
        }
    }

    #[test]
    fn model_only_request_performs_no_executions() {
        let app = Pso::new();
        let trained = Opprox::train(&app, &fast_options()).unwrap();
        let engine = EvalEngine::default();
        let outcome =
            OptimizeRequest::new(InputParams::new(vec![16.0, 3.0]), AccuracySpec::new(10.0))
                .engine(&engine)
                .run(&trained)
                .unwrap();
        assert_eq!(outcome.path, OptimizePath::ModelOnly);
        assert!(outcome.measured.is_none());
        assert_eq!(outcome.candidates_tried, 0);
        assert_eq!(engine.metrics().executions, 0);
    }

    #[test]
    fn validated_request_measures_within_budget() {
        let app = Pso::new();
        let trained = Opprox::train(&app, &fast_options()).unwrap();
        let outcome =
            OptimizeRequest::new(InputParams::new(vec![20.0, 3.0]), AccuracySpec::new(20.0))
                .validate_on(&app)
                .run(&trained)
                .unwrap();
        assert!(outcome.candidates_tried > 0);
        let measured = outcome.measured.expect("validated path measures");
        match outcome.path {
            OptimizePath::Validated => {
                assert!(measured.qos <= 20.0);
                assert!(measured.speedup > 1.0);
            }
            OptimizePath::AccurateFallback => {
                assert_eq!(measured.speedup, 1.0);
                assert!(outcome.plan.schedule.is_accurate());
            }
            OptimizePath::ModelOnly | OptimizePath::Adaptive => {
                panic!("validation was requested")
            }
        }
    }

    #[test]
    fn validation_budget_caps_candidates() {
        let app = Pso::new();
        let trained = Opprox::train(&app, &fast_options()).unwrap();
        let outcome =
            OptimizeRequest::new(InputParams::new(vec![16.0, 3.0]), AccuracySpec::new(20.0))
                .validate_on(&app)
                .validation_budget(3)
                .run(&trained)
                .unwrap();
        // The cap bounds step-2 candidates; merges add at most 3 more.
        assert!(outcome.candidates_tried <= 3 + 3);
    }

    #[test]
    fn canary_runs_use_the_canary_input() {
        let app = Pso::new();
        let trained = Opprox::train(&app, &fast_options()).unwrap();
        let engine = EvalEngine::default();
        let canary = InputParams::new(vec![12.0, 3.0]);
        let production = InputParams::new(vec![24.0, 3.0]);
        OptimizeRequest::new(production.clone(), AccuracySpec::new(20.0))
            .validate_on(&app)
            .canary(canary.clone())
            .engine(&engine)
            .run(&trained)
            .unwrap();
        // The canary's golden run is in the cache (hit); the production
        // input was never executed (its golden is a miss).
        let before = engine.metrics();
        assert!(before.executions > 0);
        engine.golden(&app, &canary).unwrap();
        let mid = engine.metrics();
        assert_eq!(mid.cache_hits, before.cache_hits + 1);
        assert_eq!(mid.executions, before.executions);
        engine.golden(&app, &production).unwrap();
        let after = engine.metrics();
        assert_eq!(after.executions, mid.executions + 1);
    }
}
