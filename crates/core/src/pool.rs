//! A small bounded work-stealing pool for embarrassingly-parallel jobs.
//!
//! Extracted from the evaluation engine so model training can fan out on
//! the same machinery. Jobs are indexed `0..n`; per-worker deques are
//! filled round-robin, each worker drains its own deque from the front and
//! steals from the back of the others', and results are returned in
//! submission order regardless of which worker ran which job — so
//! parallel runs are output-identical to sequential ones whenever the jobs
//! themselves are independent.

use crate::sync::{thread, Mutex};
use std::collections::VecDeque;

/// A bounded pool of scoped worker threads with work stealing.
#[derive(Debug, Clone, Copy)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// Creates a pool bound to at most `threads` workers (floored at 1).
    pub fn new(threads: usize) -> Self {
        WorkPool {
            threads: threads.max(1),
        }
    }

    /// The configured worker bound.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` for every `i in 0..n` across the pool and returns the
    /// results in index order. With one worker (or one job) everything
    /// runs inline on the calling thread.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn run<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(job).collect();
        }
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..n {
            queues[i % workers].lock().expect("queue lock").push_back(i);
        }
        let outcomes: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let outcomes = &outcomes;
                let job = &job;
                scope.spawn(move || loop {
                    // Drop the own-queue guard before stealing: chaining
                    // `.or_else` onto the locked pop would keep this guard
                    // alive across the steal attempts (temporaries live to
                    // the end of the statement), and two workers stealing
                    // from each other simultaneously would deadlock ABBA
                    // style — found by the loom model check (rule C001).
                    let mut next = queues[w].lock().expect("queue lock").pop_front();
                    if next.is_none() {
                        next = (0..workers)
                            .filter(|&v| v != w)
                            .find_map(|v| queues[v].lock().expect("queue lock").pop_back());
                    }
                    let Some(i) = next else { break };
                    *outcomes[i].lock().expect("outcome lock") = Some(job(i));
                });
            }
        });

        outcomes
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("outcome lock")
                    .expect("worker completed every claimed job")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkPool::new(4);
        let out = pool.run(37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkPool::new(1);
        let tid = std::thread::current().id();
        let out = pool.run(5, move |i| (i, std::thread::current().id() == tid));
        assert!(out.iter().all(|&(_, same)| same));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let pool = WorkPool::new(3);
        let counter = AtomicUsize::new(0);
        let out = pool.run(100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let pool = WorkPool::new(4);
        assert!(pool.run(0, |i| i).is_empty());
    }

    #[test]
    fn parallel_matches_sequential_output() {
        let seq = WorkPool::new(1).run(64, |i| (i as f64).sqrt());
        let par = WorkPool::new(8).run(64, |i| (i as f64).sqrt());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
