//! A small bounded work-stealing pool for embarrassingly-parallel jobs.
//!
//! Extracted from the evaluation engine so model training can fan out on
//! the same machinery. Jobs are indexed `0..n`; per-worker deques are
//! filled round-robin, each worker drains its own deque from the front and
//! steals from the back of the others', and results are returned in
//! submission order regardless of which worker ran which job — so
//! parallel runs are output-identical to sequential ones whenever the jobs
//! themselves are independent.

use crate::sync::{thread, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The caught panic of one isolated job (see [`WorkPool::run_isolated`]).
#[derive(Debug, Clone)]
pub struct JobPanic {
    /// The panic payload rendered as text, when it was a string.
    pub message: String,
}

/// Result of [`WorkPool::run_isolated`]: per-job outcomes in submission
/// order, plus worker-death accounting.
#[derive(Debug)]
pub struct IsolatedRun<T> {
    /// One entry per job: the job's value, or the panic that killed it.
    pub outcomes: Vec<Result<T, JobPanic>>,
    /// Logical worker deaths: each caught panic ends that worker's
    /// execution of the job, and the worker is immediately reused
    /// (respawned) for the next one instead of taking the pool down.
    pub respawns: u64,
}

/// A bounded pool of scoped worker threads with work stealing.
#[derive(Debug, Clone, Copy)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// Creates a pool bound to at most `threads` workers (floored at 1).
    pub fn new(threads: usize) -> Self {
        WorkPool {
            threads: threads.max(1),
        }
    }

    /// The configured worker bound.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` for every `i in 0..n` across the pool and returns the
    /// results in index order. With one worker (or one job) everything
    /// runs inline on the calling thread.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn run<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(job).collect();
        }
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..n {
            queues[i % workers].lock().expect("queue lock").push_back(i);
        }
        let outcomes: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let outcomes = &outcomes;
                let job = &job;
                scope.spawn(move || loop {
                    // Drop the own-queue guard before stealing: chaining
                    // `.or_else` onto the locked pop would keep this guard
                    // alive across the steal attempts (temporaries live to
                    // the end of the statement), and two workers stealing
                    // from each other simultaneously would deadlock ABBA
                    // style — found by the loom model check (rule C001).
                    let mut next = queues[w].lock().expect("queue lock").pop_front();
                    if next.is_none() {
                        next = (0..workers)
                            .filter(|&v| v != w)
                            .find_map(|v| queues[v].lock().expect("queue lock").pop_back());
                    }
                    let Some(i) = next else { break };
                    *outcomes[i].lock().expect("outcome lock") = Some(job(i));
                });
            }
        });

        outcomes
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("outcome lock")
                    .expect("worker completed every claimed job")
            })
            .collect()
    }

    /// Like [`WorkPool::run`], but a panicking job kills only itself: the
    /// panic is caught at the worker boundary, recorded as a
    /// [`JobPanic`], and the worker moves on to its next job. Inline
    /// (single-worker) execution gets the same isolation, so outcomes are
    /// identical for any thread count.
    ///
    /// The `AssertUnwindSafe` is sound because a panicked job's value is
    /// discarded wholesale — callers only ever observe the `Err` — and
    /// the engine defers all shared-state writes (cache inserts, result
    /// publication) until after the pool returns.
    pub fn run_isolated<T, F>(&self, n: usize, job: F) -> IsolatedRun<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let outcomes = self.run(n, |i| {
            catch_unwind(AssertUnwindSafe(|| job(i))).map_err(|payload| JobPanic {
                message: panic_message(payload.as_ref()),
            })
        });
        let respawns = outcomes.iter().filter(|o| o.is_err()).count() as u64;
        IsolatedRun { outcomes, respawns }
    }
}

/// Renders a panic payload as text (panics carry `&str` or `String`
/// payloads in practice; anything else is reported opaquely).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkPool::new(4);
        let out = pool.run(37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkPool::new(1);
        let tid = std::thread::current().id();
        let out = pool.run(5, move |i| (i, std::thread::current().id() == tid));
        assert!(out.iter().all(|&(_, same)| same));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let pool = WorkPool::new(3);
        let counter = AtomicUsize::new(0);
        let out = pool.run(100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let pool = WorkPool::new(4);
        assert!(pool.run(0, |i| i).is_empty());
    }

    #[test]
    fn parallel_matches_sequential_output() {
        let seq = WorkPool::new(1).run(64, |i| (i as f64).sqrt());
        let par = WorkPool::new(8).run(64, |i| (i as f64).sqrt());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Keeps intentionally injected panics out of the test log while
    /// forwarding every other panic to the default hook.
    fn silence_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected fault"))
                    || info
                        .payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|s| s.contains("injected fault"));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn isolated_jobs_survive_panicking_neighbours() {
        silence_injected_panics();
        for threads in [1, 4] {
            let pool = WorkPool::new(threads);
            let run = pool.run_isolated(20, |i| {
                if i % 5 == 3 {
                    panic!("injected fault: job {i}");
                }
                i * 2
            });
            assert_eq!(run.outcomes.len(), 20);
            assert_eq!(run.respawns, 4, "{threads} threads");
            for (i, outcome) in run.outcomes.iter().enumerate() {
                match outcome {
                    Ok(v) => assert_eq!(*v, i * 2),
                    Err(p) => {
                        assert_eq!(i % 5, 3);
                        assert!(p.message.contains("injected fault"), "{}", p.message);
                    }
                }
            }
        }
    }

    #[test]
    fn isolated_run_without_panics_matches_plain_run() {
        let pool = WorkPool::new(3);
        let plain = pool.run(16, |i| i + 1);
        let isolated = pool.run_isolated(16, |i| i + 1);
        assert_eq!(isolated.respawns, 0);
        let values: Vec<usize> = isolated.outcomes.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, plain);
    }
}
