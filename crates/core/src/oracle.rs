//! The phase-agnostic exhaustive-search baseline (paper Sec. 5.3).
//!
//! Prior work (ref. 43, Sidiroglou-Douskos et al.; ref. 44, Sui et al.) is
//! idealized as an *oracle* that exhaustively tries every approximation
//! configuration, applies it to the **whole execution**, measures the
//! actual speedup and QoS degradation, and keeps the fastest configuration
//! within the budget. It is an upper bound on what any phase-agnostic
//! technique can achieve — and exactly what OPPROX's phase-aware search is
//! compared against in Fig. 14.

use crate::error::OpproxError;
use crate::evaluator::EvalEngine;
use crate::spec::AccuracySpec;
use opprox_approx_rt::config::{config_space_size, enumerate_configs, sample_configs};
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule};
use serde::{Deserialize, Serialize};

/// Cap on the number of whole-program configurations the oracle will
/// actually execute; beyond it a deterministic random subset is used.
pub const ORACLE_RUN_LIMIT: usize = 4000;

/// The oracle's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleResult {
    /// The best configuration found (`None` if nothing fit the budget).
    pub config: Option<LevelConfig>,
    /// Measured speedup of the best configuration (1.0 when none fit).
    pub speedup: f64,
    /// Measured QoS degradation of the best configuration (0.0 when none
    /// fit).
    pub qos: f64,
    /// How many configurations were executed.
    pub evaluated: usize,
}

/// Runs the phase-agnostic exhaustive oracle for one input and budget.
///
/// # Errors
///
/// Propagates application runtime errors.
pub fn phase_agnostic_oracle(
    app: &dyn ApproxApp,
    input: &InputParams,
    spec: &AccuracySpec,
) -> Result<OracleResult, OpproxError> {
    phase_agnostic_oracle_with(&EvalEngine::default(), app, input, spec)
}

/// [`phase_agnostic_oracle`] on a shared [`EvalEngine`]: the sweep runs as
/// one parallel batch, and sharing the engine across budgets (or with a
/// prior training run) turns repeated configurations into cache hits
/// instead of executions.
///
/// The winner scan walks results in submission order with a
/// strictly-greater speedup test, so the reported configuration is the
/// same one the sequential oracle would pick regardless of thread count.
///
/// # Errors
///
/// Propagates application runtime errors.
pub fn phase_agnostic_oracle_with(
    engine: &EvalEngine,
    app: &dyn ApproxApp,
    input: &InputParams,
    spec: &AccuracySpec,
) -> Result<OracleResult, OpproxError> {
    engine.stage("oracle", || {
        let blocks = &app.meta().blocks;
        let golden = engine.golden(app, input)?;

        let configs: Vec<LevelConfig> = if config_space_size(blocks) as usize <= ORACLE_RUN_LIMIT {
            enumerate_configs(blocks)
                .filter(|c| !c.is_accurate())
                .collect()
        } else {
            sample_configs(blocks, ORACLE_RUN_LIMIT, 0x0AC1E)
        };

        let jobs: Vec<(InputParams, PhaseSchedule)> = configs
            .iter()
            .map(|config| (input.clone(), PhaseSchedule::constant(config.clone())))
            .collect();
        let results = engine.run_batch(app, &jobs)?;

        let mut best: Option<(LevelConfig, f64, f64)> = None;
        let evaluated = results.len();
        for (config, result) in configs.into_iter().zip(results.iter()) {
            let speedup = golden.speedup_over(result);
            let qos = app.qos_degradation(&golden, result);
            if qos <= spec.error_budget() && speedup > 1.0 {
                let better = best.as_ref().is_none_or(|(_, s, _)| speedup > *s);
                if better {
                    best = Some((config, speedup, qos));
                }
            }
        }

        // Re-measure the winner through the engine: a guaranteed cache
        // hit that double-checks the cached result is still reachable.
        if let Some((config, _, _)) = &best {
            engine.run(app, input, &PhaseSchedule::constant(config.clone()))?;
        }

        Ok(match best {
            Some((config, speedup, qos)) => OracleResult {
                config: Some(config),
                speedup,
                qos,
                evaluated,
            },
            None => OracleResult {
                config: None,
                speedup: 1.0,
                qos: 0.0,
                evaluated,
            },
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_apps::Pso;

    #[test]
    fn oracle_result_respects_budget() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let spec = AccuracySpec::new(30.0);
        let r = phase_agnostic_oracle(&app, &input, &spec).unwrap();
        assert!(r.evaluated > 0);
        if r.config.is_some() {
            assert!(r.qos <= 30.0);
            assert!(r.speedup > 1.0);
        }
    }

    #[test]
    fn zero_budget_finds_nothing() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let r = phase_agnostic_oracle(&app, &input, &AccuracySpec::new(0.0)).unwrap();
        assert!(r.config.is_none());
        assert_eq!(r.speedup, 1.0);
    }

    #[test]
    fn bigger_budget_is_no_worse() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let small = phase_agnostic_oracle(&app, &input, &AccuracySpec::new(10.0)).unwrap();
        let large = phase_agnostic_oracle(&app, &input, &AccuracySpec::new(50.0)).unwrap();
        assert!(large.speedup >= small.speedup);
    }
}
