//! Error type for the OPPROX core.

use crate::fault::FailureKind;
use opprox_approx_rt::RuntimeError;
use opprox_ml::MlError;
use std::fmt;

/// Errors produced by the OPPROX training and optimization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OpproxError {
    /// The driven application rejected an input or schedule.
    Runtime(RuntimeError),
    /// A model could not be fitted or queried.
    Model(MlError),
    /// Not enough training data was collected for a modeling step.
    InsufficientData(String),
    /// The accuracy specification was malformed.
    InvalidSpec(String),
    /// No approximation configuration satisfied the budget; the accurate
    /// configuration is the only feasible plan.
    NoFeasibleConfig {
        /// The budget that could not be met.
        budget: f64,
    },
    /// Serialization of a trained system failed.
    Serialization(String),
    /// A trained model set failed its integrity check (non-finite
    /// coefficients, invalid confidence bands, or shape mismatches); see
    /// [`crate::modeling::AppModels::integrity_issues`].
    InvalidModel(String),
    /// An evaluation exhausted every recovery attempt; see
    /// [`crate::fault::RecoveryPolicy`].
    EvaluationFailed {
        /// The terminal failure kind of the last attempt.
        kind: FailureKind,
        /// Attempts performed before giving up.
        attempts: u32,
        /// Human-readable context (app, fault details).
        context: String,
    },
    /// The (input, schedule) key was quarantined by an earlier failed
    /// evaluation and the request was refused outright.
    Quarantined {
        /// Human-readable context identifying the key.
        context: String,
    },
    /// A wire frame was malformed: invalid JSON, a missing or mistyped
    /// field, or a truncated line (wire code `bad_request`).
    BadRequest(String),
    /// A wire frame declared a protocol version this build does not
    /// speak (wire code `unsupported_version`).
    UnsupportedVersion {
        /// The version the frame declared.
        got: u64,
    },
    /// The named application is not registered / not loaded (wire code
    /// `unknown_app`). Shared by the CLI's app lookup and the server's
    /// model-store lookup so both report through one variant.
    UnknownApp {
        /// The name that failed to resolve.
        given: String,
        /// The names that would have resolved, comma-separated.
        available: String,
    },
    /// Admission control refused the request: the server's bounded queue
    /// was full (wire code `overloaded`). Load-shed responses carry this.
    Overloaded {
        /// Queue depth observed at admission.
        depth: usize,
        /// The configured admission bound.
        limit: usize,
    },
    /// The service cannot answer right now — no artifact is loaded for
    /// the app, or the server is shutting down (wire code `unavailable`).
    Unavailable(String),
    /// A measured quantity that must be finite (a speedup, a QoS
    /// degradation) came back NaN or infinite (wire code
    /// `non_finite_measurement`). Replaces the old panic paths in the
    /// validated-optimization sort.
    NonFiniteMeasurement(String),
    /// Registering an application collided with one already present
    /// (wire code `duplicate_registration`); converted from
    /// [`opprox_apps::RegistryError`] so registry construction errors
    /// flow through the same reporting paths as every other failure.
    DuplicateRegistration {
        /// The application name that collided.
        name: String,
    },
}

impl fmt::Display for OpproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpproxError::Runtime(e) => write!(f, "application runtime error: {e}"),
            OpproxError::Model(e) => write!(f, "modeling error: {e}"),
            OpproxError::InsufficientData(msg) => write!(f, "insufficient training data: {msg}"),
            OpproxError::InvalidSpec(msg) => write!(f, "invalid accuracy specification: {msg}"),
            OpproxError::NoFeasibleConfig { budget } => {
                write!(f, "no approximation fits the QoS budget {budget}")
            }
            OpproxError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            OpproxError::InvalidModel(msg) => write!(f, "invalid trained model set: {msg}"),
            OpproxError::EvaluationFailed {
                kind,
                attempts,
                context,
            } => write!(
                f,
                "evaluation failed after {attempts} attempts ({kind}): {context}"
            ),
            OpproxError::Quarantined { context } => {
                write!(f, "evaluation refused, key quarantined: {context}")
            }
            OpproxError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            OpproxError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks v{})",
                    crate::api::API_VERSION
                )
            }
            OpproxError::UnknownApp { given, available } => {
                write!(f, "unknown app `{given}`; available: {available}")
            }
            OpproxError::Overloaded { depth, limit } => {
                write!(
                    f,
                    "overloaded: admission queue at {depth}/{limit}, request shed"
                )
            }
            OpproxError::Unavailable(msg) => write!(f, "service unavailable: {msg}"),
            OpproxError::NonFiniteMeasurement(msg) => {
                write!(f, "non-finite measurement: {msg}")
            }
            OpproxError::DuplicateRegistration { name } => {
                write!(
                    f,
                    "duplicate app registration: `{name}` is already registered"
                )
            }
        }
    }
}

impl std::error::Error for OpproxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpproxError::Runtime(e) => Some(e),
            OpproxError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for OpproxError {
    fn from(e: RuntimeError) -> Self {
        OpproxError::Runtime(e)
    }
}

impl From<MlError> for OpproxError {
    fn from(e: MlError) -> Self {
        OpproxError::Model(e)
    }
}

impl From<opprox_apps::RegistryError> for OpproxError {
    fn from(e: opprox_apps::RegistryError) -> Self {
        match e {
            opprox_apps::RegistryError::DuplicateApp { name } => {
                OpproxError::DuplicateRegistration { name }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OpproxError = RuntimeError::InvalidInput("x".into()).into();
        assert!(e.to_string().contains("application runtime error"));
        let e: OpproxError = MlError::InvalidTrainingData("y".into()).into();
        assert!(e.to_string().contains("modeling error"));
        let e: OpproxError = opprox_apps::RegistryError::DuplicateApp { name: "PSO".into() }.into();
        assert!(e.to_string().contains("duplicate app registration"));
        assert!(e.to_string().contains("PSO"));
        assert!(OpproxError::NoFeasibleConfig { budget: 5.0 }
            .to_string()
            .contains('5'));
    }

    #[test]
    fn source_chains_to_inner_error() {
        use std::error::Error;
        let e: OpproxError = RuntimeError::InvalidInput("x".into()).into();
        assert!(e.source().is_some());
        assert!(OpproxError::InvalidSpec("z".into()).source().is_none());
    }
}
