//! Error type for the OPPROX core.

use crate::fault::FailureKind;
use opprox_approx_rt::RuntimeError;
use opprox_ml::MlError;
use std::fmt;

/// Errors produced by the OPPROX training and optimization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OpproxError {
    /// The driven application rejected an input or schedule.
    Runtime(RuntimeError),
    /// A model could not be fitted or queried.
    Model(MlError),
    /// Not enough training data was collected for a modeling step.
    InsufficientData(String),
    /// The accuracy specification was malformed.
    InvalidSpec(String),
    /// No approximation configuration satisfied the budget; the accurate
    /// configuration is the only feasible plan.
    NoFeasibleConfig {
        /// The budget that could not be met.
        budget: f64,
    },
    /// Serialization of a trained system failed.
    Serialization(String),
    /// A trained model set failed its integrity check (non-finite
    /// coefficients, invalid confidence bands, or shape mismatches); see
    /// [`crate::modeling::AppModels::integrity_issues`].
    InvalidModel(String),
    /// An evaluation exhausted every recovery attempt; see
    /// [`crate::fault::RecoveryPolicy`].
    EvaluationFailed {
        /// The terminal failure kind of the last attempt.
        kind: FailureKind,
        /// Attempts performed before giving up.
        attempts: u32,
        /// Human-readable context (app, fault details).
        context: String,
    },
    /// The (input, schedule) key was quarantined by an earlier failed
    /// evaluation and the request was refused outright.
    Quarantined {
        /// Human-readable context identifying the key.
        context: String,
    },
}

impl fmt::Display for OpproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpproxError::Runtime(e) => write!(f, "application runtime error: {e}"),
            OpproxError::Model(e) => write!(f, "modeling error: {e}"),
            OpproxError::InsufficientData(msg) => write!(f, "insufficient training data: {msg}"),
            OpproxError::InvalidSpec(msg) => write!(f, "invalid accuracy specification: {msg}"),
            OpproxError::NoFeasibleConfig { budget } => {
                write!(f, "no approximation fits the QoS budget {budget}")
            }
            OpproxError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            OpproxError::InvalidModel(msg) => write!(f, "invalid trained model set: {msg}"),
            OpproxError::EvaluationFailed {
                kind,
                attempts,
                context,
            } => write!(
                f,
                "evaluation failed after {attempts} attempts ({kind}): {context}"
            ),
            OpproxError::Quarantined { context } => {
                write!(f, "evaluation refused, key quarantined: {context}")
            }
        }
    }
}

impl std::error::Error for OpproxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpproxError::Runtime(e) => Some(e),
            OpproxError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for OpproxError {
    fn from(e: RuntimeError) -> Self {
        OpproxError::Runtime(e)
    }
}

impl From<MlError> for OpproxError {
    fn from(e: MlError) -> Self {
        OpproxError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OpproxError = RuntimeError::InvalidInput("x".into()).into();
        assert!(e.to_string().contains("application runtime error"));
        let e: OpproxError = MlError::InvalidTrainingData("y".into()).into();
        assert!(e.to_string().contains("modeling error"));
        assert!(OpproxError::NoFeasibleConfig { budget: 5.0 }
            .to_string()
            .contains('5'));
    }

    #[test]
    fn source_chains_to_inner_error() {
        use std::error::Error;
        let e: OpproxError = RuntimeError::InvalidInput("x".into()).into();
        assert!(e.source().is_some());
        assert!(OpproxError::InvalidSpec("z".into()).source().is_none());
    }
}
