//! Synchronization primitives for the thread pool and evaluation engine.
//!
//! Plain `std` by default; under `RUSTFLAGS="--cfg loom"` these resolve to
//! the loom stand-in's instrumented look-alikes so `tests/loom.rs` can
//! exhaustively model-check the pool's submit/steal/shutdown protocol and
//! the evaluator's cache insert/hit races (rules `C001`/`C002` in the
//! `opprox-analyze` registry). The aliases keep the production code paths
//! byte-identical between the two builds.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::Mutex;
#[cfg(loom)]
pub(crate) use loom::thread;

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;
#[cfg(not(loom))]
pub(crate) use std::thread;
