//! Phase-granularity search (paper Sec. 3.5, Algorithm 1).
//!
//! OPPROX decides how many logical phases to divide the outer loop into:
//! starting from `N = 2`, it doubles the phase count while the *maximum
//! difference between the mean QoS degradations of approximations applied
//! to consecutive phases* keeps changing by more than a user threshold.
//! A large `N` captures phase behaviour at a finer grain but grows the
//! search space (and training time) exponentially, so the search stops as
//! soon as refining stops revealing new structure.

use crate::error::OpproxError;
use crate::evaluator::EvalEngine;
use opprox_approx_rt::config::sample_configs;
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule};
use serde::{Deserialize, Serialize};

/// Options for [`find_phase_granularity`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSearchOptions {
    /// Sensitivity threshold on the change of the max consecutive-phase
    /// QoS difference (same unit as the QoS metric).
    pub threshold: f64,
    /// Upper bound on the number of phases (the paper explored up to 8).
    pub max_phases: usize,
    /// Number of probe configurations per phase.
    pub probe_configs: usize,
    /// RNG seed for the probe configurations.
    pub seed: u64,
}

impl Default for PhaseSearchOptions {
    fn default() -> Self {
        PhaseSearchOptions {
            threshold: 5.0,
            max_phases: 8,
            probe_configs: 6,
            seed: 0x9A5E,
        }
    }
}

/// The paper's `getMaxQoSDiff` helper: runs the application with `n`
/// phases, approximating one phase at a time with several probe settings,
/// and returns the maximum difference between the mean QoS degradations
/// of consecutive phases.
///
/// # Errors
///
/// Propagates application runtime errors.
pub fn max_qos_diff(
    app: &dyn ApproxApp,
    input: &InputParams,
    n: usize,
    opts: &PhaseSearchOptions,
) -> Result<f64, OpproxError> {
    max_qos_diff_with(&EvalEngine::default(), app, input, n, opts)
}

/// [`max_qos_diff`] on a shared [`EvalEngine`]: all probe executions run
/// as one parallel batch, and probes repeated across granularities (the
/// doubling loop re-probes the same configurations at each `N`) come out
/// of the execution cache.
///
/// # Errors
///
/// Propagates application runtime errors.
pub fn max_qos_diff_with(
    engine: &EvalEngine,
    app: &dyn ApproxApp,
    input: &InputParams,
    n: usize,
    opts: &PhaseSearchOptions,
) -> Result<f64, OpproxError> {
    let golden = engine.golden(app, input)?;
    let blocks = &app.meta().blocks;
    let probes = sample_configs(blocks, opts.probe_configs, opts.seed);
    let mut jobs = Vec::with_capacity(n * probes.len());
    for phase in 0..n {
        for config in &probes {
            let schedule =
                PhaseSchedule::single_phase(config.clone(), phase, n, golden.outer_iters)?;
            jobs.push((input.clone(), schedule));
        }
    }
    let results = engine.run_batch(app, &jobs)?;
    let phase_means: Vec<f64> = results
        .chunks(probes.len().max(1))
        .map(|chunk| {
            chunk
                .iter()
                .map(|r| app.qos_degradation(&golden, r))
                .sum::<f64>()
                / probes.len().max(1) as f64
        })
        .collect();
    Ok(phase_means
        .windows(2)
        .map(|w| (w[0] - w[1]).abs())
        .fold(0.0, f64::max))
}

/// Algorithm 1: finds the appropriate number of phases for `app` on the
/// given input.
///
/// # Errors
///
/// Propagates application runtime errors.
pub fn find_phase_granularity(
    app: &dyn ApproxApp,
    input: &InputParams,
    opts: &PhaseSearchOptions,
) -> Result<usize, OpproxError> {
    find_phase_granularity_with(&EvalEngine::default(), app, input, opts)
}

/// Algorithm 1 on a shared [`EvalEngine`] (see [`max_qos_diff_with`]).
///
/// # Errors
///
/// Propagates application runtime errors.
pub fn find_phase_granularity_with(
    engine: &EvalEngine,
    app: &dyn ApproxApp,
    input: &InputParams,
    opts: &PhaseSearchOptions,
) -> Result<usize, OpproxError> {
    // Each doubling iteration of Algorithm 1 is its own telemetry span, so
    // traces show how far the search refined and where its time went.
    let probe = |n: usize| {
        engine.telemetry().span(&format!("granularity/n[{n}]"), || {
            max_qos_diff_with(engine, app, input, n, opts)
        })
    };
    engine.stage("granularity", || {
        let mut n = 2usize;
        let mut max_diff_prev = probe(n)?;
        loop {
            let new_n = n * 2;
            if new_n > opts.max_phases {
                return Ok(n);
            }
            let max_diff_new = probe(new_n)?;
            engine.telemetry().event(
                "granularity.step",
                &[("n", new_n as f64), ("max_diff", max_diff_new)],
            );
            if (max_diff_prev - max_diff_new).abs() > opts.threshold {
                n = new_n;
                max_diff_prev = max_diff_new;
            } else {
                return Ok(n);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_apps::Pso;

    fn opts() -> PhaseSearchOptions {
        PhaseSearchOptions {
            threshold: 5.0,
            max_phases: 8,
            probe_configs: 3,
            seed: 7,
        }
    }

    #[test]
    fn max_qos_diff_is_nonnegative_and_finite() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let d = max_qos_diff(&app, &input, 2, &opts()).unwrap();
        assert!(d >= 0.0);
        assert!(d.is_finite());
    }

    #[test]
    fn phase_sensitive_app_wants_more_than_one_phase() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let n = find_phase_granularity(&app, &input, &opts()).unwrap();
        assert!(n >= 2);
        assert!(n <= 8);
        assert!(n.is_power_of_two());
    }

    #[test]
    fn huge_threshold_stops_at_two_phases() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let big = PhaseSearchOptions {
            threshold: 1e12,
            ..opts()
        };
        assert_eq!(find_phase_granularity(&app, &input, &big).unwrap(), 2);
    }

    #[test]
    fn max_phases_caps_the_search() {
        let app = Pso::new();
        let input = InputParams::new(vec![16.0, 3.0]);
        let capped = PhaseSearchOptions {
            threshold: 0.0,
            max_phases: 4,
            ..opts()
        };
        let n = find_phase_granularity(&app, &input, &capped).unwrap();
        assert!(n <= 4);
    }
}
