//! Online adaptive control: closed-loop mid-run re-optimization.
//!
//! OPPROX's Algorithm 2 is a one-shot offline pass: it divides the QoS
//! budget across phases before execution and trusts the trained
//! confidence bands to hold. Capri reframes approximation as a control
//! system, and the phase-classification literature shows phase
//! boundaries themselves drift at runtime. This module closes the loop:
//! [`run_adaptive`] executes a [`PhaseSchedule`] phase-by-phase through
//! the [`EvalEngine`], compares the realized per-phase work savings
//! against the model's predicted confidence band after each phase, and
//! when the observation leaves the tolerance-widened band it re-runs the
//! bound-pruned per-phase search over the *remaining* phases with the
//! *remaining* budget — leftover-budget redistribution as feedback
//! rather than a single rollover pass.
//!
//! Re-segmentation runs before re-optimization: per-phase BBV-style
//! signatures (normalized per-block work vectors from the execution's
//! call-context counters) are compared against the golden run's, and a
//! signature that moved past its threshold re-anchors the phase
//! boundaries to the observed iteration count before the suffix is
//! re-planned.
//!
//! Determinism contract: the controller emits spans and `control.step`
//! ledger events only from the orchestrating thread, on the engine's
//! injectable [`Clock`](crate::telemetry::Clock); applications are
//! deterministic and the engine's batch assembly is thread-count
//! invariant, so the exported trace is byte-identical across `--threads`
//! settings and reruns. The `control.step` ledger is audited by analyze
//! rules X009 (budget conservation: Σ reclaimed = Σ redistributed) and
//! A020 (re-plan count bounded by the phase count).

use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule, RunResult};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::error::OpproxError;
use crate::evaluator::EvalEngine;
use crate::fault::degradable_kind;
use crate::modeling::AppModels;
use crate::optimizer::{
    optimize_phase, optimize_traced, Conservatism, OptimizationPlan, PhasePlan,
};
use crate::pipeline::{MeasuredOutcome, TrainedOpprox};
use crate::spec::AccuracySpec;
use crate::telemetry::Telemetry;

/// Default relative drift tolerance: how far the observed per-phase
/// speedup may sit outside the model's confidence band before the
/// controller re-plans. Mirrors the audit layer's X001 drift tolerance.
pub const DEFAULT_DRIFT_TOLERANCE: f64 = 0.25;

/// Default threshold on the Manhattan distance between normalized
/// per-block work signatures (range 0..2) past which a phase boundary is
/// considered to have moved and the schedule is re-segmented.
pub const DEFAULT_RESEGMENT_THRESHOLD: f64 = 0.25;

/// Deterministic drift injection for tests and the CI smoke run: scales
/// the *observed* work attributed to one phase (optionally one block
/// within it), simulating an execution whose behavior moved away from
/// the training distribution without touching the application itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftInjection {
    /// The phase whose observed work is perturbed.
    pub phase: usize,
    /// Multiplier applied to the observed work units.
    pub factor: f64,
    /// When set, only this block's work is scaled — which distorts the
    /// phase's BBV signature and so also exercises re-segmentation.
    pub block: Option<usize>,
}

impl DriftInjection {
    /// Parses a `key=value` spec like `phase=1,factor=4.0` or
    /// `phase=0,factor=3.0,block=2` (same shape as `--fault-plan`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown keys, missing
    /// `phase`/`factor`, or unparsable values.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut phase: Option<usize> = None;
        let mut factor: Option<f64> = None;
        let mut block: Option<usize> = None;
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{part}`"))?;
            match key.trim() {
                "phase" => {
                    phase = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("invalid phase `{value}`"))?,
                    );
                }
                "factor" => {
                    let f: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid factor `{value}`"))?;
                    if !f.is_finite() || f <= 0.0 {
                        return Err(format!("factor must be finite and positive, got `{value}`"));
                    }
                    factor = Some(f);
                }
                "block" => {
                    block = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("invalid block `{value}`"))?,
                    );
                }
                other => return Err(format!("unknown drift key `{other}`")),
            }
        }
        Ok(Self {
            phase: phase.ok_or("drift spec needs phase=N")?,
            factor: factor.ok_or("drift spec needs factor=F")?,
            block,
        })
    }
}

/// Tunables of the adaptive controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlOptions {
    /// Relative tolerance outside the per-phase confidence band before a
    /// re-plan triggers.
    pub drift_tolerance: f64,
    /// Whether online re-segmentation runs before re-optimization.
    pub resegment: bool,
    /// Manhattan-distance threshold on normalized BBV signatures.
    pub resegment_threshold: f64,
    /// Optional deterministic drift injection.
    pub inject: Option<DriftInjection>,
}

impl Default for ControlOptions {
    fn default() -> Self {
        Self {
            drift_tolerance: DEFAULT_DRIFT_TOLERANCE,
            resegment: true,
            resegment_threshold: DEFAULT_RESEGMENT_THRESHOLD,
            inject: None,
        }
    }
}

/// One entry of the controller's per-phase ledger — the in-memory twin
/// of the `control.step` telemetry event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlStepRecord {
    /// Walk step (phases are visited in execution order, so this equals
    /// the phase index).
    pub step: usize,
    /// The phase observed.
    pub phase: usize,
    /// Realized whole-run-equivalent speedup attributed to this phase.
    pub observed_speedup: f64,
    /// The model's point prediction for the executed configuration.
    pub predicted_speedup: f64,
    /// Lower edge of the confidence band (conservative prediction).
    pub band_lo: f64,
    /// Upper edge of the confidence band (log-symmetric reflection of
    /// the conservative edge around the point prediction).
    pub band_hi: f64,
    /// Relative distance of the observation outside the band (0 inside).
    pub drift: f64,
    /// Whether the drift exceeded the tolerance.
    pub drifted: bool,
    /// Whether the phase boundaries were re-segmented at this step.
    pub resegmented: bool,
    /// Whether the remaining phases were re-planned at this step.
    pub replanned: bool,
    /// Budget pulled back into the pool at this step.
    pub budget_reclaimed: f64,
    /// Budget re-allocated across the remaining phases at this step.
    pub budget_redistributed: f64,
    /// Budget still unspent after this step's phase committed.
    pub remaining_budget: f64,
}

/// The result of one closed-loop adaptive session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlOutcome {
    /// The plan as finally executed (offline plan with any re-planned
    /// suffixes applied).
    pub plan: OptimizationPlan,
    /// The untouched offline Algorithm 2 plan, for drift-free identity
    /// checks and overhead accounting.
    pub offline: OptimizationPlan,
    /// The per-phase ledger, in execution order.
    pub steps: Vec<ControlStepRecord>,
    /// Number of suffix re-plans performed.
    pub replans: usize,
    /// Whether any step re-segmented the phase boundaries.
    pub resegmented: bool,
    /// Total budget reclaimed across the session.
    pub budget_reclaimed: f64,
    /// Total budget redistributed across the session.
    pub budget_redistributed: f64,
    /// Measured outcome of the final schedule (`None` only when every
    /// execution path degraded away).
    pub measured: Option<MeasuredOutcome>,
    /// Whether a degradable fault forced the controller off its planned
    /// schedule (degrade-not-abort).
    pub degraded: bool,
}

/// The controller facts an [`crate::request::OptimizeOutcome`] carries
/// alongside the chosen plan: the per-phase ledger plus session totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlSummary {
    /// Number of suffix re-plans performed.
    pub replans: usize,
    /// Whether any step re-segmented the phase boundaries.
    pub resegmented: bool,
    /// Total budget reclaimed across the session.
    pub budget_reclaimed: f64,
    /// Total budget redistributed across the session.
    pub budget_redistributed: f64,
    /// Whether a degradable fault forced the controller off its planned
    /// schedule.
    pub degraded: bool,
    /// The per-phase ledger, in execution order.
    pub steps: Vec<ControlStepRecord>,
}

impl ControlOutcome {
    /// The session facts without the (duplicated) plan payloads.
    pub fn summary(&self) -> ControlSummary {
        ControlSummary {
            replans: self.replans,
            resegmented: self.resegmented,
            budget_reclaimed: self.budget_reclaimed,
            budget_redistributed: self.budget_redistributed,
            degraded: self.degraded,
            steps: self.steps.clone(),
        }
    }
}

/// Iteration window `[lo, hi)` a phase covers under the schedule's
/// uniform partition; the final phase absorbs the remainder and any
/// overshoot (mirrors [`PhaseSchedule::phase_of`]).
fn phase_window(schedule: &PhaseSchedule, phase: usize) -> (u64, u64) {
    let n = schedule.num_phases() as u64;
    let base = (schedule.expected_iters() / n).max(1);
    let lo = phase as u64 * base;
    let hi = if phase as u64 + 1 == n {
        u64::MAX
    } else {
        lo + base
    };
    (lo, hi)
}

/// Per-block work inside an iteration window — the raw material of both
/// the drift metric and the BBV signature.
fn block_work_in_window(log: &CallContextLog, lo: u64, hi: u64, num_blocks: usize) -> Vec<f64> {
    let mut work = vec![0.0; num_blocks];
    for r in log.records() {
        if r.iteration >= lo && r.iteration < hi && r.block < num_blocks {
            work[r.block] += r.work as f64;
        }
    }
    work
}

/// Normalizes a work vector into a BBV-style signature (sums to 1).
fn signature(work: &[f64]) -> Vec<f64> {
    let total: f64 = work.iter().sum();
    if total <= 0.0 {
        return vec![0.0; work.len()];
    }
    work.iter().map(|w| w / total).collect()
}

/// Manhattan distance between two signatures (range 0..2).
fn signature_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// The accurate fallback plan entry the offline optimizer uses when
/// nothing fits a phase's sub-budget.
fn accurate_plan(phase: usize, num_blocks: usize, allocated: f64) -> PhasePlan {
    PhasePlan {
        phase,
        config: LevelConfig::accurate(num_blocks),
        allocated_budget: allocated,
        predicted_qos: 0.0,
        predicted_speedup: 1.0,
    }
}

/// Composes per-phase predictions exactly like the offline optimizer:
/// speedups via saved-time fractions, QoS additively.
fn compose(phases: &[PhasePlan]) -> (f64, f64) {
    let mut saved_fraction = 0.0;
    let mut predicted_qos = 0.0;
    for p in phases {
        saved_fraction += 1.0 - 1.0 / p.predicted_speedup.max(0.01);
        predicted_qos += p.predicted_qos;
    }
    let predicted_speedup = 1.0 / (1.0 - saved_fraction).clamp(0.05, 1.0);
    (predicted_speedup, predicted_qos)
}

/// Re-runs the per-phase search (Algorithm 2's budget division) over the
/// `remaining` phases only, with `pool` as the total budget: ROI-
/// proportional split, decreasing-ROI visit order, leftover rollover.
/// Overwrites the remaining entries of `plan` in place. Spans are named
/// `control/replan[phase]` so they never collide with the offline
/// solve's `optimize/phase[...]` ledger (audited by X002/X004).
fn replan_suffix(
    models: &AppModels,
    blocks: &[opprox_approx_rt::BlockDescriptor],
    input: &InputParams,
    pool: f64,
    remaining: &[usize],
    plan: &mut [PhasePlan],
    tele: &Telemetry,
) -> Result<(), OpproxError> {
    let rois = models.rois(input)?;
    let roi_sum: f64 = remaining.iter().map(|&p| rois[p]).sum();
    let mut order: Vec<usize> = remaining.to_vec();
    order.sort_by(|&a, &b| {
        rois[b]
            .partial_cmp(&rois[a])
            .expect("finite ROI")
            .then(a.cmp(&b))
    });
    let mut leftover = 0.0f64;
    for &phase in &order {
        let norm_roi = if roi_sum > 0.0 {
            rois[phase] / roi_sum
        } else {
            1.0 / remaining.len() as f64
        };
        let phase_budget = pool * norm_roi + leftover;
        let (best, _stats) = tele.span(&format!("control/replan[{phase}]"), || {
            optimize_phase(
                models,
                blocks,
                input,
                phase,
                phase_budget,
                Conservatism::Band,
            )
        })?;
        match best {
            Some(found) => {
                leftover = (phase_budget - found.predicted_qos).max(0.0);
                plan[phase] = PhasePlan {
                    allocated_budget: phase_budget,
                    ..found
                };
            }
            None => {
                leftover = phase_budget;
                plan[phase] = accurate_plan(phase, blocks.len(), phase_budget);
            }
        }
    }
    Ok(())
}

/// Executes `schedule`, degrading rather than aborting on recoverable
/// faults: a quarantined or terminally failed evaluation returns
/// `Ok(None)`; everything else propagates.
fn run_degradable(
    engine: &EvalEngine,
    app: &dyn ApproxApp,
    input: &InputParams,
    schedule: &PhaseSchedule,
) -> Result<Option<Arc<RunResult>>, OpproxError> {
    match engine.run(app, input, schedule) {
        Ok(result) => Ok(Some(result)),
        Err(e) if degradable_kind(&e).is_some() => Ok(None),
        Err(e) => Err(e),
    }
}

/// Runs one closed-loop adaptive optimization session.
///
/// The offline Algorithm 2 solve seeds the plan (emitting its usual
/// `optimize.*` ledger); the controller then executes it through the
/// engine, walks the realized per-phase work attribution against the
/// model's confidence bands, and re-plans the remaining phases with the
/// remaining budget whenever the observation drifts outside the
/// tolerance-widened band (re-segmenting the boundaries first when the
/// BBV signature moved). With zero drift the returned
/// [`ControlOutcome::plan`] phase sequence is bitwise identical to the
/// offline plan's. A degradable fault (quarantined input, exhausted
/// retries) never aborts the session: the controller reclaims the
/// unspent budget, falls back toward the accurate schedule, and reports
/// `degraded = true` if even that cannot be measured.
///
/// # Errors
///
/// Propagates model-integrity, prediction, and non-degradable runtime
/// errors.
pub fn run_adaptive(
    trained: &TrainedOpprox,
    app: &dyn ApproxApp,
    engine: &EvalEngine,
    input: &InputParams,
    spec: &AccuracySpec,
    options: &ControlOptions,
) -> Result<ControlOutcome, OpproxError> {
    trained.validate_integrity()?;
    let models = trained.models();
    let blocks = trained.blocks();
    let num_blocks = blocks.len();
    let expected = trained.estimate_golden_iters(input)?;
    let tele = engine.telemetry();
    let total_budget = spec.error_budget();

    // The offline pass: one complete Algorithm 2 solve, with its full
    // optimize.* ledger in the same trace as the control ledger.
    let offline = optimize_traced(
        models,
        blocks,
        input,
        spec,
        expected,
        Conservatism::Band,
        Some(tele),
    )?;

    tele.incr("control.sessions");
    let session = (tele.counter_value("control.sessions") - 1) as f64;

    let golden = engine.golden(app, input)?;
    let golden_total = (golden.log.total_work() as f64).max(1.0);
    let mut expected_iters = golden.outer_iters.max(1);

    let mut plan_phases = offline.phases.clone();
    let num_phases = plan_phases.len();
    let mut schedule = PhaseSchedule::new(
        plan_phases.iter().map(|p| p.config.clone()).collect(),
        expected_iters,
    )
    .map_err(OpproxError::from)?;

    tele.event(
        "control.start",
        &[
            ("session", session),
            ("budget", total_budget),
            ("phases", num_phases as f64),
            ("tolerance", options.drift_tolerance),
        ],
    );

    let mut steps: Vec<ControlStepRecord> = Vec::with_capacity(num_phases);
    let mut replans = 0usize;
    let mut resegmented_any = false;
    let mut total_reclaimed = 0.0f64;
    let mut total_redistributed = 0.0f64;
    let mut degraded = false;
    // A fault-degrade freezes further re-planning: the schedule is
    // already the safest one we can run, so drift observations are still
    // ledgered but act on nothing.
    let mut frozen = false;
    // Reclaim/redistribute amounts waiting to be stamped onto the next
    // emitted step (used when a fault-degrade re-plan happens before the
    // walk reaches its phase).
    let mut pending_reclaimed = 0.0f64;
    let mut pending_redistributed = 0.0f64;

    // Launch the planned schedule; on a degradable fault reclaim the
    // whole budget and degrade to the accurate schedule outright.
    let mut result = run_degradable(engine, app, input, &schedule)?;
    if result.is_none() {
        let pool = total_budget.max(0.0);
        for (p, plan) in plan_phases.iter_mut().enumerate().take(num_phases) {
            *plan = accurate_plan(p, num_blocks, plan.allocated_budget);
        }
        schedule = PhaseSchedule::new(
            plan_phases.iter().map(|p| p.config.clone()).collect(),
            expected_iters,
        )
        .map_err(OpproxError::from)?;
        replans += 1;
        total_reclaimed += pool;
        total_redistributed += pool;
        pending_reclaimed += pool;
        pending_redistributed += pool;
        frozen = true;
        result = run_degradable(engine, app, input, &schedule)?;
        if result.is_none() {
            degraded = true;
        }
    }

    let mut committed_qos = 0.0f64;
    let mut final_run: Option<Arc<RunResult>> = result.clone();
    if let Some(first) = result.as_ref() {
        let mut current = Arc::clone(first);
        for phase in 0..num_phases {
            let (lo, hi) = phase_window(&schedule, phase);
            let golden_work = block_work_in_window(&golden.log, lo, hi, num_blocks);
            let mut observed_work = block_work_in_window(&current.log, lo, hi, num_blocks);
            if let Some(inj) = &options.inject {
                if inj.phase == phase {
                    match inj.block {
                        Some(b) if b < num_blocks => observed_work[b] *= inj.factor,
                        Some(_) => {}
                        None => observed_work.iter_mut().for_each(|w| *w *= inj.factor),
                    }
                }
            }
            let saved: f64 = golden_work.iter().sum::<f64>() - observed_work.iter().sum::<f64>();
            let denom = (golden_total - saved).max(golden_total * 1e-6);
            let observed_speedup = golden_total / denom;

            let config = &plan_phases[phase].config;
            let point = models
                .predict_point(input, phase, config)?
                .speedup
                .max(1e-9);
            let cons = models.predict(input, phase, config)?.speedup.max(1e-9);
            let band_lo = cons.min(point);
            // The conservative prediction is the band's lower edge;
            // reflect it around the point estimate in log space for the
            // upper edge.
            let band_hi = point * (point / band_lo);
            let drift = if observed_speedup < band_lo {
                (band_lo - observed_speedup) / band_lo
            } else if observed_speedup > band_hi {
                (observed_speedup - band_hi) / band_hi
            } else {
                0.0
            };
            let mut drifted = drift > options.drift_tolerance;

            // Re-segmentation first: a moved BBV signature means the
            // boundary itself drifted, so re-anchor the partition to the
            // observed iteration count before trusting any suffix plan.
            // The comparison is only meaningful on phases that executed
            // accurately — approximating a phase distorts its block mix
            // by design, which is the drift metric's business, not the
            // boundary detector's.
            let mut resegmented = false;
            if options.resegment && !frozen && plan_phases[phase].config.is_accurate() {
                let dist = signature_distance(&signature(&golden_work), &signature(&observed_work));
                if dist > options.resegment_threshold {
                    resegmented = true;
                    resegmented_any = true;
                    drifted = true;
                    expected_iters = current.outer_iters.max(1);
                }
            }

            committed_qos += plan_phases[phase].predicted_qos;
            let mut replanned = false;
            let mut reclaimed = std::mem::take(&mut pending_reclaimed);
            let mut redistributed = std::mem::take(&mut pending_redistributed);

            if drifted && !frozen && phase + 1 < num_phases {
                let remaining: Vec<usize> = (phase + 1..num_phases).collect();
                let pool = (total_budget - committed_qos).max(0.0);
                replan_suffix(
                    models,
                    blocks,
                    input,
                    pool,
                    &remaining,
                    &mut plan_phases,
                    tele,
                )?;
                let next = PhaseSchedule::new(
                    plan_phases.iter().map(|p| p.config.clone()).collect(),
                    expected_iters,
                )
                .map_err(OpproxError::from)?;
                replanned = true;
                replans += 1;
                reclaimed += pool;
                redistributed += pool;
                total_reclaimed += pool;
                total_redistributed += pool;
                match run_degradable(engine, app, input, &next)? {
                    Some(run) => {
                        schedule = next;
                        current = Arc::clone(&run);
                        final_run = Some(run);
                    }
                    None => {
                        // The re-planned suffix is unrunnable (its key is
                        // quarantined): degrade the suffix to accurate
                        // and freeze. Keeps the executed prefix intact.
                        for &q in &remaining {
                            plan_phases[q] =
                                accurate_plan(q, num_blocks, plan_phases[q].allocated_budget);
                        }
                        let safe = PhaseSchedule::new(
                            plan_phases.iter().map(|p| p.config.clone()).collect(),
                            expected_iters,
                        )
                        .map_err(OpproxError::from)?;
                        frozen = true;
                        match run_degradable(engine, app, input, &safe)? {
                            Some(run) => {
                                schedule = safe;
                                current = Arc::clone(&run);
                                final_run = Some(run);
                            }
                            None => {
                                degraded = true;
                            }
                        }
                    }
                }
            }

            let remaining_budget = (total_budget - committed_qos).max(0.0);
            let record = ControlStepRecord {
                step: phase,
                phase,
                observed_speedup,
                predicted_speedup: point,
                band_lo,
                band_hi,
                drift,
                drifted,
                resegmented,
                replanned,
                budget_reclaimed: reclaimed,
                budget_redistributed: redistributed,
                remaining_budget,
            };
            tele.event(
                "control.step",
                &[
                    ("session", session),
                    ("step", record.step as f64),
                    ("phase", record.phase as f64),
                    ("observed_speedup", record.observed_speedup),
                    ("predicted_speedup", record.predicted_speedup),
                    ("band_lo", record.band_lo),
                    ("band_hi", record.band_hi),
                    ("drift", record.drift),
                    ("drifted", f64::from(u8::from(record.drifted))),
                    ("resegmented", f64::from(u8::from(record.resegmented))),
                    ("replanned", f64::from(u8::from(record.replanned))),
                    ("reclaimed", record.budget_reclaimed),
                    ("redistributed", record.budget_redistributed),
                    ("remaining", record.remaining_budget),
                ],
            );
            steps.push(record);
            if degraded {
                break;
            }
        }
    }

    let (predicted_speedup, predicted_qos) = compose(&plan_phases);
    // The measurement describes the schedule as finally executed (the
    // last successful run, which always matches `schedule`).
    let measured = final_run.map(|run| MeasuredOutcome {
        speedup: golden.speedup_over(&run),
        qos: app.qos_degradation(&golden, &run),
        outer_iters: run.outer_iters,
    });

    tele.event(
        "control.plan",
        &[
            ("session", session),
            ("replans", replans as f64),
            ("reclaimed", total_reclaimed),
            ("redistributed", total_redistributed),
            ("predicted_speedup", predicted_speedup),
            ("predicted_qos", predicted_qos),
            ("degraded", f64::from(u8::from(degraded))),
        ],
    );

    let plan = OptimizationPlan {
        phases: plan_phases,
        schedule,
        predicted_speedup,
        predicted_qos,
    };
    Ok(ControlOutcome {
        plan,
        offline,
        steps,
        replans,
        resegmented: resegmented_any,
        budget_reclaimed: total_reclaimed,
        budget_redistributed: total_redistributed,
        measured,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_spec_parses_and_rejects() {
        let d = DriftInjection::parse("phase=1,factor=4.0").unwrap();
        assert_eq!(d.phase, 1);
        assert_eq!(d.factor, 4.0);
        assert_eq!(d.block, None);
        let d = DriftInjection::parse("phase=0,factor=2.5,block=2").unwrap();
        assert_eq!(d.block, Some(2));
        assert!(DriftInjection::parse("factor=2.0").is_err());
        assert!(DriftInjection::parse("phase=1").is_err());
        assert!(DriftInjection::parse("phase=1,factor=0").is_err());
        assert!(DriftInjection::parse("phase=1,factor=nan").is_err());
        assert!(DriftInjection::parse("phase=1,factor=2,bogus=3").is_err());
    }

    #[test]
    fn phase_windows_partition_and_absorb_overshoot() {
        let schedule = PhaseSchedule::new(vec![LevelConfig::accurate(2); 4], 100).unwrap();
        assert_eq!(phase_window(&schedule, 0), (0, 25));
        assert_eq!(phase_window(&schedule, 1), (25, 50));
        assert_eq!(phase_window(&schedule, 3), (75, u64::MAX));
        for iter in [0, 24, 25, 99, 150] {
            let phase = schedule.phase_of(iter);
            let (lo, hi) = phase_window(&schedule, phase);
            assert!(iter >= lo && iter < hi, "iter {iter} outside its window");
        }
    }

    #[test]
    fn signatures_normalize_and_distance_is_manhattan() {
        let sig = signature(&[2.0, 6.0]);
        assert_eq!(sig, vec![0.25, 0.75]);
        assert_eq!(signature(&[0.0, 0.0]), vec![0.0, 0.0]);
        let d = signature_distance(&[0.25, 0.75], &[0.75, 0.25]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compose_matches_the_offline_formula() {
        let phases = vec![
            PhasePlan {
                phase: 0,
                config: LevelConfig::accurate(1),
                allocated_budget: 5.0,
                predicted_qos: 2.0,
                predicted_speedup: 1.25,
            },
            PhasePlan {
                phase: 1,
                config: LevelConfig::accurate(1),
                allocated_budget: 5.0,
                predicted_qos: 1.0,
                predicted_speedup: 1.1,
            },
        ];
        let (speedup, qos) = compose(&phases);
        assert!((qos - 3.0).abs() < 1e-12);
        let saved = (1.0 - 1.0 / 1.25) + (1.0 - 1.0 / 1.1);
        assert!((speedup - 1.0 / (1.0 - saved)).abs() < 1e-12);
    }
}
