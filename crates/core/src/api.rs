//! The versioned wire API shared by `opprox serve` and the CLI.
//!
//! One frame is one JSON object on one line (line-delimited JSON over
//! TCP). Every frame — request or response — carries an explicit schema
//! version (`"v": 1`) and a `"kind"` discriminator; field names are part
//! of the stable protocol and never change meaning within a version.
//! Both the server ([`crate::serve`]) and the CLI construct these DTOs,
//! so [`crate::request::OptimizeRequest`] is the internal executor behind
//! exactly one public protocol.
//!
//! Serialization is canonical: a DTO always renders to the same bytes,
//! and parsing a rendered frame reproduces the DTO — so
//! `parse(render(x)) == x` and `render(parse(render(x))) == render(x)`
//! hold for every frame (property-tested in `tests/api_protocol.rs`).
//! Malformed frames are rejected with [`OpproxError::BadRequest`];
//! frames declaring a version this build does not speak are rejected
//! with [`OpproxError::UnsupportedVersion`]. Every [`OpproxError`]
//! variant maps 1:1 onto a [`WireCode`], so server responses and CLI
//! exit messages come from one enum.

use crate::error::OpproxError;
use serde::value::{Number, Value};

/// The protocol version this build speaks (the `"v"` field).
pub const API_VERSION: u64 = 1;

/// Stable wire error codes, mapped 1:1 from [`OpproxError`] variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCode {
    /// [`OpproxError::Runtime`].
    RuntimeError,
    /// [`OpproxError::Model`].
    ModelError,
    /// [`OpproxError::InsufficientData`].
    InsufficientData,
    /// [`OpproxError::InvalidSpec`].
    InvalidSpec,
    /// [`OpproxError::NoFeasibleConfig`].
    NoFeasibleConfig,
    /// [`OpproxError::Serialization`].
    SerializationError,
    /// [`OpproxError::InvalidModel`].
    InvalidModel,
    /// [`OpproxError::EvaluationFailed`].
    EvaluationFailed,
    /// [`OpproxError::Quarantined`].
    Quarantined,
    /// [`OpproxError::BadRequest`].
    BadRequest,
    /// [`OpproxError::UnsupportedVersion`].
    UnsupportedVersion,
    /// [`OpproxError::UnknownApp`].
    UnknownApp,
    /// [`OpproxError::Overloaded`] — the load-shed response code.
    Overloaded,
    /// [`OpproxError::Unavailable`].
    Unavailable,
    /// [`OpproxError::NonFiniteMeasurement`].
    NonFiniteMeasurement,
    /// [`OpproxError::DuplicateRegistration`].
    DuplicateRegistration,
}

impl WireCode {
    /// The stable wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            WireCode::RuntimeError => "runtime_error",
            WireCode::ModelError => "model_error",
            WireCode::InsufficientData => "insufficient_data",
            WireCode::InvalidSpec => "invalid_spec",
            WireCode::NoFeasibleConfig => "no_feasible_config",
            WireCode::SerializationError => "serialization_error",
            WireCode::InvalidModel => "invalid_model",
            WireCode::EvaluationFailed => "evaluation_failed",
            WireCode::Quarantined => "quarantined",
            WireCode::BadRequest => "bad_request",
            WireCode::UnsupportedVersion => "unsupported_version",
            WireCode::UnknownApp => "unknown_app",
            WireCode::Overloaded => "overloaded",
            WireCode::Unavailable => "unavailable",
            WireCode::NonFiniteMeasurement => "non_finite_measurement",
            WireCode::DuplicateRegistration => "duplicate_registration",
        }
    }

    /// Parses a wire spelling back into the code.
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::BadRequest`] on an unknown code.
    pub fn parse(text: &str) -> Result<Self, OpproxError> {
        ALL_CODES
            .iter()
            .copied()
            .find(|c| c.as_str() == text)
            .ok_or_else(|| OpproxError::BadRequest(format!("unknown error code `{text}`")))
    }

    /// The wire code for an error — total over [`OpproxError`], so every
    /// failure a request can hit has exactly one code on the wire.
    pub fn of(err: &OpproxError) -> Self {
        match err {
            OpproxError::Runtime(_) => WireCode::RuntimeError,
            OpproxError::Model(_) => WireCode::ModelError,
            OpproxError::InsufficientData(_) => WireCode::InsufficientData,
            OpproxError::InvalidSpec(_) => WireCode::InvalidSpec,
            OpproxError::NoFeasibleConfig { .. } => WireCode::NoFeasibleConfig,
            OpproxError::Serialization(_) => WireCode::SerializationError,
            OpproxError::InvalidModel(_) => WireCode::InvalidModel,
            OpproxError::EvaluationFailed { .. } => WireCode::EvaluationFailed,
            OpproxError::Quarantined { .. } => WireCode::Quarantined,
            OpproxError::BadRequest(_) => WireCode::BadRequest,
            OpproxError::UnsupportedVersion { .. } => WireCode::UnsupportedVersion,
            OpproxError::UnknownApp { .. } => WireCode::UnknownApp,
            OpproxError::Overloaded { .. } => WireCode::Overloaded,
            OpproxError::Unavailable(_) => WireCode::Unavailable,
            OpproxError::NonFiniteMeasurement(_) => WireCode::NonFiniteMeasurement,
            OpproxError::DuplicateRegistration { .. } => WireCode::DuplicateRegistration,
        }
    }
}

/// Every code, in declaration order (used by parsing and the exhaustive
/// round-trip test).
pub const ALL_CODES: &[WireCode] = &[
    WireCode::RuntimeError,
    WireCode::ModelError,
    WireCode::InsufficientData,
    WireCode::InvalidSpec,
    WireCode::NoFeasibleConfig,
    WireCode::SerializationError,
    WireCode::InvalidModel,
    WireCode::EvaluationFailed,
    WireCode::Quarantined,
    WireCode::BadRequest,
    WireCode::UnsupportedVersion,
    WireCode::UnknownApp,
    WireCode::Overloaded,
    WireCode::Unavailable,
    WireCode::NonFiniteMeasurement,
    WireCode::DuplicateRegistration,
];

/// Parameters of an `optimize` request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeParams {
    /// Application name the server must hold a trained artifact for.
    pub app: String,
    /// Input parameter values.
    pub input: Vec<f64>,
    /// QoS-degradation budget.
    pub budget: f64,
    /// `true` selects point-prediction conservatism for the model-only
    /// solve (`"conservatism": "point"`); `false` the paper's default
    /// band mode.
    pub point: bool,
    /// `true` requests empirical validation with real executions.
    pub validate: bool,
    /// Cap on validation executions (server default when absent).
    pub validation_budget: Option<u64>,
    /// Per-request recovery knob: retry cap for failed evaluations.
    pub max_retries: Option<u64>,
    /// Per-request recovery knob: base backoff between retries, ms.
    pub backoff_ms: Option<u64>,
    /// Per-request recovery knob: wall-clock budget per evaluation, ms.
    pub eval_timeout_ms: Option<u64>,
}

impl OptimizeParams {
    /// A minimal model-only request for `app` with the given input and
    /// budget; every knob at its default.
    pub fn new(app: impl Into<String>, input: Vec<f64>, budget: f64) -> Self {
        OptimizeParams {
            app: app.into(),
            input,
            budget,
            point: false,
            validate: false,
            validation_budget: None,
            max_retries: None,
            backoff_ms: None,
            eval_timeout_ms: None,
        }
    }
}

/// Parameters of an `adaptive` request frame: a closed-loop controller
/// session ([`crate::control`]) that executes the plan phase-by-phase
/// and re-optimizes the remaining phases when observed work drifts out
/// of the model's confidence band.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveParams {
    /// Application name the server must hold a trained artifact for.
    pub app: String,
    /// Input parameter values.
    pub input: Vec<f64>,
    /// QoS-degradation budget.
    pub budget: f64,
    /// Drift tolerance override (server default when absent).
    pub tolerance: Option<f64>,
    /// `false` disables online BBV re-segmentation.
    pub resegment: bool,
    /// Drift-injection knob: the phase whose work is scaled.
    pub drift_phase: Option<u64>,
    /// Drift-injection knob: the work scale factor (goes with
    /// `drift_phase`).
    pub drift_factor: Option<f64>,
    /// Drift-injection knob: restrict the injection to one block.
    pub drift_block: Option<u64>,
    /// Per-request recovery knob: retry cap for failed evaluations.
    pub max_retries: Option<u64>,
    /// Per-request recovery knob: base backoff between retries, ms.
    pub backoff_ms: Option<u64>,
    /// Per-request recovery knob: wall-clock budget per evaluation, ms.
    pub eval_timeout_ms: Option<u64>,
}

impl AdaptiveParams {
    /// A minimal adaptive request for `app` with the given input and
    /// budget; every knob at its default.
    pub fn new(app: impl Into<String>, input: Vec<f64>, budget: f64) -> Self {
        AdaptiveParams {
            app: app.into(),
            input,
            budget,
            tolerance: None,
            resegment: true,
            drift_phase: None,
            drift_factor: None,
            drift_block: None,
            max_retries: None,
            backoff_ms: None,
            eval_timeout_ms: None,
        }
    }
}

/// Parameters of a `predict` request frame: batched model predictions
/// for one phase, one configuration per entry of `configs` (served by
/// the batched predictor, so the whole frame is one flat model pass).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictParams {
    /// Application name.
    pub app: String,
    /// Input parameter values.
    pub input: Vec<f64>,
    /// The phase the configurations apply to.
    pub phase: u64,
    /// Approximation-level vectors, one per block, one entry per
    /// prediction wanted.
    pub configs: Vec<Vec<u64>>,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiRequest {
    /// Solve Algorithm 2 (optionally validated) for an input.
    Optimize(OptimizeParams),
    /// Run a closed-loop adaptive-control session for an input.
    Adaptive(AdaptiveParams),
    /// Batched speedup/QoS/iteration predictions for explicit configs.
    Predict(PredictParams),
    /// Liveness and model-inventory probe.
    Health,
    /// Export the server's telemetry registry.
    Metrics,
    /// Ask the server to stop accepting work and exit cleanly.
    Shutdown,
}

/// A measured (real-execution) outcome inside an optimize reply.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredReply {
    /// Measured speedup.
    pub speedup: f64,
    /// Measured QoS degradation.
    pub qos: f64,
    /// Measured outer-loop iterations.
    pub outer_iters: u64,
}

/// Reply to an `optimize` request.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReply {
    /// Application the plan is for.
    pub app: String,
    /// Generation of the artifact that produced the plan (bumped by
    /// every hot reload, so clients can see which model answered).
    pub generation: u64,
    /// Which pipeline path produced the plan: `model_only`,
    /// `validated`, or `accurate_fallback`.
    pub path: String,
    /// Per-phase approximation levels of the chosen schedule.
    pub levels: Vec<Vec<u64>>,
    /// Model-predicted speedup of the plan.
    pub predicted_speedup: f64,
    /// Model-predicted QoS degradation of the plan.
    pub predicted_qos: f64,
    /// Candidate plans empirically validated (0 on the model-only path).
    pub candidates_tried: u64,
    /// `true` when the reply came from the server's plan cache.
    pub cached: bool,
    /// The measured outcome, on the validated path.
    pub measured: Option<MeasuredReply>,
}

/// Reply to an `adaptive` request: the final (possibly re-planned)
/// schedule plus the controller's budget ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReply {
    /// Application the session ran for.
    pub app: String,
    /// Generation of the artifact that produced the plan.
    pub generation: u64,
    /// Per-phase approximation levels of the final schedule.
    pub levels: Vec<Vec<u64>>,
    /// Predicted speedup of the final schedule.
    pub predicted_speedup: f64,
    /// Predicted QoS degradation of the final schedule.
    pub predicted_qos: f64,
    /// Control steps executed (one per phase walked).
    pub steps: u64,
    /// Mid-run re-optimizations triggered by drift.
    pub replans: u64,
    /// `true` when a BBV signature shift re-segmented a boundary.
    pub resegmented: bool,
    /// `true` when faults forced the accurate fallback ladder to the
    /// bottom rung.
    pub degraded: bool,
    /// Budget reclaimed from drifted/quarantined phases.
    pub budget_reclaimed: f64,
    /// Budget redistributed to remaining phases (balances `reclaimed`).
    pub budget_redistributed: f64,
    /// The measured outcome of the final run.
    pub measured: Option<MeasuredReply>,
}

/// One prediction inside a `predict` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionReply {
    /// Predicted (conservative) speedup.
    pub speedup: f64,
    /// Predicted (conservative) QoS degradation.
    pub qos: f64,
    /// Predicted outer-loop iterations.
    pub iters: f64,
}

/// Reply to a `predict` request.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictReply {
    /// Application the predictions are for.
    pub app: String,
    /// Generation of the artifact that answered.
    pub generation: u64,
    /// The control-flow class the input was classified into.
    pub class: u64,
    /// One prediction per requested configuration, in request order.
    pub predictions: Vec<PredictionReply>,
}

/// Reply to a `health` request.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReply {
    /// Loaded application names, sorted.
    pub apps: Vec<String>,
    /// Current artifact generation (bumped by every load or reload).
    pub generation: u64,
    /// Requests currently queued for the worker pool.
    pub queue_depth: u64,
    /// The admission bound past which requests are shed.
    pub queue_limit: u64,
    /// Worker threads serving the queue.
    pub threads: u64,
    /// Micros since the server started, per the server's clock.
    pub uptime_micros: u64,
}

/// Reply to a `metrics` request: the canonical telemetry report as a
/// JSON value (the same schema `--trace-out` writes and
/// `opprox analyze` lints).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReply {
    /// The report, kept as a raw value so it round-trips byte-exactly.
    pub report: Value,
}

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiResponse {
    /// Reply to [`ApiRequest::Optimize`].
    Optimize(OptimizeReply),
    /// Reply to [`ApiRequest::Adaptive`].
    Adaptive(AdaptiveReply),
    /// Reply to [`ApiRequest::Predict`].
    Predict(PredictReply),
    /// Reply to [`ApiRequest::Health`].
    Health(HealthReply),
    /// Reply to [`ApiRequest::Metrics`].
    Metrics(MetricsReply),
    /// Reply to [`ApiRequest::Shutdown`].
    Shutdown,
    /// Any failure, with its stable wire code.
    Error {
        /// The wire code.
        code: WireCode,
        /// Human-readable detail.
        message: String,
    },
}

impl ApiResponse {
    /// The error frame for an [`OpproxError`], using its 1:1 wire code.
    pub fn from_error(err: &OpproxError) -> Self {
        ApiResponse::Error {
            code: WireCode::of(err),
            message: err.to_string(),
        }
    }

    /// `true` for error frames.
    pub fn is_error(&self) -> bool {
        matches!(self, ApiResponse::Error { .. })
    }
}

// ---------------------------------------------------------------------
// Canonical rendering.

fn key(k: &str, v: Value) -> (String, Value) {
    (k.to_string(), v)
}

fn str_v(s: &str) -> Value {
    Value::String(s.to_string())
}

fn u64_v(n: u64) -> Value {
    Value::Number(Number::U64(n))
}

fn f64_v(x: f64) -> Value {
    Value::Number(Number::F64(x))
}

fn f64_array(xs: &[f64]) -> Value {
    Value::Array(xs.iter().copied().map(f64_v).collect())
}

fn levels_array(levels: &[Vec<u64>]) -> Value {
    Value::Array(
        levels
            .iter()
            .map(|row| Value::Array(row.iter().copied().map(u64_v).collect()))
            .collect(),
    )
}

fn frame_head(kind: &str) -> Vec<(String, Value)> {
    vec![key("v", u64_v(API_VERSION)), key("kind", str_v(kind))]
}

impl ApiRequest {
    /// Renders the request as one canonical wire line (no trailing
    /// newline). Field order is fixed; optional knobs are omitted when
    /// unset, so the encoding of a given DTO is unique.
    pub fn to_wire(&self) -> String {
        let entries = match self {
            ApiRequest::Optimize(p) => {
                let mut e = frame_head("optimize");
                e.push(key("app", str_v(&p.app)));
                e.push(key("input", f64_array(&p.input)));
                e.push(key("budget", f64_v(p.budget)));
                e.push(key(
                    "conservatism",
                    str_v(if p.point { "point" } else { "band" }),
                ));
                e.push(key("validate", Value::Bool(p.validate)));
                if let Some(n) = p.validation_budget {
                    e.push(key("validation_budget", u64_v(n)));
                }
                if let Some(n) = p.max_retries {
                    e.push(key("max_retries", u64_v(n)));
                }
                if let Some(n) = p.backoff_ms {
                    e.push(key("backoff_ms", u64_v(n)));
                }
                if let Some(n) = p.eval_timeout_ms {
                    e.push(key("eval_timeout_ms", u64_v(n)));
                }
                e
            }
            ApiRequest::Adaptive(p) => {
                let mut e = frame_head("adaptive");
                e.push(key("app", str_v(&p.app)));
                e.push(key("input", f64_array(&p.input)));
                e.push(key("budget", f64_v(p.budget)));
                e.push(key("resegment", Value::Bool(p.resegment)));
                if let Some(t) = p.tolerance {
                    e.push(key("tolerance", f64_v(t)));
                }
                if let Some(n) = p.drift_phase {
                    e.push(key("drift_phase", u64_v(n)));
                }
                if let Some(f) = p.drift_factor {
                    e.push(key("drift_factor", f64_v(f)));
                }
                if let Some(n) = p.drift_block {
                    e.push(key("drift_block", u64_v(n)));
                }
                if let Some(n) = p.max_retries {
                    e.push(key("max_retries", u64_v(n)));
                }
                if let Some(n) = p.backoff_ms {
                    e.push(key("backoff_ms", u64_v(n)));
                }
                if let Some(n) = p.eval_timeout_ms {
                    e.push(key("eval_timeout_ms", u64_v(n)));
                }
                e
            }
            ApiRequest::Predict(p) => {
                let mut e = frame_head("predict");
                e.push(key("app", str_v(&p.app)));
                e.push(key("input", f64_array(&p.input)));
                e.push(key("phase", u64_v(p.phase)));
                e.push(key("configs", levels_array(&p.configs)));
                e
            }
            ApiRequest::Health => frame_head("health"),
            ApiRequest::Metrics => frame_head("metrics"),
            ApiRequest::Shutdown => frame_head("shutdown"),
        };
        Value::Object(entries).render_compact()
    }

    /// Parses one wire line into a request.
    ///
    /// # Errors
    ///
    /// [`OpproxError::BadRequest`] on malformed JSON, a missing or
    /// mistyped field, or an unknown kind;
    /// [`OpproxError::UnsupportedVersion`] when the frame declares a
    /// version other than [`API_VERSION`].
    pub fn parse(line: &str) -> Result<Self, OpproxError> {
        let obj = parse_frame(line)?;
        match need_str(&obj, "kind")? {
            "optimize" => Ok(ApiRequest::Optimize(OptimizeParams {
                app: need_str(&obj, "app")?.to_string(),
                input: need_f64_array(&obj, "input")?,
                budget: need_f64(&obj, "budget")?,
                point: match need_str(&obj, "conservatism")? {
                    "band" => false,
                    "point" => true,
                    other => {
                        return Err(OpproxError::BadRequest(format!(
                            "conservatism must be `band` or `point`, got `{other}`"
                        )))
                    }
                },
                validate: need_bool(&obj, "validate")?,
                validation_budget: opt_u64(&obj, "validation_budget")?,
                max_retries: opt_u64(&obj, "max_retries")?,
                backoff_ms: opt_u64(&obj, "backoff_ms")?,
                eval_timeout_ms: opt_u64(&obj, "eval_timeout_ms")?,
            })),
            "adaptive" => {
                let params = AdaptiveParams {
                    app: need_str(&obj, "app")?.to_string(),
                    input: need_f64_array(&obj, "input")?,
                    budget: need_f64(&obj, "budget")?,
                    tolerance: opt_f64(&obj, "tolerance")?,
                    resegment: need_bool(&obj, "resegment")?,
                    drift_phase: opt_u64(&obj, "drift_phase")?,
                    drift_factor: opt_f64(&obj, "drift_factor")?,
                    drift_block: opt_u64(&obj, "drift_block")?,
                    max_retries: opt_u64(&obj, "max_retries")?,
                    backoff_ms: opt_u64(&obj, "backoff_ms")?,
                    eval_timeout_ms: opt_u64(&obj, "eval_timeout_ms")?,
                };
                if params.drift_phase.is_some() != params.drift_factor.is_some() {
                    return Err(OpproxError::BadRequest(
                        "drift_phase and drift_factor go together".to_string(),
                    ));
                }
                if params.drift_block.is_some() && params.drift_phase.is_none() {
                    return Err(OpproxError::BadRequest(
                        "drift_block needs drift_phase and drift_factor".to_string(),
                    ));
                }
                Ok(ApiRequest::Adaptive(params))
            }
            "predict" => Ok(ApiRequest::Predict(PredictParams {
                app: need_str(&obj, "app")?.to_string(),
                input: need_f64_array(&obj, "input")?,
                phase: need_u64(&obj, "phase")?,
                configs: need_levels(&obj, "configs")?,
            })),
            "health" => Ok(ApiRequest::Health),
            "metrics" => Ok(ApiRequest::Metrics),
            "shutdown" => Ok(ApiRequest::Shutdown),
            other => Err(OpproxError::BadRequest(format!(
                "unknown request kind `{other}`"
            ))),
        }
    }
}

impl ApiResponse {
    /// Renders the response as one canonical wire line (no trailing
    /// newline).
    pub fn to_wire(&self) -> String {
        let entries = match self {
            ApiResponse::Optimize(r) => {
                let mut e = frame_head("optimize");
                e.push(key("status", str_v("ok")));
                e.push(key("app", str_v(&r.app)));
                e.push(key("generation", u64_v(r.generation)));
                e.push(key("path", str_v(&r.path)));
                e.push(key("levels", levels_array(&r.levels)));
                e.push(key("predicted_speedup", f64_v(r.predicted_speedup)));
                e.push(key("predicted_qos", f64_v(r.predicted_qos)));
                e.push(key("candidates_tried", u64_v(r.candidates_tried)));
                e.push(key("cached", Value::Bool(r.cached)));
                if let Some(m) = &r.measured {
                    e.push(key(
                        "measured",
                        Value::Object(vec![
                            key("speedup", f64_v(m.speedup)),
                            key("qos", f64_v(m.qos)),
                            key("outer_iters", u64_v(m.outer_iters)),
                        ]),
                    ));
                }
                e
            }
            ApiResponse::Adaptive(r) => {
                let mut e = frame_head("adaptive");
                e.push(key("status", str_v("ok")));
                e.push(key("app", str_v(&r.app)));
                e.push(key("generation", u64_v(r.generation)));
                e.push(key("levels", levels_array(&r.levels)));
                e.push(key("predicted_speedup", f64_v(r.predicted_speedup)));
                e.push(key("predicted_qos", f64_v(r.predicted_qos)));
                e.push(key("steps", u64_v(r.steps)));
                e.push(key("replans", u64_v(r.replans)));
                e.push(key("resegmented", Value::Bool(r.resegmented)));
                e.push(key("degraded", Value::Bool(r.degraded)));
                e.push(key("budget_reclaimed", f64_v(r.budget_reclaimed)));
                e.push(key("budget_redistributed", f64_v(r.budget_redistributed)));
                if let Some(m) = &r.measured {
                    e.push(key(
                        "measured",
                        Value::Object(vec![
                            key("speedup", f64_v(m.speedup)),
                            key("qos", f64_v(m.qos)),
                            key("outer_iters", u64_v(m.outer_iters)),
                        ]),
                    ));
                }
                e
            }
            ApiResponse::Predict(r) => {
                let mut e = frame_head("predict");
                e.push(key("status", str_v("ok")));
                e.push(key("app", str_v(&r.app)));
                e.push(key("generation", u64_v(r.generation)));
                e.push(key("class", u64_v(r.class)));
                e.push(key(
                    "predictions",
                    Value::Array(
                        r.predictions
                            .iter()
                            .map(|p| {
                                Value::Object(vec![
                                    key("speedup", f64_v(p.speedup)),
                                    key("qos", f64_v(p.qos)),
                                    key("iters", f64_v(p.iters)),
                                ])
                            })
                            .collect(),
                    ),
                ));
                e
            }
            ApiResponse::Health(r) => {
                let mut e = frame_head("health");
                e.push(key("status", str_v("ok")));
                e.push(key(
                    "apps",
                    Value::Array(r.apps.iter().map(|a| str_v(a)).collect()),
                ));
                e.push(key("generation", u64_v(r.generation)));
                e.push(key("queue_depth", u64_v(r.queue_depth)));
                e.push(key("queue_limit", u64_v(r.queue_limit)));
                e.push(key("threads", u64_v(r.threads)));
                e.push(key("uptime_micros", u64_v(r.uptime_micros)));
                e
            }
            ApiResponse::Metrics(r) => {
                let mut e = frame_head("metrics");
                e.push(key("status", str_v("ok")));
                e.push(key("report", r.report.clone()));
                e
            }
            ApiResponse::Shutdown => {
                let mut e = frame_head("shutdown");
                e.push(key("status", str_v("ok")));
                e
            }
            ApiResponse::Error { code, message } => {
                let mut e = frame_head("error");
                e.push(key("status", str_v("error")));
                e.push(key("code", str_v(code.as_str())));
                e.push(key("message", str_v(message)));
                e
            }
        };
        Value::Object(entries).render_compact()
    }

    /// Parses one wire line into a response.
    ///
    /// # Errors
    ///
    /// [`OpproxError::BadRequest`] on malformed JSON, a missing or
    /// mistyped field, or an unknown kind;
    /// [`OpproxError::UnsupportedVersion`] on a version mismatch.
    pub fn parse(line: &str) -> Result<Self, OpproxError> {
        let obj = parse_frame(line)?;
        match need_str(&obj, "kind")? {
            "optimize" => Ok(ApiResponse::Optimize(OptimizeReply {
                app: need_str(&obj, "app")?.to_string(),
                generation: need_u64(&obj, "generation")?,
                path: need_str(&obj, "path")?.to_string(),
                levels: need_levels(&obj, "levels")?,
                predicted_speedup: need_f64(&obj, "predicted_speedup")?,
                predicted_qos: need_f64(&obj, "predicted_qos")?,
                candidates_tried: need_u64(&obj, "candidates_tried")?,
                cached: need_bool(&obj, "cached")?,
                measured: match get(&obj, "measured") {
                    None => None,
                    Some(v) => {
                        let m = v.as_object().ok_or_else(|| {
                            OpproxError::BadRequest(format!(
                                "field `measured` must be an object, got {}",
                                v.kind()
                            ))
                        })?;
                        Some(MeasuredReply {
                            speedup: need_f64(m, "speedup")?,
                            qos: need_f64(m, "qos")?,
                            outer_iters: need_u64(m, "outer_iters")?,
                        })
                    }
                },
            })),
            "adaptive" => Ok(ApiResponse::Adaptive(AdaptiveReply {
                app: need_str(&obj, "app")?.to_string(),
                generation: need_u64(&obj, "generation")?,
                levels: need_levels(&obj, "levels")?,
                predicted_speedup: need_f64(&obj, "predicted_speedup")?,
                predicted_qos: need_f64(&obj, "predicted_qos")?,
                steps: need_u64(&obj, "steps")?,
                replans: need_u64(&obj, "replans")?,
                resegmented: need_bool(&obj, "resegmented")?,
                degraded: need_bool(&obj, "degraded")?,
                budget_reclaimed: need_f64(&obj, "budget_reclaimed")?,
                budget_redistributed: need_f64(&obj, "budget_redistributed")?,
                measured: match get(&obj, "measured") {
                    None => None,
                    Some(v) => {
                        let m = v.as_object().ok_or_else(|| {
                            OpproxError::BadRequest(format!(
                                "field `measured` must be an object, got {}",
                                v.kind()
                            ))
                        })?;
                        Some(MeasuredReply {
                            speedup: need_f64(m, "speedup")?,
                            qos: need_f64(m, "qos")?,
                            outer_iters: need_u64(m, "outer_iters")?,
                        })
                    }
                },
            })),
            "predict" => {
                let preds = need(&obj, "predictions")?;
                let Value::Array(items) = preds else {
                    return Err(OpproxError::BadRequest(format!(
                        "field `predictions` must be an array, got {}",
                        preds.kind()
                    )));
                };
                let predictions = items
                    .iter()
                    .map(|item| {
                        let m = item.as_object().ok_or_else(|| {
                            OpproxError::BadRequest(
                                "predictions entries must be objects".to_string(),
                            )
                        })?;
                        Ok(PredictionReply {
                            speedup: need_f64(m, "speedup")?,
                            qos: need_f64(m, "qos")?,
                            iters: need_f64(m, "iters")?,
                        })
                    })
                    .collect::<Result<Vec<_>, OpproxError>>()?;
                Ok(ApiResponse::Predict(PredictReply {
                    app: need_str(&obj, "app")?.to_string(),
                    generation: need_u64(&obj, "generation")?,
                    class: need_u64(&obj, "class")?,
                    predictions,
                }))
            }
            "health" => {
                let apps_v = need(&obj, "apps")?;
                let Value::Array(items) = apps_v else {
                    return Err(OpproxError::BadRequest(format!(
                        "field `apps` must be an array, got {}",
                        apps_v.kind()
                    )));
                };
                let apps = items
                    .iter()
                    .map(|v| {
                        v.as_str().map(str::to_string).ok_or_else(|| {
                            OpproxError::BadRequest("apps entries must be strings".to_string())
                        })
                    })
                    .collect::<Result<Vec<_>, OpproxError>>()?;
                Ok(ApiResponse::Health(HealthReply {
                    apps,
                    generation: need_u64(&obj, "generation")?,
                    queue_depth: need_u64(&obj, "queue_depth")?,
                    queue_limit: need_u64(&obj, "queue_limit")?,
                    threads: need_u64(&obj, "threads")?,
                    uptime_micros: need_u64(&obj, "uptime_micros")?,
                }))
            }
            "metrics" => Ok(ApiResponse::Metrics(MetricsReply {
                report: need(&obj, "report")?.clone(),
            })),
            "shutdown" => Ok(ApiResponse::Shutdown),
            "error" => Ok(ApiResponse::Error {
                code: WireCode::parse(need_str(&obj, "code")?)?,
                message: need_str(&obj, "message")?.to_string(),
            }),
            other => Err(OpproxError::BadRequest(format!(
                "unknown response kind `{other}`"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Parsing helpers. Every failure is a `BadRequest` with the offending
// field named, except the version check which gets its own variant.

fn parse_frame(line: &str) -> Result<Vec<(String, Value)>, OpproxError> {
    let value = serde_json::parse_value(line.trim_end_matches(['\r', '\n']))
        .map_err(|e| OpproxError::BadRequest(format!("malformed frame: {e}")))?;
    let Value::Object(entries) = value else {
        return Err(OpproxError::BadRequest(format!(
            "a frame must be a JSON object, got {}",
            value.kind()
        )));
    };
    let v = need_u64(&entries, "v")?;
    if v != API_VERSION {
        return Err(OpproxError::UnsupportedVersion { got: v });
    }
    Ok(entries)
}

fn get<'v>(obj: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn need<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, OpproxError> {
    get(obj, name).ok_or_else(|| OpproxError::BadRequest(format!("missing field `{name}`")))
}

fn need_str<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v str, OpproxError> {
    let v = need(obj, name)?;
    v.as_str().ok_or_else(|| {
        OpproxError::BadRequest(format!("field `{name}` must be a string, got {}", v.kind()))
    })
}

fn need_u64(obj: &[(String, Value)], name: &str) -> Result<u64, OpproxError> {
    let v = need(obj, name)?;
    v.as_u64().ok_or_else(|| {
        OpproxError::BadRequest(format!(
            "field `{name}` must be a non-negative integer, got {}",
            v.kind()
        ))
    })
}

fn opt_u64(obj: &[(String, Value)], name: &str) -> Result<Option<u64>, OpproxError> {
    match get(obj, name) {
        None => Ok(None),
        Some(_) => need_u64(obj, name).map(Some),
    }
}

fn opt_f64(obj: &[(String, Value)], name: &str) -> Result<Option<f64>, OpproxError> {
    match get(obj, name) {
        None => Ok(None),
        Some(_) => need_f64(obj, name).map(Some),
    }
}

fn need_f64(obj: &[(String, Value)], name: &str) -> Result<f64, OpproxError> {
    let v = need(obj, name)?;
    v.as_f64().ok_or_else(|| {
        OpproxError::BadRequest(format!(
            "field `{name}` must be a finite number, got {}",
            v.kind()
        ))
    })
}

fn need_bool(obj: &[(String, Value)], name: &str) -> Result<bool, OpproxError> {
    match need(obj, name)? {
        Value::Bool(b) => Ok(*b),
        v => Err(OpproxError::BadRequest(format!(
            "field `{name}` must be a boolean, got {}",
            v.kind()
        ))),
    }
}

fn need_f64_array(obj: &[(String, Value)], name: &str) -> Result<Vec<f64>, OpproxError> {
    let v = need(obj, name)?;
    let Value::Array(items) = v else {
        return Err(OpproxError::BadRequest(format!(
            "field `{name}` must be an array, got {}",
            v.kind()
        )));
    };
    items
        .iter()
        .map(|item| {
            item.as_f64().ok_or_else(|| {
                OpproxError::BadRequest(format!("field `{name}` must hold finite numbers"))
            })
        })
        .collect()
}

fn need_levels(obj: &[(String, Value)], name: &str) -> Result<Vec<Vec<u64>>, OpproxError> {
    let v = need(obj, name)?;
    let Value::Array(rows) = v else {
        return Err(OpproxError::BadRequest(format!(
            "field `{name}` must be an array of level arrays, got {}",
            v.kind()
        )));
    };
    rows.iter()
        .map(|row| {
            let Value::Array(items) = row else {
                return Err(OpproxError::BadRequest(format!(
                    "field `{name}` must hold arrays of levels"
                )));
            };
            items
                .iter()
                .map(|item| {
                    item.as_u64().ok_or_else(|| {
                        OpproxError::BadRequest(format!(
                            "field `{name}` levels must be non-negative integers"
                        ))
                    })
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            ApiRequest::Health,
            ApiRequest::Metrics,
            ApiRequest::Shutdown,
            ApiRequest::Optimize(OptimizeParams {
                validate: true,
                point: true,
                validation_budget: Some(8),
                max_retries: Some(1),
                backoff_ms: Some(0),
                eval_timeout_ms: Some(250),
                ..OptimizeParams::new("pso", vec![16.0, 3.0], 10.0)
            }),
            ApiRequest::Optimize(OptimizeParams::new("lulesh", vec![64.0, 2.0], 2.5)),
            ApiRequest::Predict(PredictParams {
                app: "pso".to_string(),
                input: vec![16.0, 3.0],
                phase: 1,
                configs: vec![vec![0, 2], vec![1, 1]],
            }),
            ApiRequest::Adaptive(AdaptiveParams::new("pso", vec![16.0, 3.0], 10.0)),
            ApiRequest::Adaptive(AdaptiveParams {
                tolerance: Some(0.4),
                resegment: false,
                drift_phase: Some(0),
                drift_factor: Some(6.0),
                drift_block: Some(1),
                max_retries: Some(2),
                backoff_ms: Some(0),
                eval_timeout_ms: Some(250),
                ..AdaptiveParams::new("pso", vec![16.0, 3.0], 10.0)
            }),
        ];
        for req in reqs {
            let wire = req.to_wire();
            let parsed = ApiRequest::parse(&wire).unwrap();
            assert_eq!(parsed, req);
            assert_eq!(parsed.to_wire(), wire, "canonical bytes for {req:?}");
        }
    }

    #[test]
    fn unknown_version_is_rejected_with_its_own_code() {
        let mut p = OptimizeParams::new("pso", vec![1.0], 5.0);
        p.validate = false;
        let wire = ApiRequest::Optimize(p)
            .to_wire()
            .replace("\"v\":1", "\"v\":2");
        let err = ApiRequest::parse(&wire).unwrap_err();
        assert_eq!(err, OpproxError::UnsupportedVersion { got: 2 });
        assert_eq!(WireCode::of(&err), WireCode::UnsupportedVersion);
    }

    #[test]
    fn truncated_and_malformed_frames_are_bad_requests() {
        let wire = ApiRequest::Health.to_wire();
        for frame in [
            &wire[..wire.len() - 2],
            "",
            "not json",
            "[1,2,3]",
            "{\"kind\":\"health\"}",
        ] {
            let err = ApiRequest::parse(frame).unwrap_err();
            assert_eq!(
                WireCode::of(&err),
                WireCode::BadRequest,
                "frame {frame:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn adaptive_reply_round_trips() {
        let reply = ApiResponse::Adaptive(AdaptiveReply {
            app: "pso".to_string(),
            generation: 3,
            levels: vec![vec![0, 0], vec![2, 1]],
            predicted_speedup: 1.4,
            predicted_qos: 8.5,
            steps: 2,
            replans: 1,
            resegmented: true,
            degraded: false,
            budget_reclaimed: 7.25,
            budget_redistributed: 7.25,
            measured: Some(MeasuredReply {
                speedup: 1.31,
                qos: 6.9,
                outer_iters: 40,
            }),
        });
        let wire = reply.to_wire();
        let parsed = ApiResponse::parse(&wire).unwrap();
        assert_eq!(parsed, reply);
        assert_eq!(parsed.to_wire(), wire, "canonical bytes");
    }

    #[test]
    fn half_specified_drift_injection_is_rejected() {
        let mut p = AdaptiveParams::new("pso", vec![1.0], 5.0);
        p.drift_phase = Some(0);
        let err = ApiRequest::parse(&ApiRequest::Adaptive(p).to_wire()).unwrap_err();
        assert_eq!(WireCode::of(&err), WireCode::BadRequest);

        let mut p = AdaptiveParams::new("pso", vec![1.0], 5.0);
        p.drift_block = Some(1);
        let err = ApiRequest::parse(&ApiRequest::Adaptive(p).to_wire()).unwrap_err();
        assert_eq!(WireCode::of(&err), WireCode::BadRequest);
    }

    #[test]
    fn every_wire_code_round_trips() {
        for &code in ALL_CODES {
            assert_eq!(WireCode::parse(code.as_str()).unwrap(), code);
        }
        assert!(WireCode::parse("no_such_code").is_err());
    }

    #[test]
    fn error_frames_carry_their_code() {
        let err = OpproxError::Overloaded {
            depth: 64,
            limit: 64,
        };
        let resp = ApiResponse::from_error(&err);
        let wire = resp.to_wire();
        assert!(wire.contains("\"code\":\"overloaded\""));
        let parsed = ApiResponse::parse(&wire).unwrap();
        assert_eq!(parsed, resp);
        assert!(parsed.is_error());
    }
}
