//! Deterministic observability: hierarchical spans, a typed metrics
//! registry, and exporters.
//!
//! OPPROX's value claim is quantitative, so the pipeline itself must be
//! measurable: where do wall time and real executions go, how often does
//! the execution cache hit, in what order does the optimizer visit phases
//! when it redistributes leftover budget? This module turns those
//! questions into assertable facts:
//!
//! * **Spans** — named start/stop intervals (`"granularity/n[4]"`,
//!   `"stage/profiling"`). Hierarchy is carried in the path; timing comes
//!   from an injectable [`Clock`], so tests swap in a [`ManualClock`] and
//!   get byte-identical reports across runs and thread counts.
//! * **Counters / gauges / histograms** — the registry follows the same
//!   order-independent ledger discipline as
//!   [`crate::fault::RobustnessReport`]: counters are commutative sums,
//!   gauges track a commutative maximum alongside the last main-thread
//!   write, and histograms use fixed bucket boundaries so their counts
//!   are invariant under execution-order shuffling.
//! * **Events** — ordered structured records (e.g. one per optimizer
//!   phase visit) emitted only from deterministic single-threaded call
//!   sites, so their sequence is reproducible.
//! * **Exporters** — [`TelemetryReport`] serializes to JSON (canonically
//!   sorted, byte-stable), renders as human text (the
//!   `opprox trace summarize` output), and exports Chrome
//!   `chrome://tracing` trace-event JSON for eyeballing phase boundaries.
//!
//! Worker threads may only bump counters, gauges maxima, and histogram
//! buckets — never spans or events. That single rule is what makes the
//! exported report deterministic for a fixed seed regardless of `--threads`.

use crate::sync::Mutex;
use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond time source for span accounting.
///
/// Production uses [`MonotonicClock`]; tests inject a [`ManualClock`] so
/// span durations (and therefore exported reports) are deterministic.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock's origin.
    fn now_micros(&self) -> u64;
}

/// The default wall clock: microseconds since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A test clock that only moves when told to.
///
/// Uses a plain `std` atomic (not the loom stand-in) because loom suites
/// never construct one, while ordinary `#[test]`s need it outside any
/// loom model.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: StdAtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta` microseconds.
    pub fn advance_micros(&self, delta: u64) {
        self.micros
            .fetch_add(delta, std::sync::atomic::Ordering::Relaxed);
    }

    /// Moves the clock to an absolute microsecond timestamp.
    pub fn set_micros(&self, micros: u64) {
        self.micros
            .store(micros, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Hierarchical span path, e.g. `granularity/n[4]`.
    pub path: String,
    /// How many times the span ran.
    pub count: u64,
    /// Total microseconds across all runs, per the injected [`Clock`].
    pub total_micros: u64,
}

/// One concrete span occurrence on the timeline (Chrome trace source).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Hierarchical span path.
    pub path: String,
    /// Start timestamp in clock microseconds.
    pub start_micros: u64,
    /// Duration in clock microseconds.
    pub duration_micros: u64,
}

/// A named monotone counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    /// Counter name, e.g. `eval.cache.hit`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A named gauge: last main-thread write plus the running maximum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeStat {
    /// Gauge name, e.g. `eval.queue_depth`.
    pub name: String,
    /// The most recent value written.
    pub last: f64,
    /// The maximum value ever written (commutative, thread-safe fact).
    pub max: f64,
}

/// A fixed-boundary histogram: `counts.len() == bounds.len() + 1`, where
/// bucket `i` counts observations in `[bounds[i-1], bounds[i])` (open
/// ended at both extremes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramStat {
    /// Histogram name, e.g. `ml.cv_solves_per_degree`.
    pub name: String,
    /// Fixed, ascending bucket boundaries.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (one more entry than `bounds`).
    pub counts: Vec<u64>,
}

/// One key/value pair attached to a [`TelemetryEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventField {
    /// Field name, e.g. `roi`.
    pub key: String,
    /// Field value; all event payloads are numeric.
    pub value: f64,
}

/// An ordered structured record emitted from a deterministic call site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryEvent {
    /// Zero-based emission order.
    pub seq: u64,
    /// Event name, e.g. `optimize.phase`.
    pub name: String,
    /// Numeric payload fields, in emission order.
    pub fields: Vec<EventField>,
}

impl TelemetryEvent {
    /// Looks up a payload field by key.
    pub fn field(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|f| f.key == key).map(|f| f.value)
    }
}

#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_micros: u64,
}

#[derive(Debug, Default, Clone)]
struct GaugeAgg {
    last: f64,
    max: f64,
}

#[derive(Debug, Clone)]
struct HistAgg {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

/// The live telemetry registry threaded through the pipeline.
///
/// Cheap to write from any thread (counters, gauges, histograms) and from
/// the orchestrating thread (spans, events); snapshot with
/// [`Telemetry::report`].
pub struct Telemetry {
    clock: Arc<dyn Clock>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    timeline: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, GaugeAgg>>,
    histograms: Mutex<BTreeMap<String, HistAgg>>,
    events: Mutex<Vec<TelemetryEvent>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A registry timed by a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry timed by the given clock (tests pass a [`ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            spans: Mutex::new(BTreeMap::new()),
            timeline: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The clock this registry stamps spans with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Runs `f` inside a span named `path`, accounting its wall time
    /// against the injected clock. Call only from the orchestrating
    /// thread — span order is part of the determinism contract.
    pub fn span<T>(&self, path: &str, f: impl FnOnce() -> T) -> T {
        let start = self.clock.now_micros();
        let out = f();
        let end = self.clock.now_micros();
        let duration = end.saturating_sub(start);
        {
            let mut spans = self.spans.lock().expect("telemetry spans lock");
            let agg = spans.entry(path.to_string()).or_default();
            agg.count += 1;
            agg.total_micros += duration;
        }
        self.timeline
            .lock()
            .expect("telemetry timeline lock")
            .push(SpanRecord {
                path: path.to_string(),
                start_micros: start,
                duration_micros: duration,
            });
        out
    }

    /// Like [`Telemetry::span`] but tolerates an absent registry, for call
    /// sites that are traced only when a caller opted in.
    pub fn maybe_span<T>(tele: Option<&Telemetry>, path: &str, f: impl FnOnce() -> T) -> T {
        match tele {
            Some(t) => t.span(path, f),
            None => f(),
        }
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        let mut counters = self.counters.lock().expect("telemetry counters lock");
        *counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// The current value of counter `name` (0 when never written).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("telemetry counters lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Writes gauge `name`: updates `last` and folds into `max`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.lock().expect("telemetry gauges lock");
        let agg = gauges.entry(name.to_string()).or_default();
        agg.last = value;
        if value > agg.max {
            agg.max = value;
        }
    }

    /// Records one observation of `value` into histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` was previously registered with different
    /// `bounds` — mixed boundaries are a programming error.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        self.observe_n(name, bounds, value, 1);
    }

    /// Records `n` observations of `value` into histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` was previously registered with different
    /// `bounds`.
    pub fn observe_n(&self, name: &str, bounds: &[f64], value: f64, n: u64) {
        let mut hists = self.histograms.lock().expect("telemetry histograms lock");
        let agg = hists.entry(name.to_string()).or_insert_with(|| HistAgg {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        });
        assert_eq!(
            agg.bounds, bounds,
            "histogram {name} re-registered with different bounds"
        );
        let idx = bounds.iter().filter(|b| value >= **b).count();
        agg.counts[idx] += n;
    }

    /// Emits a structured event. Call only from the orchestrating thread.
    pub fn event(&self, name: &str, fields: &[(&str, f64)]) {
        let mut events = self.events.lock().expect("telemetry events lock");
        let seq = events.len() as u64;
        events.push(TelemetryEvent {
            seq,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| EventField {
                    key: (*k).to_string(),
                    value: *v,
                })
                .collect(),
        });
    }

    /// Snapshots the registry into a canonical, serializable report.
    pub fn report(&self) -> TelemetryReport {
        let spans = self
            .spans
            .lock()
            .expect("telemetry spans lock")
            .iter()
            .map(|(path, agg)| SpanStat {
                path: path.clone(),
                count: agg.count,
                total_micros: agg.total_micros,
            })
            .collect();
        let timeline = self
            .timeline
            .lock()
            .expect("telemetry timeline lock")
            .clone();
        let counters = self
            .counters
            .lock()
            .expect("telemetry counters lock")
            .iter()
            .map(|(name, value)| CounterStat {
                name: name.clone(),
                value: *value,
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("telemetry gauges lock")
            .iter()
            .map(|(name, agg)| GaugeStat {
                name: name.clone(),
                last: agg.last,
                max: agg.max,
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("telemetry histograms lock")
            .iter()
            .map(|(name, agg)| HistogramStat {
                name: name.clone(),
                bounds: agg.bounds.clone(),
                counts: agg.counts.clone(),
            })
            .collect();
        let events = self.events.lock().expect("telemetry events lock").clone();
        TelemetryReport {
            spans,
            timeline,
            counters,
            gauges,
            histograms,
            events,
        }
    }
}

/// An immutable, canonically ordered snapshot of a [`Telemetry`] registry.
///
/// Every collection is sorted (spans/counters/gauges/histograms by name)
/// or sequence-ordered (timeline, events), so for a fixed seed and an
/// injected [`ManualClock`] the JSON export is byte-identical across
/// reruns and worker-thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Per-path span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Concrete span occurrences in emission order.
    pub timeline: Vec<SpanRecord>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeStat>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramStat>,
    /// Structured events in emission order.
    pub events: Vec<TelemetryEvent>,
}

impl TelemetryReport {
    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.timeline.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// All counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<&CounterStat> {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .collect()
    }

    /// The gauge named `name`, when present.
    pub fn gauge(&self, name: &str) -> Option<&GaugeStat> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The span aggregate for `path`, when present.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The histogram named `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// All events named `name`, in emission order.
    pub fn events_named(&self, name: &str) -> Vec<&TelemetryEvent> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// Canonical JSON export (the `--trace-format json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("telemetry report serializes")
    }

    /// Parses a JSON export back into a report.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid telemetry artifact: {e}"))
    }

    /// Human-readable summary (the `opprox trace summarize` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry summary\n");
        out.push_str("=================\n");
        out.push_str("spans (count / total micros):\n");
        if self.spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for s in &self.spans {
            let _ = writeln!(out, "  {}: {} / {}", s.path, s.count, s.total_micros);
        }
        out.push_str("counters:\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for c in &self.counters {
            let _ = writeln!(out, "  {}: {}", c.name, c.value);
        }
        out.push_str("gauges (last / max):\n");
        if self.gauges.is_empty() {
            out.push_str("  (none)\n");
        }
        for g in &self.gauges {
            let _ = writeln!(out, "  {}: {} / {}", g.name, g.last, g.max);
        }
        out.push_str("histograms:\n");
        if self.histograms.is_empty() {
            out.push_str("  (none)\n");
        }
        for h in &self.histograms {
            let counts = h
                .counts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "  {}: [{}]", h.name, counts);
        }
        out.push_str("adaptive control:\n");
        let starts = self.events_named("control.start");
        if starts.is_empty() {
            out.push_str("  (none)\n");
        }
        for start in &starts {
            let session = start.field("session").unwrap_or(f64::NAN);
            let _ = writeln!(
                out,
                "  session {}: budget {} over {} phases (tolerance {})",
                session,
                start.field("budget").unwrap_or(f64::NAN),
                start.field("phases").unwrap_or(f64::NAN),
                start.field("tolerance").unwrap_or(f64::NAN),
            );
            for step in self
                .events_named("control.step")
                .iter()
                .filter(|e| e.field("session") == Some(session))
            {
                let mut line = format!(
                    "    step {}: phase {} observed {}x in [{}, {}], drift {}",
                    step.field("step").unwrap_or(f64::NAN),
                    step.field("phase").unwrap_or(f64::NAN),
                    step.field("observed_speedup").unwrap_or(f64::NAN),
                    step.field("band_lo").unwrap_or(f64::NAN),
                    step.field("band_hi").unwrap_or(f64::NAN),
                    step.field("drift").unwrap_or(f64::NAN),
                );
                if step.field("resegmented").unwrap_or(0.0) != 0.0 {
                    line.push_str(" [re-segmented]");
                }
                if step.field("replanned").unwrap_or(0.0) != 0.0 {
                    let _ = write!(
                        line,
                        " [re-planned: reclaimed {}, redistributed {}]",
                        step.field("reclaimed").unwrap_or(f64::NAN),
                        step.field("redistributed").unwrap_or(f64::NAN),
                    );
                }
                let _ = writeln!(out, "{line}");
            }
            for plan in self
                .events_named("control.plan")
                .iter()
                .filter(|e| e.field("session") == Some(session))
            {
                let _ = writeln!(
                    out,
                    "    plan: {} re-plans, reclaimed {}, redistributed {}, predicted {}x @ qos {}{}",
                    plan.field("replans").unwrap_or(f64::NAN),
                    plan.field("reclaimed").unwrap_or(f64::NAN),
                    plan.field("redistributed").unwrap_or(f64::NAN),
                    plan.field("predicted_speedup").unwrap_or(f64::NAN),
                    plan.field("predicted_qos").unwrap_or(f64::NAN),
                    if plan.field("degraded").unwrap_or(0.0) != 0.0 {
                        " (degraded)"
                    } else {
                        ""
                    },
                );
            }
        }
        let _ = writeln!(out, "events: {} recorded", self.events.len());
        for e in &self.events {
            let fields = e
                .fields
                .iter()
                .map(|f| format!("{}={}", f.key, f.value))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "  [{}] {}: {}", e.seq, e.name, fields);
        }
        out
    }

    /// Chrome `chrome://tracing` trace-event export: one complete (`X`)
    /// event per timeline span plus one counter (`C`) sample per counter.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for rec in &self.timeline {
            events.push(Value::Object(vec![
                ("name".to_string(), Value::String(rec.path.clone())),
                ("cat".to_string(), Value::String("opprox".to_string())),
                ("ph".to_string(), Value::String("X".to_string())),
                (
                    "ts".to_string(),
                    Value::Number(Number::U64(rec.start_micros)),
                ),
                (
                    "dur".to_string(),
                    Value::Number(Number::U64(rec.duration_micros)),
                ),
                ("pid".to_string(), Value::Number(Number::U64(1))),
                ("tid".to_string(), Value::Number(Number::U64(1))),
            ]));
        }
        let counter_ts = self
            .timeline
            .iter()
            .map(|r| r.start_micros + r.duration_micros)
            .max()
            .unwrap_or(0);
        for c in &self.counters {
            events.push(Value::Object(vec![
                ("name".to_string(), Value::String(c.name.clone())),
                ("cat".to_string(), Value::String("opprox".to_string())),
                ("ph".to_string(), Value::String("C".to_string())),
                ("ts".to_string(), Value::Number(Number::U64(counter_ts))),
                ("pid".to_string(), Value::Number(Number::U64(1))),
                ("tid".to_string(), Value::Number(Number::U64(1))),
                (
                    "args".to_string(),
                    Value::Object(vec![(
                        "value".to_string(),
                        Value::Number(Number::U64(c.value)),
                    )]),
                ),
            ]));
        }
        Value::Array(events).render_compact()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_against_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let tele = Telemetry::with_clock(clock.clone());
        tele.span("a/b", || clock.advance_micros(5));
        tele.span("a/b", || clock.advance_micros(7));
        let report = tele.report();
        let stat = report.span("a/b").expect("span recorded");
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_micros, 12);
        assert_eq!(report.timeline.len(), 2);
        assert_eq!(report.timeline[1].start_micros, 5);
        assert_eq!(report.timeline[1].duration_micros, 7);
    }

    #[test]
    fn counters_gauges_and_events_round_trip_through_json() {
        let tele = Telemetry::with_clock(Arc::new(ManualClock::new()));
        tele.incr("hits");
        tele.add("hits", 2);
        tele.set_gauge("depth", 4.0);
        tele.set_gauge("depth", 2.0);
        tele.event("visit", &[("phase", 1.0), ("roi", 2.5)]);
        let report = tele.report();
        assert_eq!(report.counter("hits"), 3);
        let g = report.gauge("depth").expect("gauge recorded");
        assert_eq!((g.last, g.max), (2.0, 4.0));
        assert_eq!(report.events_named("visit")[0].field("roi"), Some(2.5));
        let back = TelemetryReport::from_json(&report.to_json()).expect("round trips");
        assert_eq!(back, report);
    }

    #[test]
    fn histogram_buckets_are_order_independent() {
        let bounds = [1.0, 2.0, 3.0];
        let a = Telemetry::new();
        let b = Telemetry::new();
        for v in [0.5, 1.5, 1.5, 2.5, 9.0] {
            a.observe("h", &bounds, v);
        }
        for v in [9.0, 2.5, 1.5, 0.5, 1.5] {
            b.observe("h", &bounds, v);
        }
        let (ra, rb) = (a.report(), b.report());
        assert_eq!(ra.histogram("h"), rb.histogram("h"));
        assert_eq!(ra.histogram("h").expect("present").counts, vec![1, 2, 1, 1]);
    }

    #[test]
    fn chrome_trace_is_a_json_array_of_trace_events() {
        let clock = Arc::new(ManualClock::new());
        let tele = Telemetry::with_clock(clock.clone());
        tele.span("root", || clock.advance_micros(10));
        tele.incr("execs");
        let trace = tele.report().to_chrome_trace();
        let value = serde_json::parse_value(&trace).expect("chrome trace parses");
        let events = match value {
            Value::Array(items) => items,
            other => panic!("expected array, got {}", other.kind()),
        };
        assert_eq!(events.len(), 2);
    }
}
