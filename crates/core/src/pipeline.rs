//! The end-to-end OPPROX system (paper Fig. 6).
//!
//! Offline: profile the application on representative inputs, identify
//! the phase granularity (Algorithm 1), and fit the control-flow,
//! iteration-count, speedup, and QoS models. Online: for a production
//! input and QoS budget, solve Algorithm 2 and hand back a
//! [`PhaseSchedule`] — the equivalent of the paper's per-phase
//! environment-variable settings passed to the SLURM job.

use crate::error::OpproxError;
use crate::evaluator::EvalEngine;
use crate::modeling::{AppModels, ModelingOptions};
use crate::optimizer::OptimizationPlan;
use crate::phases::{find_phase_granularity_with, PhaseSearchOptions};
use crate::sampling::{collect_training_data_with, SamplingPlan, TrainingData};
use opprox_approx_rt::block::BlockDescriptor;
use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule};
use serde::{Deserialize, Serialize};

/// Options controlling offline training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingOptions {
    /// Fixed phase count; `None` runs Algorithm 1 to find it.
    pub num_phases: Option<usize>,
    /// Options for the phase-granularity search.
    pub phase_search: PhaseSearchOptions,
    /// Sampling plan (its `num_phases` field is overridden by the chosen
    /// granularity).
    pub sampling: SamplingPlan,
    /// Model-fitting options.
    pub modeling: ModelingOptions,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            num_phases: Some(4),
            phase_search: PhaseSearchOptions::default(),
            sampling: SamplingPlan::default(),
            modeling: ModelingOptions::default(),
        }
    }
}

/// Namespace for the training entry point.
#[derive(Debug, Clone, Copy)]
pub struct Opprox;

/// A trained OPPROX system for one application, ready to optimize any
/// production input. Serializable — the paper stores the equivalent as
/// pickled models loaded by the runtime scheduler script.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedOpprox {
    app_name: String,
    blocks: Vec<BlockDescriptor>,
    num_phases: usize,
    models: AppModels,
    /// Mean relative error of the golden-iteration estimator over the
    /// training inputs, measured by the post-fit self-check.
    golden_iter_rel_error: f64,
}

/// The measured outcome of running a plan for real.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredOutcome {
    /// Measured work-ratio speedup over the accurate run.
    pub speedup: f64,
    /// Measured QoS degradation.
    pub qos: f64,
    /// Outer-loop iterations of the approximate run.
    pub outer_iters: u64,
}

impl Opprox {
    /// Trains OPPROX on an application using its representative inputs.
    ///
    /// # Errors
    ///
    /// Propagates sampling and fitting errors.
    pub fn train(
        app: &dyn ApproxApp,
        options: &TrainingOptions,
    ) -> Result<TrainedOpprox, OpproxError> {
        Self::train_with(&EvalEngine::default(), app, options)
    }

    /// [`Opprox::train`] on a shared [`EvalEngine`]: phase-granularity
    /// probes, profiling runs, and the post-fit self-check all route
    /// through the engine's pool and execution cache. The self-check
    /// re-requests each training input's golden run — a guaranteed cache
    /// hit against the profiling batch — and records the
    /// golden-iteration estimator's mean relative error on
    /// [`TrainedOpprox::golden_iter_rel_error`].
    ///
    /// # Errors
    ///
    /// Propagates sampling and fitting errors.
    pub fn train_with(
        engine: &EvalEngine,
        app: &dyn ApproxApp,
        options: &TrainingOptions,
    ) -> Result<TrainedOpprox, OpproxError> {
        let inputs = app.representative_inputs();
        if inputs.is_empty() {
            return Err(OpproxError::InsufficientData(
                "application declares no representative inputs".into(),
            ));
        }
        let num_phases = match options.num_phases {
            Some(n) => n.max(1),
            None => find_phase_granularity_with(engine, app, &inputs[0], &options.phase_search)?,
        };
        let plan = SamplingPlan {
            num_phases,
            ..options.sampling
        };
        let data = collect_training_data_with(engine, app, &inputs, &plan)?;
        let mut trained = engine.telemetry().span("fit", || {
            Self::train_from_data_traced(
                app,
                &data,
                num_phases,
                &options.modeling,
                Some(engine.telemetry()),
            )
        })?;
        trained.golden_iter_rel_error = engine.stage("self-check", || {
            let mut total = 0.0f64;
            let mut checked = 0usize;
            for input in &inputs {
                // An input whose golden was dropped by degraded-mode
                // collection stays dropped here: skip it instead of
                // aborting a training run that already survived it.
                let golden = match engine.golden(app, input) {
                    Ok(g) => g,
                    Err(e) if crate::fault::degradable_kind(&e).is_some() => continue,
                    Err(e) => return Err(e),
                };
                let est = trained.estimate_golden_iters(input)?;
                let real = golden.outer_iters.max(1) as f64;
                total += (est as f64 - real).abs() / real;
                checked += 1;
            }
            Ok::<f64, OpproxError>(if checked == 0 {
                0.0
            } else {
                total / checked as f64
            })
        })?;
        Ok(trained)
    }

    /// Trains from already-collected data (used by the experiment harness
    /// to reuse one profiling pass across analyses).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn train_from_data(
        app: &dyn ApproxApp,
        data: &TrainingData,
        num_phases: usize,
        modeling: &ModelingOptions,
    ) -> Result<TrainedOpprox, OpproxError> {
        Self::train_from_data_traced(app, data, num_phases, modeling, None)
    }

    /// [`Opprox::train_from_data`] with an optional telemetry registry
    /// threaded through to [`AppModels::fit_traced`].
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn train_from_data_traced(
        app: &dyn ApproxApp,
        data: &TrainingData,
        num_phases: usize,
        modeling: &ModelingOptions,
        telemetry: Option<&crate::telemetry::Telemetry>,
    ) -> Result<TrainedOpprox, OpproxError> {
        let models = AppModels::fit_traced(data, num_phases, modeling, telemetry)?;
        let mut trained = TrainedOpprox {
            app_name: app.meta().name.clone(),
            blocks: app.meta().blocks.clone(),
            num_phases,
            models,
            golden_iter_rel_error: 0.0,
        };
        // Self-check against the recorded goldens (no extra executions):
        // how far off is the iteration estimator on the training inputs?
        if !data.goldens.is_empty() {
            let mut total = 0.0f64;
            for g in &data.goldens {
                let est = trained.estimate_golden_iters(&g.input)?;
                let real = g.outer_iters.max(1) as f64;
                total += (est as f64 - real).abs() / real;
            }
            trained.golden_iter_rel_error = total / data.goldens.len() as f64;
        }
        Ok(trained)
    }
}

impl TrainedOpprox {
    /// The application the system was trained for.
    pub fn app_name(&self) -> &str {
        &self.app_name
    }

    /// The number of phases used.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// The fitted model set.
    pub fn models(&self) -> &AppModels {
        &self.models
    }

    /// Statistics of the training run that fitted the models (counters
    /// and per-stage wall times; see [`crate::modeling::ModelingMetrics`]).
    /// Zeroed on systems restored from JSON — the metrics describe a
    /// training run, not the models, and are not serialized.
    pub fn modeling_metrics(&self) -> &crate::modeling::ModelingMetrics {
        self.models.metrics()
    }

    /// The approximable blocks the system was trained over.
    pub fn blocks(&self) -> &[BlockDescriptor] {
        &self.blocks
    }

    /// Mean relative error of the golden-iteration estimator over the
    /// training inputs, from the post-fit self-check (0.0 is perfect).
    pub fn golden_iter_rel_error(&self) -> f64 {
        self.golden_iter_rel_error
    }

    /// Estimates the accurate-run outer-loop iteration count for an input
    /// (the control-flow model family of the paper's Fig. 6).
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors.
    pub fn estimate_golden_iters(&self, input: &InputParams) -> Result<u64, OpproxError> {
        let accurate = LevelConfig::accurate(self.blocks.len());
        let pred = self.models.predict(input, 0, &accurate)?;
        Ok(pred.iters.round().max(1.0) as u64)
    }

    /// Heuristic phase-structured candidates: uniform levels confined to
    /// the final phase or final half, and per-block probes. All are
    /// subject to the same empirical validation as the model-driven
    /// plans.
    pub(crate) fn heuristic_candidates(
        &self,
        expected_iters: u64,
    ) -> Result<Vec<OptimizationPlan>, OpproxError> {
        let n = self.num_phases;
        let nb = self.blocks.len();
        let mut schedules: Vec<Vec<LevelConfig>> = Vec::new();

        let uniform = |level: u8| -> LevelConfig {
            LevelConfig::new(self.blocks.iter().map(|b| level.min(b.max_level)).collect())
        };
        // Final phase only, escalating uniform levels.
        for level in [1u8, 2, 3, 5] {
            let mut v = vec![LevelConfig::accurate(nb); n];
            v[n - 1] = uniform(level);
            schedules.push(v);
        }
        // Final half, gentle uniform levels.
        for level in [1u8, 2] {
            let mut v = vec![LevelConfig::accurate(nb); n];
            for slot in v.iter_mut().take(n).skip(n / 2) {
                *slot = uniform(level);
            }
            schedules.push(v);
        }
        // Per-block probes: one block at a moderate and at its maximum
        // level, (a) in the final half and (b) across the whole run.
        for b in 0..nb {
            for level in [2u8.min(self.blocks[b].max_level), self.blocks[b].max_level] {
                if level == 0 {
                    continue;
                }
                let cfg = LevelConfig::accurate(nb).with_level(b, level);
                let mut v = vec![LevelConfig::accurate(nb); n];
                for slot in v.iter_mut().take(n).skip(n / 2) {
                    *slot = cfg.clone();
                }
                schedules.push(v);
                schedules.push(vec![cfg; n]);
            }
        }

        let mut out = Vec::new();
        for v in schedules {
            let schedule = PhaseSchedule::new(v, expected_iters.max(1))?;
            if schedule.is_accurate() {
                continue;
            }
            out.push(OptimizationPlan {
                phases: Vec::new(),
                schedule,
                predicted_speedup: 1.0,
                predicted_qos: 0.0,
            });
        }
        Ok(out)
    }

    /// Structural variants of a plan used during validated optimization:
    /// halved levels, last-phase-only, and last-half-only schedules.
    pub(crate) fn plan_variants(
        &self,
        plan: &OptimizationPlan,
        expected_iters: u64,
    ) -> Result<Vec<OptimizationPlan>, OpproxError> {
        if plan.schedule.is_accurate() {
            return Ok(Vec::new());
        }
        let configs = plan.schedule.configs();
        let n = configs.len();
        let mut variants: Vec<Vec<LevelConfig>> = Vec::new();
        // Levels halved everywhere.
        variants.push(
            configs
                .iter()
                .map(|c| LevelConfig::new(c.levels().iter().map(|&l| l / 2).collect()))
                .collect(),
        );
        // Only the final phase keeps its configuration.
        if n > 1 {
            let mut v: Vec<LevelConfig> = vec![LevelConfig::accurate(self.blocks.len()); n];
            v[n - 1] = configs[n - 1].clone();
            variants.push(v);
            // Only the later half keeps its configuration.
            if n > 2 {
                let mut v: Vec<LevelConfig> = vec![LevelConfig::accurate(self.blocks.len()); n];
                for (p, slot) in v.iter_mut().enumerate().take(n).skip(n / 2) {
                    *slot = configs[p].clone();
                }
                variants.push(v);
            }
        }
        let mut out = Vec::new();
        for v in variants {
            let schedule = PhaseSchedule::new(v, expected_iters.max(1))?;
            if schedule.is_accurate() || schedule == plan.schedule {
                continue;
            }
            out.push(OptimizationPlan {
                phases: Vec::new(),
                schedule,
                predicted_speedup: plan.predicted_speedup,
                predicted_qos: plan.predicted_qos,
            });
        }
        Ok(out)
    }

    /// Runs the plan for real and measures the outcome.
    ///
    /// # Errors
    ///
    /// Propagates application runtime errors.
    pub fn evaluate(
        &self,
        app: &dyn ApproxApp,
        input: &InputParams,
        plan: &OptimizationPlan,
    ) -> Result<MeasuredOutcome, OpproxError> {
        self.evaluate_with(&EvalEngine::default(), app, input, plan)
    }

    /// [`TrainedOpprox::evaluate`] on a shared [`EvalEngine`]: both the
    /// golden run and the plan execution hit the engine's cache when the
    /// same configuration was measured before.
    ///
    /// # Errors
    ///
    /// Propagates application runtime errors.
    pub fn evaluate_with(
        &self,
        engine: &EvalEngine,
        app: &dyn ApproxApp,
        input: &InputParams,
        plan: &OptimizationPlan,
    ) -> Result<MeasuredOutcome, OpproxError> {
        let golden = engine.golden(app, input)?;
        // Re-anchor the schedule on the real golden iteration count.
        let schedule =
            PhaseSchedule::new(plan.schedule.configs().to_vec(), golden.outer_iters.max(1))?;
        let result = engine.run(app, input, &schedule)?;
        Ok(MeasuredOutcome {
            speedup: golden.speedup_over(&result),
            qos: app.qos_degradation(&golden, &result),
            outer_iters: result.outer_iters,
        })
    }

    /// Serializes the trained system to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::Serialization`] on encoder failure.
    pub fn to_json(&self) -> Result<String, OpproxError> {
        serde_json::to_string(self).map_err(|e| OpproxError::Serialization(e.to_string()))
    }

    /// Restores a trained system from JSON.
    ///
    /// Deliberately lenient: structurally valid JSON deserializes even
    /// when the model set is corrupt, so `opprox analyze` can lint broken
    /// artifacts and report *what* is wrong. Paths that go on to use the
    /// models should prefer [`TrainedOpprox::load`] or call
    /// [`TrainedOpprox::validate_integrity`] themselves.
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::Serialization`] on decoder failure.
    pub fn from_json(json: &str) -> Result<Self, OpproxError> {
        serde_json::from_str(json).map_err(|e| OpproxError::Serialization(e.to_string()))
    }

    /// Every corruption the Error-severity integrity audit finds in this
    /// trained system (A004 non-finite coefficients, A007 invalid
    /// confidence bands, A012 shape mismatches, including the
    /// descriptor/model block-count check). Each issue's
    /// [`IssueKind::rule_code`](crate::modeling::IssueKind::rule_code)
    /// names the `opprox analyze` rule it maps to; boundary enforcers
    /// like the serve reload audit use that to say *why* an artifact was
    /// rejected.
    pub fn integrity_issues(&self) -> Vec<crate::modeling::IntegrityIssue> {
        let mut issues = self.models.integrity_issues();
        if self.blocks.len() != self.models.num_blocks() {
            issues.insert(
                0,
                crate::modeling::IntegrityIssue {
                    kind: crate::modeling::IssueKind::ShapeMismatch,
                    location: "blocks".into(),
                    message: format!(
                        "{} block descriptors for models trained over {} blocks",
                        self.blocks.len(),
                        self.models.num_blocks()
                    ),
                },
            );
        }
        issues
    }

    /// Checks the trained system for corruption that would poison every
    /// downstream prediction: the Error-severity subset of the `opprox
    /// analyze` rules (A004 non-finite coefficients, A007 invalid
    /// confidence bands, A012 shape mismatches).
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::InvalidModel`] naming the first defects.
    pub fn validate_integrity(&self) -> Result<(), OpproxError> {
        let issues = self.integrity_issues();
        if issues.is_empty() {
            return Ok(());
        }
        let shown = issues
            .iter()
            .take(3)
            .map(|i| format!("{}: {}", i.location, i.message))
            .collect::<Vec<_>>()
            .join("; ");
        let suffix = if issues.len() > 3 {
            format!(" (and {} more)", issues.len() - 3)
        } else {
            String::new()
        };
        Err(OpproxError::InvalidModel(format!("{shown}{suffix}")))
    }

    /// Loads a trained system from a JSON file and rejects corrupt model
    /// sets at the boundary (see [`TrainedOpprox::validate_integrity`]).
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::Serialization`] when the file is unreadable
    /// or not valid JSON, and [`OpproxError::InvalidModel`] when the
    /// deserialized model set fails the integrity check.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, OpproxError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| OpproxError::Serialization(format!("reading {}: {e}", path.display())))?;
        let trained = Self::from_json(&json)?;
        trained.validate_integrity()?;
        Ok(trained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OptimizeRequest;
    use crate::spec::AccuracySpec;
    use opprox_apps::Pso;

    fn fast_options() -> TrainingOptions {
        TrainingOptions {
            num_phases: Some(2),
            sampling: SamplingPlan {
                num_phases: 2,
                sparse_samples: 10,
                whole_run_samples: 0,
                seed: 5,
            },
            ..TrainingOptions::default()
        }
    }

    #[test]
    fn train_optimize_evaluate_round_trip() {
        let app = Pso::new();
        let trained = Opprox::train(&app, &fast_options()).unwrap();
        assert_eq!(trained.app_name(), "PSO");
        assert_eq!(trained.num_phases(), 2);
        let input = InputParams::new(vec![20.0, 3.0]);
        let spec = AccuracySpec::new(20.0);
        let plan = OptimizeRequest::new(input.clone(), spec)
            .run(&trained)
            .unwrap()
            .plan;
        let outcome = trained.evaluate(&app, &input, &plan).unwrap();
        assert!(outcome.speedup > 0.0);
        assert!(outcome.qos.is_finite());
        assert!(trained.golden_iter_rel_error() >= 0.0);
        assert!(trained.golden_iter_rel_error().is_finite());
    }

    #[test]
    fn golden_iteration_estimate_is_sane() {
        let app = Pso::new();
        let trained = Opprox::train(&app, &fast_options()).unwrap();
        let input = InputParams::new(vec![16.0, 3.0]);
        let est = trained.estimate_golden_iters(&input).unwrap();
        let real = opprox_approx_rt::ApproxApp::golden(&app, &input)
            .unwrap()
            .outer_iters;
        // Convergence loops terminate on plateaus, so the estimator only
        // needs to be in the right ballpark (the optimizer re-anchors the
        // schedule on the real golden run before execution anyway).
        let rel = (est as f64 - real as f64).abs() / real as f64;
        assert!(rel < 0.5, "estimate {est} vs real {real}");
    }

    #[test]
    fn serde_round_trip_preserves_plans() {
        let app = Pso::new();
        let trained = Opprox::train(&app, &fast_options()).unwrap();
        let json = trained.to_json().unwrap();
        let back = TrainedOpprox::from_json(&json).unwrap();
        let input = InputParams::new(vec![16.0, 3.0]);
        let spec = AccuracySpec::new(10.0);
        let a = OptimizeRequest::new(input.clone(), spec)
            .run(&trained)
            .unwrap();
        let b = OptimizeRequest::new(input, spec).run(&back).unwrap();
        assert_eq!(a.plan.phases, b.plan.phases);
        assert_eq!(
            trained.golden_iter_rel_error().to_bits(),
            back.golden_iter_rel_error().to_bits()
        );
    }

    #[test]
    fn bad_json_is_reported() {
        assert!(matches!(
            TrainedOpprox::from_json("{not json"),
            Err(OpproxError::Serialization(_))
        ));
    }
}
