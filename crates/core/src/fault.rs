//! Deterministic fault injection and recovery for the evaluation pipeline.
//!
//! OPPROX's offline training phase runs thousands of real benchmark
//! executions; the paper's pipeline silently assumes every run returns a
//! finite QoS and completes. This module makes failure a first-class,
//! *enumerable* event:
//!
//! * [`FaultPlan`] — a seedable injection schedule. Every decision is a
//!   pure function of `(seed, cache-key digest, fault point, attempt)`;
//!   no wall clock, no global RNG. The same plan therefore injects the
//!   same faults in the same places across reruns and across any worker
//!   thread count.
//! * [`RecoveryPolicy`] — bounded retry with *accounted* (never slept)
//!   exponential backoff, an optional per-evaluation wall-clock budget,
//!   and quarantine of persistently failing `(input, schedule)` keys.
//! * [`RobustnessReport`] — a serializable ledger of everything injected,
//!   caught, retried, quarantined, and dropped, surfaced by
//!   `OptimizeRequest::run` and printed by the CLI. For a fixed
//!   [`FaultPlan`] the report is byte-identical across runs and thread
//!   counts (entries are kept in a canonical sort order).
//!
//! The four injectable fault classes mirror the ways a real benchmark
//! execution can go wrong: the app panics mid-run, hangs past its budget,
//! returns NaN/∞ QoS, or a corrupted result is about to poison the
//! execution cache. Failed attempts are never cached and never served;
//! see `EvalEngine` for the enforcement and `tests/loom.rs` (rule `C005`)
//! for the model-checked interleavings.

use crate::sync::{AtomicU64, Mutex, Ordering};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Named places in the evaluation pipeline where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultPoint {
    /// During the application execution itself.
    AppRun,
    /// Between a successful execution and its insertion into the
    /// execution cache (a would-be poisoned entry).
    CacheInsert,
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPoint::AppRun => write!(f, "app-run"),
            FaultPoint::CacheInsert => write!(f, "cache-insert"),
        }
    }
}

/// How an evaluation attempt failed (injected or genuine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// The application panicked; caught at the worker boundary.
    Panic,
    /// The attempt exceeded the per-evaluation time budget.
    Timeout,
    /// The result carried NaN or infinite QoS values.
    NonFiniteQos,
    /// The result was corrupted on the way into the execution cache and
    /// was rejected instead of stored.
    PoisonedResult,
    /// The key was already quarantined; the attempt was refused outright.
    Quarantined,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Timeout => write!(f, "timeout"),
            FailureKind::NonFiniteQos => write!(f, "non-finite QoS"),
            FailureKind::PoisonedResult => write!(f, "poisoned result"),
            FailureKind::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// SplitMix64 step — the same generator the vendored `rand` uses for
/// seeding, reused here as a keyed hash so injection decisions are pure
/// functions of their inputs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a unit-interval value in `[0, 1)` using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic, seedable fault-injection schedule.
///
/// Rates are probabilities in `[0, 1]` per *(evaluation key, attempt)*;
/// the decision for a given `(key, attempt)` never changes across runs or
/// thread counts. `fail_first_attempts` forces the first *n* attempts of
/// every evaluation to time out — a deterministic lever for tests that
/// need an exact failure schedule rather than a statistical one.
///
/// # Example
///
/// ```
/// use opprox_core::fault::FaultPlan;
///
/// let plan = FaultPlan::parse("seed=42,panic=0.2,timeout=0.1").unwrap();
/// let a = plan.decide(0xABCD, 0);
/// let b = plan.decide(0xABCD, 0);
/// assert_eq!(a, b); // same key + attempt → same decision, always
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    panic_rate: f64,
    timeout_rate: f64,
    nan_rate: f64,
    poison_rate: f64,
    fail_first_attempts: u32,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_rate: 0.0,
            timeout_rate: 0.0,
            nan_rate: 0.0,
            poison_rate: 0.0,
            fail_first_attempts: 0,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the injected app-run panic rate (clamped to `[0, 1]`).
    pub fn panics(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the synthetic timeout rate (clamped to `[0, 1]`).
    pub fn timeouts(mut self, rate: f64) -> Self {
        self.timeout_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the NaN/∞ QoS corruption rate (clamped to `[0, 1]`).
    pub fn non_finite(mut self, rate: f64) -> Self {
        self.nan_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the poisoned-cache-entry rate (clamped to `[0, 1]`).
    pub fn poisoned(mut self, rate: f64) -> Self {
        self.poison_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Forces the first `n` attempts of every evaluation to fail with a
    /// synthetic timeout, regardless of rates.
    pub fn fail_first_attempts(mut self, n: u32) -> Self {
        self.fail_first_attempts = n;
        self
    }

    /// Whether this plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.panic_rate > 0.0
            || self.timeout_rate > 0.0
            || self.nan_rate > 0.0
            || self.poison_rate > 0.0
            || self.fail_first_attempts > 0
    }

    /// Parses a CLI spec like `seed=42,panic=0.1,timeout=0.05,nan=0.05,
    /// poison=0.02,fail_first=1`. Every field is optional; unknown keys
    /// are rejected.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::seeded(0);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan field `{part}` is not `key=value`"))?;
            let bad = || format!("fault-plan field `{key}` has a non-numeric value `{value}`");
            match key.trim() {
                "seed" => plan.seed = value.trim().parse::<u64>().map_err(|_| bad())?,
                "panic" => plan = plan.panics(value.trim().parse::<f64>().map_err(|_| bad())?),
                "timeout" => plan = plan.timeouts(value.trim().parse::<f64>().map_err(|_| bad())?),
                "nan" => plan = plan.non_finite(value.trim().parse::<f64>().map_err(|_| bad())?),
                "poison" => plan = plan.poisoned(value.trim().parse::<f64>().map_err(|_| bad())?),
                "fail_first" => {
                    plan = plan.fail_first_attempts(value.trim().parse::<u32>().map_err(|_| bad())?)
                }
                other => {
                    return Err(format!(
                        "unknown fault-plan field `{other}` \
                         (expected seed/panic/timeout/nan/poison/fail_first)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// The injection decision for one attempt at the app-run fault point,
    /// plus the separate poisoning decision at the cache-insert point.
    ///
    /// Deterministic: depends only on the plan and `(key, attempt)`.
    pub fn decide(&self, key: u64, attempt: u32) -> Option<(FaultPoint, FailureKind)> {
        if attempt < self.fail_first_attempts {
            return Some((FaultPoint::AppRun, FailureKind::Timeout));
        }
        let roll = unit(splitmix64(
            self.seed ^ splitmix64(key) ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407),
        ));
        let mut edge = self.panic_rate;
        if roll < edge {
            return Some((FaultPoint::AppRun, FailureKind::Panic));
        }
        edge += self.timeout_rate;
        if roll < edge {
            return Some((FaultPoint::AppRun, FailureKind::Timeout));
        }
        edge += self.nan_rate;
        if roll < edge {
            return Some((FaultPoint::AppRun, FailureKind::NonFiniteQos));
        }
        // Poisoning fires *after* a successful execution, from an
        // independent roll at the cache-insert point.
        let poison_roll = unit(splitmix64(
            self.seed
                ^ splitmix64(key ^ 0x5851_F42D_4C95_7F2D)
                ^ u64::from(attempt).wrapping_mul(0x1405_7B7E_F767_814F),
        ));
        if poison_roll < self.poison_rate {
            return Some((FaultPoint::CacheInsert, FailureKind::PoisonedResult));
        }
        None
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} panic={} timeout={} nan={} poison={}",
            self.seed, self.panic_rate, self.timeout_rate, self.nan_rate, self.poison_rate
        )?;
        if self.fail_first_attempts > 0 {
            write!(f, " fail_first={}", self.fail_first_attempts)?;
        }
        Ok(())
    }
}

/// Bounded-retry and timeout policy for one evaluation.
///
/// Backoff is *accounted* — added to the robustness ledger as if it had
/// been slept — but never actually sleeps, so tests and model checks stay
/// fast and deterministic. An evaluation gets `1 + max_retries` attempts;
/// a key whose evaluation exhausts them is quarantined and refused
/// outright on resubmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries after the first failed attempt.
    pub max_retries: u32,
    /// Backoff accounted for retry `r` is `backoff_base_ms << r`.
    pub backoff_base_ms: u64,
    /// Per-evaluation wall-clock budget; `None` disables the real-time
    /// check (injected timeouts still fire).
    pub eval_timeout_ms: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_base_ms: 10,
            eval_timeout_ms: None,
        }
    }
}

impl RecoveryPolicy {
    /// Total attempts allowed per evaluation (`1 + max_retries`).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }
}

/// One injected fault, identified by the evaluation key digest it hit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Digest of the (app, input, schedule) cache key.
    pub key: u64,
    /// Attempt index (0-based) the fault fired on.
    pub attempt: u32,
    /// Where it fired.
    pub point: FaultPoint,
    /// What was injected.
    pub kind: FailureKind,
}

/// One training sample dropped by degraded-mode collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroppedSample {
    /// Phase index for per-phase sweep samples; `None` for whole-run
    /// samples and goldens.
    pub phase: Option<usize>,
    /// The approximation levels of the dropped configuration.
    pub levels: Vec<u8>,
    /// Whether this was a golden (fully accurate) run. Losing a golden
    /// drops the whole input: every QoS label depends on it.
    pub golden: bool,
    /// The terminal failure kind.
    pub kind: FailureKind,
}

impl DroppedSample {
    fn sort_key(&self) -> (u8, usize, Vec<u8>, FailureKind) {
        (
            u8::from(!self.golden),
            self.phase.map_or(usize::MAX, |p| p),
            self.levels.clone(),
            self.kind,
        )
    }
}

/// Serializable ledger of fault injection, recovery, and degradation.
///
/// For a fixed [`FaultPlan`] seed the report is **byte-identical** across
/// reruns and across worker thread counts: counters are order-independent
/// sums and the event/drop ledgers are kept in canonical sort order.
/// (Real wall-clock timeouts — `eval_timeout_ms` trips on a genuinely
/// slow app — are the one nondeterministic source, and they are excluded
/// from the determinism guarantee.)
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// The fault plan's seed, when injection was configured.
    pub fault_seed: Option<u64>,
    /// Faults injected by the plan.
    pub injected_faults: u64,
    /// Panics caught at the worker boundary (injected or genuine).
    pub panics_caught: u64,
    /// Attempts that exceeded the time budget (injected or genuine).
    pub timeouts: u64,
    /// Results rejected for NaN/∞ QoS values.
    pub non_finite_results: u64,
    /// Corrupted results rejected at the cache boundary.
    pub poisoned_rejected: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Exponential backoff accounted across all retries, in ms.
    pub backoff_ms_accounted: u64,
    /// Evaluations that exhausted every attempt.
    pub failed_evaluations: u64,
    /// Distinct keys quarantined after a failed evaluation.
    pub quarantined_keys: u64,
    /// Resubmissions refused because the key was quarantined.
    pub quarantine_hits: u64,
    /// Pool workers that died executing a job and were respawned.
    pub worker_respawns: u64,
    /// Inputs dropped wholesale because their golden run failed.
    pub dropped_inputs: u64,
    /// Training samples requested by the sampling plan.
    pub total_samples: u64,
    /// Training samples dropped, in canonical order.
    pub dropped_samples: Vec<DroppedSample>,
    /// Every injected fault, in canonical order.
    pub events: Vec<FaultEvent>,
}

impl RobustnessReport {
    /// Fraction of requested training samples that were dropped, in
    /// `[0, 1]`. Zero when nothing was requested.
    pub fn drop_rate(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.dropped_samples.len() as f64 / self.total_samples as f64
        }
    }

    /// Whether any degradation (drops, quarantines, failed evaluations,
    /// or dropped inputs) occurred.
    pub fn is_degraded(&self) -> bool {
        !self.dropped_samples.is_empty()
            || self.failed_evaluations > 0
            || self.dropped_inputs > 0
            || self.quarantined_keys > 0
    }

    /// Whether anything at all was observed (faults, retries, drops).
    pub fn has_activity(&self) -> bool {
        self.is_degraded()
            || self.injected_faults > 0
            || self.panics_caught > 0
            || self.timeouts > 0
            || self.non_finite_results > 0
            || self.poisoned_rejected > 0
            || self.retries > 0
            || self.worker_respawns > 0
    }
}

impl fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "robustness:")?;
        match self.fault_seed {
            Some(seed) => writeln!(
                f,
                " fault plan seed {seed}, {} faults injected",
                self.injected_faults
            )?,
            None => writeln!(f, " no fault plan configured")?,
        }
        writeln!(
            f,
            "  {} panics caught, {} timeouts, {} non-finite results, \
             {} poisoned entries rejected",
            self.panics_caught, self.timeouts, self.non_finite_results, self.poisoned_rejected
        )?;
        writeln!(
            f,
            "  {} retries ({} ms backoff accounted), {} worker respawns",
            self.retries, self.backoff_ms_accounted, self.worker_respawns
        )?;
        writeln!(
            f,
            "  {} evaluations failed, {} keys quarantined ({} quarantine hits)",
            self.failed_evaluations, self.quarantined_keys, self.quarantine_hits
        )?;
        writeln!(
            f,
            "  dropped {}/{} training samples ({:.1}% drop rate), {} inputs",
            self.dropped_samples.len(),
            self.total_samples,
            100.0 * self.drop_rate(),
            self.dropped_inputs
        )
    }
}

/// Classifies an evaluation error as degradable (the caller can drop the
/// affected sample/candidate and continue on the rest) or fatal (the
/// request itself is wrong — bad input, bad schedule — and must abort).
pub(crate) fn degradable_kind(e: &crate::error::OpproxError) -> Option<FailureKind> {
    match e {
        crate::error::OpproxError::EvaluationFailed { kind, .. } => Some(*kind),
        crate::error::OpproxError::Quarantined { .. } => Some(FailureKind::Quarantined),
        _ => None,
    }
}

/// Shared fault-injection and recovery state carried by an `EvalEngine`.
///
/// All interior state is behind the `crate::sync` primitives so the loom
/// build can model-check the quarantine/cache protocol.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: Option<FaultPlan>,
    pub(crate) policy: RecoveryPolicy,
    injected: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    non_finite: AtomicU64,
    poisoned: AtomicU64,
    retries: AtomicU64,
    backoff_ms: AtomicU64,
    failed_evals: AtomicU64,
    quarantine_hits: AtomicU64,
    respawns: AtomicU64,
    dropped_inputs: AtomicU64,
    total_samples: AtomicU64,
    /// Key digest → attempts exhausted; presence means quarantined.
    quarantine: Mutex<HashMap<u64, u32>>,
    events: Mutex<Vec<FaultEvent>>,
    drops: Mutex<Vec<DroppedSample>>,
}

impl FaultState {
    pub(crate) fn new(plan: Option<FaultPlan>, policy: RecoveryPolicy) -> Self {
        FaultState {
            plan,
            policy,
            injected: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            non_finite: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
            failed_evals: AtomicU64::new(0),
            quarantine_hits: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            dropped_inputs: AtomicU64::new(0),
            total_samples: AtomicU64::new(0),
            quarantine: Mutex::new(HashMap::new()),
            events: Mutex::new(Vec::new()),
            drops: Mutex::new(Vec::new()),
        }
    }

    /// Records an injected fault in the counters and the event ledger.
    pub(crate) fn record_injection(&self, event: FaultEvent) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.events.lock().expect("fault events lock").push(event);
    }

    pub(crate) fn count_failure(&self, kind: FailureKind) {
        let counter = match kind {
            FailureKind::Panic => &self.panics,
            FailureKind::Timeout => &self.timeouts,
            FailureKind::NonFiniteQos => &self.non_finite,
            FailureKind::PoisonedResult => &self.poisoned,
            FailureKind::Quarantined => &self.quarantine_hits,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one retry and its deterministic exponential backoff.
    pub(crate) fn account_retry(&self, retry_index: u32) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        let backoff = self
            .policy
            .backoff_base_ms
            .checked_shl(retry_index)
            .unwrap_or(u64::MAX);
        self.backoff_ms.fetch_add(backoff, Ordering::Relaxed);
    }

    /// Marks a key as quarantined after a fully failed evaluation.
    pub(crate) fn quarantine(&self, key: u64, attempts: u32) {
        self.failed_evals.fetch_add(1, Ordering::Relaxed);
        self.quarantine
            .lock()
            .expect("quarantine lock")
            .insert(key, attempts);
    }

    pub(crate) fn is_quarantined(&self, key: u64) -> bool {
        self.quarantine
            .lock()
            .expect("quarantine lock")
            .contains_key(&key)
    }

    pub(crate) fn record_respawn(&self) {
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_drop(&self, drop: DroppedSample) {
        if drop.golden {
            self.dropped_inputs.fetch_add(1, Ordering::Relaxed);
        }
        self.drops.lock().expect("fault drops lock").push(drop);
    }

    pub(crate) fn add_requested_samples(&self, n: u64) {
        self.total_samples.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshots the state into a canonical-order [`RobustnessReport`].
    pub(crate) fn report(&self) -> RobustnessReport {
        let mut events = self.events.lock().expect("fault events lock").clone();
        events.sort();
        let mut dropped_samples: Vec<DroppedSample> =
            self.drops.lock().expect("fault drops lock").clone();
        dropped_samples.sort_by_key(DroppedSample::sort_key);
        let quarantined_keys = self.quarantine.lock().expect("quarantine lock").len() as u64;
        RobustnessReport {
            fault_seed: self.plan.as_ref().map(FaultPlan::seed),
            injected_faults: self.injected.load(Ordering::Relaxed),
            panics_caught: self.panics.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            non_finite_results: self.non_finite.load(Ordering::Relaxed),
            poisoned_rejected: self.poisoned.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            backoff_ms_accounted: self.backoff_ms.load(Ordering::Relaxed),
            failed_evaluations: self.failed_evals.load(Ordering::Relaxed),
            quarantined_keys,
            quarantine_hits: self.quarantine_hits.load(Ordering::Relaxed),
            worker_respawns: self.respawns.load(Ordering::Relaxed),
            dropped_inputs: self.dropped_inputs.load(Ordering::Relaxed),
            total_samples: self.total_samples.load(Ordering::Relaxed),
            dropped_samples,
            events,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_field() {
        let plan = FaultPlan::parse("seed=42, panic=0.1,timeout=0.05,nan=0.2,poison=0.02").unwrap();
        assert_eq!(plan.seed(), 42);
        assert!(plan.is_active());
        let display = plan.to_string();
        assert!(display.contains("seed=42"), "{display}");
        assert!(display.contains("panic=0.1"), "{display}");
    }

    #[test]
    fn parse_rejects_unknown_and_malformed_fields() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("").unwrap().seed() == 0);
        assert!(!FaultPlan::parse("seed=7").unwrap().is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::seeded(9).panics(0.3).timeouts(0.2).poisoned(0.1);
        let mut decided = Vec::new();
        for key in 0..200u64 {
            for attempt in 0..3u32 {
                decided.push(plan.decide(key, attempt));
            }
        }
        let again: Vec<_> = (0..200u64)
            .flat_map(|key| (0..3u32).map(move |attempt| plan.decide(key, attempt)))
            .collect();
        assert_eq!(decided, again);
        let other = FaultPlan::seeded(10)
            .panics(0.3)
            .timeouts(0.2)
            .poisoned(0.1);
        let shifted: Vec<_> = (0..200u64)
            .flat_map(|key| (0..3u32).map(move |attempt| other.decide(key, attempt)))
            .collect();
        assert_ne!(decided, shifted, "different seeds must differ somewhere");
    }

    #[test]
    fn rates_partition_fault_kinds_roughly() {
        let plan = FaultPlan::seeded(3)
            .panics(0.25)
            .timeouts(0.25)
            .non_finite(0.25);
        let mut counts = HashMap::new();
        for key in 0..4000u64 {
            if let Some((_, kind)) = plan.decide(key, 0) {
                *counts.entry(kind).or_insert(0usize) += 1;
            }
        }
        for kind in [
            FailureKind::Panic,
            FailureKind::Timeout,
            FailureKind::NonFiniteQos,
        ] {
            let n = counts.get(&kind).copied().unwrap_or(0);
            assert!(
                (600..1400).contains(&n),
                "{kind:?} fired {n}/4000 times at rate 0.25"
            );
        }
    }

    #[test]
    fn fail_first_attempts_overrides_rates() {
        let plan = FaultPlan::seeded(1).fail_first_attempts(2);
        for key in [0u64, 77, u64::MAX] {
            assert_eq!(
                plan.decide(key, 0),
                Some((FaultPoint::AppRun, FailureKind::Timeout))
            );
            assert_eq!(
                plan.decide(key, 1),
                Some((FaultPoint::AppRun, FailureKind::Timeout))
            );
            assert_eq!(plan.decide(key, 2), None);
        }
    }

    #[test]
    fn report_is_canonical_and_serializable() {
        let state = FaultState::new(Some(FaultPlan::seeded(5)), RecoveryPolicy::default());
        // Insert events out of order; the snapshot must sort them.
        state.record_injection(FaultEvent {
            key: 9,
            attempt: 1,
            point: FaultPoint::AppRun,
            kind: FailureKind::Timeout,
        });
        state.record_injection(FaultEvent {
            key: 2,
            attempt: 0,
            point: FaultPoint::AppRun,
            kind: FailureKind::Panic,
        });
        state.count_failure(FailureKind::Panic);
        state.account_retry(0);
        state.account_retry(1);
        state.quarantine(2, 3);
        state.add_requested_samples(10);
        state.record_drop(DroppedSample {
            phase: Some(1),
            levels: vec![2, 0],
            golden: false,
            kind: FailureKind::Panic,
        });
        state.record_drop(DroppedSample {
            phase: None,
            levels: vec![0, 0],
            golden: true,
            kind: FailureKind::Timeout,
        });
        let report = state.report();
        assert_eq!(report.events[0].key, 2, "events sorted by key");
        assert!(report.dropped_samples[0].golden, "goldens sort first");
        assert_eq!(report.retries, 2);
        assert_eq!(report.backoff_ms_accounted, 10 + 20);
        assert_eq!(report.quarantined_keys, 1);
        assert!((report.drop_rate() - 0.2).abs() < 1e-12);
        assert!(report.is_degraded());
        assert!(report.has_activity());
        let json = serde_json::to_string(&report).unwrap();
        let back: RobustnessReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let text = report.to_string();
        assert!(text.contains("quarantined"), "{text}");
        assert!(text.contains("drop rate"), "{text}");
    }

    #[test]
    fn empty_report_has_no_activity() {
        let report = RobustnessReport::default();
        assert!(!report.is_degraded());
        assert!(!report.has_activity());
        assert_eq!(report.drop_rate(), 0.0);
    }
}
