//! `opprox serve`: a long-running optimization service.
//!
//! The offline pipeline is the control plane — train once, write a
//! [`TrainedOpprox`] artifact — and this module is the data plane: a
//! dependency-free daemon speaking the versioned line-delimited JSON
//! protocol of [`crate::api`] over TCP. The design goals, in order:
//!
//! 1. **One public protocol.** Every request enters as an
//!    [`ApiRequest`] and leaves as an [`ApiResponse`];
//!    [`crate::request::OptimizeRequest`] is only the internal executor.
//! 2. **Hot reload without dropped requests.** Artifacts live behind an
//!    atomically swapped `Arc` snapshot: a reload installs a new model
//!    map while in-flight requests keep the snapshot they started with
//!    ([`ServeState::handle_with_models`] is the seam that makes this
//!    provable under a [`ManualClock`](crate::telemetry::ManualClock)).
//!    A file that fails to parse never replaces a good artifact.
//! 3. **Admission control.** The request queue is bounded; past the
//!    bound, optimize/predict requests are shed immediately with the
//!    `overloaded` wire code instead of queueing unboundedly. `health`
//!    is exempt so liveness probes still answer under overload.
//! 4. **Batched execution.** A single dispatcher drains the queue in
//!    batches and fans each batch out on the shared
//!    [`WorkPool`](crate::pool::WorkPool); `predict` frames carry many
//!    configurations and are answered by the batched predictor in one
//!    flat model pass.
//!
//! Model-only optimize replies are memoized in a sharded plan cache
//! keyed by `(app, control-flow class)` — the pair that selects which
//! per-class, per-phase model set answers — so hot inputs skip the
//! Algorithm-2 solve entirely. Reloads bump a generation counter that is
//! part of the cache key, so a swap invalidates every stale plan at
//! once.

use crate::api::{
    AdaptiveParams, AdaptiveReply, ApiRequest, ApiResponse, HealthReply, MetricsReply,
    OptimizeParams, OptimizeReply, PredictParams, PredictReply, PredictionReply,
};
use crate::control::{ControlOptions, DriftInjection};
use crate::error::OpproxError;
use crate::evaluator::EvalEngine;
use crate::fault::RecoveryPolicy;
use crate::optimizer::Conservatism;
use crate::pipeline::TrainedOpprox;
use crate::pool::WorkPool;
use crate::request::{OptimizePath, OptimizeRequest};
use crate::spec::AccuracySpec;
use crate::telemetry::{Clock, Telemetry};
use opprox_approx_rt::{InputParams, LevelConfig};
use serde::Serialize as _;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};

/// Configuration of a serving instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads of the request pool.
    pub threads: usize,
    /// Admission bound: optimize/predict requests arriving while this
    /// many are already queued are shed with the `overloaded` code.
    pub queue_limit: usize,
    /// Most requests the dispatcher hands to the pool as one batch.
    pub batch_max: usize,
    /// Artifact mtime poll interval for hot reload, in milliseconds.
    pub reload_poll_ms: u64,
    /// Shards of the model-only plan cache.
    pub cache_shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_limit: 64,
            batch_max: 8,
            reload_poll_ms: 200,
            cache_shards: 8,
        }
    }
}

/// One loaded artifact: the trained system plus the file identity the
/// reload poller compares against.
#[derive(Debug)]
pub struct ModelEntry {
    /// The trained system.
    pub trained: Arc<TrainedOpprox>,
    /// Artifact path, when file-backed (reloadable).
    pub path: Option<PathBuf>,
    /// (mtime, len) of the file at load time.
    file_id: Option<(SystemTime, u64)>,
    /// Generation stamp of this load (monotonic across the store).
    pub generation: u64,
}

type ModelMap = BTreeMap<String, Arc<ModelEntry>>;

/// Key of the sharded plan cache. The `(app, class)` pair picks the
/// shard — it names the model set that answers — and the remaining
/// fields (input bits, budget bits, conservatism, generation) make the
/// entry exact. A reload bumps `generation`, invalidating stale plans.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    app: String,
    class: usize,
    generation: u64,
    input_bits: Vec<u64>,
    budget_bits: u64,
    point: bool,
}

/// One queued request and the channel its reply goes back on.
struct Job {
    req: ApiRequest,
    tx: mpsc::Sender<ApiResponse>,
}

/// The outcome of [`ServeState::submit`].
pub enum Submission {
    /// Admission control refused the request; reply immediately.
    Shed(ApiResponse),
    /// The request was queued; the reply arrives on this receiver.
    Queued(mpsc::Receiver<ApiResponse>),
}

/// The shared state of a serving instance: model store, request queue,
/// plan cache, and telemetry registry. [`Server`] wraps it with the TCP
/// accept/dispatch/reload threads; tests drive it in-process.
pub struct ServeState {
    options: ServeOptions,
    models: Mutex<Arc<ModelMap>>,
    generation: AtomicU64,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    cache: Vec<Mutex<HashMap<PlanKey, OptimizeReply>>>,
    tele: Telemetry,
    start_micros: u64,
    /// The rendered diagnostic of the most recent refused reload
    /// (`"A004 models.class[0]...: coefficient 2 is NaN"`), kept so
    /// operators can see *why* the swap was refused — the event ledger
    /// only carries the rule code numerically.
    last_reload_rejection: Mutex<Option<String>>,
}

impl ServeState {
    /// A fresh state with a monotonic wall clock.
    pub fn new(options: ServeOptions) -> Self {
        Self::build(options, Telemetry::new())
    }

    /// A fresh state timed by `clock` — tests inject a
    /// [`ManualClock`](crate::telemetry::ManualClock) so spans, uptime,
    /// and the exported report are deterministic.
    pub fn with_clock(options: ServeOptions, clock: Arc<dyn Clock>) -> Self {
        Self::build(options, Telemetry::with_clock(clock))
    }

    fn build(options: ServeOptions, tele: Telemetry) -> Self {
        let start_micros = tele.clock().now_micros();
        let shards = options.cache_shards.max(1);
        ServeState {
            options,
            models: Mutex::new(Arc::new(BTreeMap::new())),
            generation: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            tele,
            start_micros,
            last_reload_rejection: Mutex::new(None),
        }
    }

    /// The rendered diagnostic of the most recent refused hot reload,
    /// `None` while every poll has accepted (or found nothing to do).
    pub fn last_reload_rejection(&self) -> Option<String> {
        self.last_reload_rejection
            .lock()
            .expect("reload rejection lock")
            .clone()
    }

    /// The instance configuration.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The telemetry registry (server-level counters, gauges, spans).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Current artifact generation (0 before the first load).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// `true` once a shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a shutdown: no new work is admitted, the dispatcher
    /// drains and exits. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    // -- model store --------------------------------------------------

    /// The current model map. In-flight requests hold the snapshot they
    /// started with, so a concurrent reload never changes — or frees —
    /// the models under them.
    pub fn snapshot(&self) -> Arc<ModelMap> {
        Arc::clone(&self.models.lock().expect("model store lock"))
    }

    /// Loads an artifact file and installs it under its app name.
    ///
    /// # Errors
    ///
    /// Propagates read/parse failures; the store is unchanged on error.
    pub fn load_artifact(&self, path: impl AsRef<Path>) -> Result<String, OpproxError> {
        let path = path.as_ref();
        let trained = TrainedOpprox::load(path)?;
        Ok(self.install(trained, Some(path.to_path_buf())))
    }

    /// Installs a trained system (optionally file-backed for hot
    /// reload), atomically swapping the model map. Entries are keyed by
    /// the lowercased app name — lookups are case-insensitive, matching
    /// `opprox_apps::registry::by_name`. Returns the key.
    pub fn install(&self, trained: TrainedOpprox, path: Option<PathBuf>) -> String {
        let app = trained.app_name().to_ascii_lowercase();
        let file_id = path.as_deref().and_then(file_id);
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let entry = Arc::new(ModelEntry {
            trained: Arc::new(trained),
            path,
            file_id,
            generation,
        });
        let mut store = self.models.lock().expect("model store lock");
        let mut next: ModelMap = (**store).clone();
        next.insert(app.clone(), entry);
        self.tele.set_gauge("serve.models", next.len() as f64);
        *store = Arc::new(next);
        app
    }

    /// One hot-reload poll: every file-backed entry whose (mtime, len)
    /// changed is audited and — only if clean — swapped in. The audit is
    /// the Error-severity rule set a corrupt candidate could violate:
    /// the single-artifact integrity rules (A004/A007/A012) plus the
    /// cross-artifact coverage check between the candidate's level space
    /// and the plans currently served from the schedule cache (X006). A
    /// rejected candidate leaves the old artifact installed, increments
    /// `serve.reload.error` and `serve.reload.reject[CODE]`, and every
    /// poll outcome lands in the `serve.reload` event ledger with the
    /// rejecting rule encoded numerically (see [`rule_field`]). Returns
    /// how many entries were swapped.
    pub fn poll_reload(&self) -> usize {
        let snap = self.snapshot();
        let mut swapped = 0;
        for (app, entry) in snap.iter() {
            let Some(path) = entry.path.as_deref() else {
                continue;
            };
            if file_id(path) == entry.file_id {
                continue;
            }
            match self.audit_candidate(app, entry, path) {
                Ok(trained) => {
                    self.install(trained, Some(path.to_path_buf()));
                    self.tele.incr("serve.reload");
                    self.tele.event(
                        "serve.reload",
                        &[
                            ("accepted", 1.0),
                            ("generation", self.generation() as f64),
                            ("rule", 0.0),
                        ],
                    );
                    swapped += 1;
                }
                Err(rejection) => {
                    self.tele.incr("serve.reload.error");
                    self.tele.incr(&format!(
                        "serve.reload.reject[{}]",
                        rejection.code.unwrap_or("unreadable")
                    ));
                    self.tele.event(
                        "serve.reload",
                        &[
                            ("accepted", 0.0),
                            ("generation", entry.generation as f64),
                            ("rule", rule_field(rejection.code)),
                        ],
                    );
                    *self
                        .last_reload_rejection
                        .lock()
                        .expect("reload rejection lock") = Some(match rejection.code {
                        Some(code) => format!("{code} {}", rejection.message),
                        None => rejection.message,
                    });
                }
            }
        }
        swapped
    }

    /// The reload audit: loads the candidate artifact leniently, runs the
    /// Error-severity integrity rules, and cross-checks the candidate's
    /// level space against every plan the schedule cache is serving for
    /// this app's current generation. Returns the audited system or the
    /// first rejection (rule code + diagnostic).
    fn audit_candidate(
        &self,
        app: &str,
        entry: &ModelEntry,
        path: &Path,
    ) -> Result<TrainedOpprox, ReloadRejection> {
        let json = std::fs::read_to_string(path).map_err(|e| ReloadRejection {
            code: None,
            message: format!("reading {}: {e}", path.display()),
        })?;
        let trained = TrainedOpprox::from_json(&json).map_err(|e| ReloadRejection {
            code: None,
            message: e.to_string(),
        })?;
        if let Some(issue) = trained.integrity_issues().into_iter().next() {
            return Err(ReloadRejection {
                code: Some(issue.kind.rule_code()),
                message: format!("{}: {}", issue.location, issue.message),
            });
        }
        // Cross-artifact coverage (rule X006): every (block, level) a
        // cached plan of the serving generation selects must stay inside
        // the candidate's trained level space, or in-flight clients
        // would hold schedules the new model never covered.
        let blocks = trained.blocks();
        for shard in &self.cache {
            let shard = shard.lock().expect("plan cache lock");
            for (key, reply) in shard.iter() {
                if key.app != app || key.generation != entry.generation {
                    continue;
                }
                for (p, levels) in reply.levels.iter().enumerate() {
                    if levels.len() != blocks.len() {
                        return Err(ReloadRejection {
                            code: Some("X006"),
                            message: format!(
                                "cached plan phase {p} sets {} blocks but the \
                                 candidate trains {}",
                                levels.len(),
                                blocks.len()
                            ),
                        });
                    }
                    for (b, &level) in levels.iter().enumerate() {
                        if level > u64::from(blocks[b].max_level) {
                            return Err(ReloadRejection {
                                code: Some("X006"),
                                message: format!(
                                    "cached plan phase {p} sets block {b} to level \
                                     {level}, above the candidate's max level {}",
                                    blocks[b].max_level
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(trained)
    }

    // -- request handling ---------------------------------------------

    /// Handles a request against the current model snapshot.
    pub fn handle(&self, req: &ApiRequest) -> ApiResponse {
        self.handle_with_models(&self.snapshot(), req)
    }

    /// Handles a request against an explicit model snapshot. The server
    /// takes one snapshot per batch; tests take one, trigger a reload,
    /// and then complete the "in-flight" request against the old
    /// snapshot to prove reloads never drop running work.
    pub fn handle_with_models(&self, models: &ModelMap, req: &ApiRequest) -> ApiResponse {
        self.tele.incr("serve.requests");
        let result = match req {
            ApiRequest::Optimize(p) => {
                self.tele.incr("serve.optimize");
                self.tele
                    .span("serve.optimize", || self.handle_optimize(models, p))
            }
            ApiRequest::Adaptive(p) => {
                self.tele.incr("serve.adaptive");
                self.tele
                    .span("serve.adaptive", || self.handle_adaptive(models, p))
            }
            ApiRequest::Predict(p) => {
                self.tele.incr("serve.predict");
                self.tele
                    .span("serve.predict", || self.handle_predict(models, p))
            }
            ApiRequest::Health => {
                self.tele.incr("serve.health");
                Ok(self.handle_health(models))
            }
            ApiRequest::Metrics => Ok(self.handle_metrics()),
            ApiRequest::Shutdown => {
                self.begin_shutdown();
                Ok(ApiResponse::Shutdown)
            }
        };
        match result {
            Ok(resp) => resp,
            Err(e) => {
                self.tele.incr("serve.errors");
                ApiResponse::from_error(&e)
            }
        }
    }

    fn entry<'m>(
        &self,
        models: &'m ModelMap,
        app: &str,
    ) -> Result<&'m Arc<ModelEntry>, OpproxError> {
        models
            .get(&app.to_ascii_lowercase())
            .ok_or_else(|| OpproxError::UnknownApp {
                given: app.to_string(),
                available: models.keys().cloned().collect::<Vec<_>>().join(", "),
            })
    }

    fn handle_optimize(
        &self,
        models: &ModelMap,
        p: &OptimizeParams,
    ) -> Result<ApiResponse, OpproxError> {
        let entry = self.entry(models, &p.app)?;
        let trained = &entry.trained;
        let input = InputParams::new(p.input.clone());
        let spec = AccuracySpec::try_new(p.budget)?;
        let class = trained.models().control_flow().predict(&input)?;

        let cache_key = (!p.validate).then(|| PlanKey {
            app: p.app.to_ascii_lowercase(),
            class,
            generation: entry.generation,
            input_bits: p.input.iter().map(|x| x.to_bits()).collect(),
            budget_bits: p.budget.to_bits(),
            point: p.point,
        });
        if let Some(key) = &cache_key {
            if let Some(mut hit) = self.cache_get(key) {
                self.tele.incr("serve.cache.hit");
                hit.cached = true;
                return Ok(ApiResponse::Optimize(hit));
            }
            self.tele.incr("serve.cache.miss");
        }

        let conservatism = if p.point {
            Conservatism::Point
        } else {
            Conservatism::Band
        };
        let outcome = if p.validate {
            // Validation executes the application for real; each request
            // gets a private single-threaded engine (the concurrency
            // budget belongs to the pool above us) carrying the
            // request's own recovery knobs.
            let app = opprox_apps::registry::by_name(&p.app).ok_or_else(|| {
                OpproxError::Unavailable(format!(
                    "app `{}` has a trained artifact but no executable implementation",
                    p.app
                ))
            })?;
            let mut policy = RecoveryPolicy::default();
            if let Some(r) = p.max_retries {
                policy.max_retries = u32::try_from(r).unwrap_or(u32::MAX);
            }
            if let Some(b) = p.backoff_ms {
                policy.backoff_base_ms = b;
            }
            if let Some(t) = p.eval_timeout_ms {
                policy.eval_timeout_ms = Some(t);
            }
            let engine = EvalEngine::with_recovery(1, policy);
            let mut req = OptimizeRequest::new(input, spec)
                .conservatism(conservatism)
                .validate_on(app.as_ref())
                .engine(&engine);
            if let Some(n) = p.validation_budget {
                req = req.validation_budget(n as usize);
            }
            req.run(trained)?
        } else {
            OptimizeRequest::new(input, spec)
                .conservatism(conservatism)
                .run(trained)?
        };

        let reply = OptimizeReply {
            app: p.app.clone(),
            generation: entry.generation,
            path: match outcome.path {
                OptimizePath::ModelOnly => "model_only",
                OptimizePath::Validated => "validated",
                OptimizePath::AccurateFallback => "accurate_fallback",
                OptimizePath::Adaptive => "adaptive",
            }
            .to_string(),
            levels: outcome
                .plan
                .schedule
                .configs()
                .iter()
                .map(|c| c.levels().iter().map(|&l| u64::from(l)).collect())
                .collect(),
            predicted_speedup: outcome.plan.predicted_speedup,
            predicted_qos: outcome.plan.predicted_qos,
            candidates_tried: outcome.candidates_tried as u64,
            cached: false,
            measured: outcome.measured.map(|m| crate::api::MeasuredReply {
                speedup: m.speedup,
                qos: m.qos,
                outer_iters: m.outer_iters,
            }),
        };
        if let Some(key) = cache_key {
            self.cache_put(key, reply.clone());
        }
        Ok(ApiResponse::Optimize(reply))
    }

    fn handle_adaptive(
        &self,
        models: &ModelMap,
        p: &AdaptiveParams,
    ) -> Result<ApiResponse, OpproxError> {
        let entry = self.entry(models, &p.app)?;
        let trained = &entry.trained;
        let input = InputParams::new(p.input.clone());
        let spec = AccuracySpec::try_new(p.budget)?;

        // The controller executes the application for real, so — like
        // the validated optimize path — each request gets a private
        // single-threaded engine carrying its own recovery knobs.
        let app = opprox_apps::registry::by_name(&p.app).ok_or_else(|| {
            OpproxError::Unavailable(format!(
                "app `{}` has a trained artifact but no executable implementation",
                p.app
            ))
        })?;
        let mut policy = RecoveryPolicy::default();
        if let Some(r) = p.max_retries {
            policy.max_retries = u32::try_from(r).unwrap_or(u32::MAX);
        }
        if let Some(b) = p.backoff_ms {
            policy.backoff_base_ms = b;
        }
        if let Some(t) = p.eval_timeout_ms {
            policy.eval_timeout_ms = Some(t);
        }
        let engine = EvalEngine::with_recovery(1, policy);

        let mut options = ControlOptions {
            resegment: p.resegment,
            ..ControlOptions::default()
        };
        if let Some(t) = p.tolerance {
            options.drift_tolerance = t;
        }
        if let (Some(phase), Some(factor)) = (p.drift_phase, p.drift_factor) {
            options.inject = Some(DriftInjection {
                phase: usize::try_from(phase).unwrap_or(usize::MAX),
                factor,
                block: p
                    .drift_block
                    .map(|b| usize::try_from(b).unwrap_or(usize::MAX)),
            });
        }

        let outcome = OptimizeRequest::new(input, spec)
            .validate_on(app.as_ref())
            .engine(&engine)
            .adaptive(options)
            .run(trained)?;
        let control = outcome
            .control
            .expect("adaptive path always carries its control summary");
        Ok(ApiResponse::Adaptive(AdaptiveReply {
            app: p.app.clone(),
            generation: entry.generation,
            levels: outcome
                .plan
                .schedule
                .configs()
                .iter()
                .map(|c| c.levels().iter().map(|&l| u64::from(l)).collect())
                .collect(),
            predicted_speedup: outcome.plan.predicted_speedup,
            predicted_qos: outcome.plan.predicted_qos,
            steps: control.steps.len() as u64,
            replans: control.replans as u64,
            resegmented: control.resegmented,
            degraded: control.degraded,
            budget_reclaimed: control.budget_reclaimed,
            budget_redistributed: control.budget_redistributed,
            measured: outcome.measured.map(|m| crate::api::MeasuredReply {
                speedup: m.speedup,
                qos: m.qos,
                outer_iters: m.outer_iters,
            }),
        }))
    }

    fn handle_predict(
        &self,
        models: &ModelMap,
        p: &PredictParams,
    ) -> Result<ApiResponse, OpproxError> {
        let entry = self.entry(models, &p.app)?;
        let trained = &entry.trained;
        let phase = usize::try_from(p.phase).unwrap_or(usize::MAX);
        if phase >= trained.num_phases() {
            return Err(OpproxError::BadRequest(format!(
                "phase {} out of range (app `{}` has {} phases)",
                p.phase,
                p.app,
                trained.num_phases()
            )));
        }
        let num_blocks = trained.blocks().len();
        let configs = p
            .configs
            .iter()
            .map(|row| {
                if row.len() != num_blocks {
                    return Err(OpproxError::BadRequest(format!(
                        "config has {} levels, app `{}` has {} blocks",
                        row.len(),
                        p.app,
                        num_blocks
                    )));
                }
                let levels = row
                    .iter()
                    .map(|&l| {
                        u8::try_from(l).map_err(|_| {
                            OpproxError::BadRequest(format!("level {l} exceeds the u8 range"))
                        })
                    })
                    .collect::<Result<Vec<u8>, OpproxError>>()?;
                Ok(LevelConfig::new(levels))
            })
            .collect::<Result<Vec<_>, OpproxError>>()?;
        let input = InputParams::new(p.input.clone());
        let class = trained.models().control_flow().predict(&input)?;
        // One flat pass through the batched predictor for the whole
        // frame — bit-identical to per-config scalar calls.
        let predictions = trained.models().predict_batch(&input, phase, &configs)?;
        Ok(ApiResponse::Predict(PredictReply {
            app: p.app.clone(),
            generation: entry.generation,
            class: class as u64,
            predictions: predictions
                .into_iter()
                .map(|pr| PredictionReply {
                    speedup: pr.speedup,
                    qos: pr.qos,
                    iters: pr.iters,
                })
                .collect(),
        }))
    }

    fn handle_health(&self, models: &ModelMap) -> ApiResponse {
        ApiResponse::Health(HealthReply {
            apps: models.keys().cloned().collect(),
            generation: self.generation(),
            queue_depth: self.queue.lock().expect("queue lock").len() as u64,
            queue_limit: self.options.queue_limit as u64,
            threads: self.options.threads as u64,
            uptime_micros: self
                .tele
                .clock()
                .now_micros()
                .saturating_sub(self.start_micros),
        })
    }

    fn handle_metrics(&self) -> ApiResponse {
        ApiResponse::Metrics(MetricsReply {
            report: self.tele.report().to_value(),
        })
    }

    // -- plan cache ---------------------------------------------------

    /// Shard index from the cache-defining pair `(app, class)`: FNV-1a
    /// over the app name folded with the class id.
    fn shard_of(&self, app: &str, class: usize) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in app.bytes().chain([class as u8]) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.cache.len() as u64) as usize
    }

    fn cache_get(&self, key: &PlanKey) -> Option<OptimizeReply> {
        self.cache[self.shard_of(&key.app, key.class)]
            .lock()
            .expect("plan cache lock")
            .get(key)
            .cloned()
    }

    fn cache_put(&self, key: PlanKey, reply: OptimizeReply) {
        let shard = self.shard_of(&key.app, key.class);
        self.cache[shard]
            .lock()
            .expect("plan cache lock")
            .insert(key, reply);
    }

    // -- queue + dispatch ---------------------------------------------

    /// Admission control: queues the request (reply arrives on the
    /// returned receiver) or sheds it immediately with an `overloaded`
    /// error frame. `health` is exempt from the bound so liveness
    /// probes answer even under overload; `metrics` and `shutdown` are
    /// control-plane and are expected to go through
    /// [`ServeState::handle`] directly.
    pub fn submit(&self, req: ApiRequest) -> Submission {
        if self.is_shutdown() {
            return Submission::Shed(ApiResponse::from_error(&OpproxError::Unavailable(
                "server is shutting down".to_string(),
            )));
        }
        let exempt = matches!(req, ApiRequest::Health);
        let mut queue = self.queue.lock().expect("queue lock");
        let depth = queue.len();
        if !exempt && depth >= self.options.queue_limit {
            drop(queue);
            self.tele.incr("serve.shed");
            return Submission::Shed(ApiResponse::from_error(&OpproxError::Overloaded {
                depth,
                limit: self.options.queue_limit,
            }));
        }
        self.tele.incr("serve.admitted");
        let (tx, rx) = mpsc::channel();
        queue.push_back(Job { req, tx });
        drop(queue);
        self.queue_cv.notify_all();
        Submission::Queued(rx)
    }

    /// Drains up to `batch_max` queued requests and answers them as one
    /// pool batch. Returns how many were processed (0 when the queue
    /// was empty). The dispatcher thread loops this; deterministic
    /// tests call it directly.
    pub fn drain_once(&self, pool: &WorkPool, last_shed: &mut u64) -> usize {
        let batch: Vec<Job> = {
            let mut queue = self.queue.lock().expect("queue lock");
            let n = queue.len().min(self.options.batch_max.max(1));
            queue.drain(..n).collect()
        };
        if batch.is_empty() {
            return 0;
        }
        let depth = self.queue.lock().expect("queue lock").len();
        self.tele.set_gauge("serve.queue_depth", depth as f64);
        // Admission-control ledger: any sheds since the last batch are
        // recorded as one event from this (orchestrating) thread. Lint
        // A018 cross-checks these events against the `serve.shed`
        // counter in exported traces.
        let shed_total = self.tele.counter_value("serve.shed");
        if shed_total > *last_shed {
            self.tele.event(
                "serve.admission",
                &[
                    ("shed", (shed_total - *last_shed) as f64),
                    ("queue_limit", self.options.queue_limit as f64),
                    ("queue_depth", depth as f64),
                ],
            );
            *last_shed = shed_total;
        }
        let models = self.snapshot();
        // `Job` carries an `mpsc::Sender` (`!Sync`), so hand the pool a
        // view of just the requests.
        let reqs: Vec<&ApiRequest> = batch.iter().map(|job| &job.req).collect();
        let replies = pool.run(reqs.len(), |i| self.handle_with_models(&models, reqs[i]));
        for (job, reply) in batch.iter().zip(replies) {
            // A receiver dropped mid-flight (client hung up) is fine.
            let _ = job.tx.send(reply);
        }
        batch.len()
    }

    /// The dispatcher loop: drain batches until shutdown, then fail any
    /// still-queued requests with `unavailable` instead of leaving
    /// their clients hanging.
    pub fn dispatch_loop(&self, pool: &WorkPool) {
        let mut last_shed = 0u64;
        loop {
            {
                let queue = self.queue.lock().expect("queue lock");
                if queue.is_empty() {
                    if self.is_shutdown() {
                        break;
                    }
                    let (_guard, _timeout) = self
                        .queue_cv
                        .wait_timeout(queue, Duration::from_millis(50))
                        .expect("queue lock");
                    // Re-check from the top with the lock released.
                    continue;
                }
            }
            self.drain_once(pool, &mut last_shed);
        }
        let leftovers: Vec<Job> = {
            let mut queue = self.queue.lock().expect("queue lock");
            queue.drain(..).collect()
        };
        for job in leftovers {
            let _ = job
                .tx
                .send(ApiResponse::from_error(&OpproxError::Unavailable(
                    "server stopped before the request ran".to_string(),
                )));
        }
    }

    /// Parses one wire line and answers it: control-plane frames
    /// (`metrics`, `shutdown`) and parse failures are answered inline,
    /// everything else goes through admission control and the pool.
    /// Returns the response wire line (no trailing newline).
    pub fn serve_line(&self, line: &str) -> String {
        let req = match ApiRequest::parse(line) {
            Ok(req) => req,
            Err(e) => {
                self.tele.incr("serve.errors");
                return ApiResponse::from_error(&e).to_wire();
            }
        };
        match req {
            ApiRequest::Metrics | ApiRequest::Shutdown => self.handle(&req).to_wire(),
            _ => match self.submit(req) {
                Submission::Shed(resp) => resp.to_wire(),
                Submission::Queued(rx) => match rx.recv() {
                    Ok(resp) => resp.to_wire(),
                    Err(_) => ApiResponse::from_error(&OpproxError::Unavailable(
                        "server stopped before the reply was produced".to_string(),
                    ))
                    .to_wire(),
                },
            },
        }
    }
}

/// Why a reload candidate was refused: the rejecting rule code (`None`
/// when the file never deserialized far enough to audit) and the
/// rendered diagnostic. The code lands in the `serve.reload.reject[..]`
/// counter name and, numerically encoded, in the `serve.reload` event.
struct ReloadRejection {
    code: Option<&'static str>,
    message: String,
}

/// Numeric encoding of a rule code for event fields (events carry only
/// `f64`s): the series letter maps to a thousands digit (A = 1000,
/// C = 2000, X = 3000) and the code's number is added, so `A004` is
/// `1004.0` and `X006` is `3006.0`. `0.0` means "no rule" — the
/// candidate was unreadable or not valid JSON.
fn rule_field(code: Option<&str>) -> f64 {
    let Some(code) = code else {
        return 0.0;
    };
    let series = match code.as_bytes().first() {
        Some(b'A') => 1000.0,
        Some(b'C') => 2000.0,
        Some(b'X') => 3000.0,
        _ => 9000.0,
    };
    series + code[1..].parse::<f64>().unwrap_or(0.0)
}

/// (mtime, len) of a file, `None` when it cannot be stat'ed.
fn file_id(path: &Path) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// The running TCP server: listener, dispatcher, and reload threads
/// around a shared [`ServeState`].
pub struct Server {
    state: Arc<ServeState>,
    addr: SocketAddr,
    listener: Option<std::thread::JoinHandle<()>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    reloader: Option<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds the configured address and starts the accept, dispatch,
    /// and hot-reload threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(state: Arc<ServeState>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&state.options().addr)?;
        let addr = listener.local_addr()?;
        let connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let dispatcher = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let pool = WorkPool::new(state.options().threads);
                state.dispatch_loop(&pool);
            })
        };
        let reloader = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let step = Duration::from_millis(20);
                let mut elapsed = Duration::ZERO;
                let period = Duration::from_millis(state.options().reload_poll_ms.max(1));
                while !state.is_shutdown() {
                    std::thread::sleep(step);
                    elapsed += step;
                    if elapsed >= period {
                        elapsed = Duration::ZERO;
                        state.poll_reload();
                    }
                }
            })
        };
        let accept_handle = {
            let state = Arc::clone(&state);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if state.is_shutdown() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let state = Arc::clone(&state);
                    let handle = std::thread::spawn(move || handle_connection(&state, stream));
                    connections
                        .lock()
                        .expect("connection list lock")
                        .push(handle);
                }
            })
        };
        Ok(Server {
            state,
            addr,
            listener: Some(accept_handle),
            dispatcher: Some(dispatcher),
            reloader: Some(reloader),
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Blocks until a shutdown is requested (a `shutdown` frame, or
    /// [`ServeState::begin_shutdown`] from another thread), then joins
    /// every server thread.
    pub fn run_until_shutdown(mut self) {
        while !self.state.is_shutdown() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.stop();
    }

    /// Requests a shutdown and joins every server thread. Idempotent.
    pub fn stop(&mut self) {
        self.state.begin_shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.connections.lock().expect("connection list lock");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reloader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection: line in, line out, until EOF or shutdown. Reads use
/// a short timeout so the thread notices a shutdown even while idle.
fn handle_connection(state: &ServeState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    // Frames are tiny; without TCP_NODELAY, Nagle + delayed ACKs add
    // tens of milliseconds to every request/reply exchange.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let reply = state.serve_line(&line);
                if writer.write_all(reply.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    break;
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A partial line (no newline yet) stays in `line` and the
                // next read keeps appending to it.
                if state.is_shutdown() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Opprox, TrainingOptions};
    use crate::sampling::SamplingPlan;
    use opprox_apps::Pso;

    fn trained() -> TrainedOpprox {
        let options = TrainingOptions {
            num_phases: Some(2),
            sampling: SamplingPlan {
                num_phases: 2,
                sparse_samples: 8,
                whole_run_samples: 0,
                seed: 5,
            },
            ..TrainingOptions::default()
        };
        Opprox::train(&Pso::new(), &options).unwrap()
    }

    fn state_with_pso() -> ServeState {
        let state = ServeState::new(ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        });
        state.install(trained(), None);
        state
    }

    #[test]
    fn optimize_and_predict_answer_in_process() {
        let state = state_with_pso();
        let req = ApiRequest::Optimize(OptimizeParams::new("pso", vec![16.0, 3.0], 10.0));
        let ApiResponse::Optimize(reply) = state.handle(&req) else {
            panic!("expected an optimize reply");
        };
        assert_eq!(reply.app, "pso");
        assert_eq!(reply.path, "model_only");
        assert_eq!(reply.generation, 1);
        assert!(!reply.cached);

        let ApiResponse::Predict(pred) = state.handle(&ApiRequest::Predict(PredictParams {
            app: "pso".to_string(),
            input: vec![16.0, 3.0],
            phase: 0,
            configs: vec![vec![0, 0, 0], vec![1, 2, 1]],
        })) else {
            panic!("expected a predict reply");
        };
        assert_eq!(pred.predictions.len(), 2);
        assert!(pred.predictions[1].speedup >= 1.0 || pred.predictions[1].speedup > 0.0);
    }

    #[test]
    fn plan_cache_hits_on_repeat_and_misses_after_reload() {
        let state = state_with_pso();
        let req = ApiRequest::Optimize(OptimizeParams::new("pso", vec![16.0, 3.0], 10.0));
        let first = state.handle(&req);
        let second = state.handle(&req);
        let (ApiResponse::Optimize(a), ApiResponse::Optimize(b)) = (first, second) else {
            panic!("expected optimize replies");
        };
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(a.levels, b.levels);
        assert_eq!(state.telemetry().counter_value("serve.cache.hit"), 1);
        // A reload bumps the generation, invalidating the cached plan.
        state.install(trained(), None);
        let ApiResponse::Optimize(c) = state.handle(&req) else {
            panic!("expected an optimize reply");
        };
        assert!(!c.cached);
        assert_eq!(c.generation, 2);
    }

    #[test]
    fn unknown_app_and_bad_phase_map_to_wire_errors() {
        let state = state_with_pso();
        let resp = state.handle(&ApiRequest::Optimize(OptimizeParams::new(
            "nope",
            vec![1.0],
            5.0,
        )));
        let ApiResponse::Error { code, message } = resp else {
            panic!("expected an error");
        };
        assert_eq!(code, crate::api::WireCode::UnknownApp);
        assert!(message.contains("pso"));

        let resp = state.handle(&ApiRequest::Predict(PredictParams {
            app: "pso".to_string(),
            input: vec![16.0, 3.0],
            phase: 99,
            configs: vec![],
        }));
        let ApiResponse::Error { code, .. } = resp else {
            panic!("expected an error");
        };
        assert_eq!(code, crate::api::WireCode::BadRequest);
    }

    #[test]
    fn admission_bound_sheds_and_health_is_exempt() {
        let state = ServeState::new(ServeOptions {
            threads: 1,
            queue_limit: 2,
            ..ServeOptions::default()
        });
        state.install(trained(), None);
        let mk = || ApiRequest::Optimize(OptimizeParams::new("pso", vec![16.0, 3.0], 10.0));
        let q1 = state.submit(mk());
        let q2 = state.submit(mk());
        assert!(matches!(q1, Submission::Queued(_)));
        assert!(matches!(q2, Submission::Queued(_)));
        let Submission::Shed(resp) = state.submit(mk()) else {
            panic!("third request must be shed");
        };
        assert!(resp.is_error());
        assert_eq!(state.telemetry().counter_value("serve.shed"), 1);
        // Health still gets through.
        assert!(matches!(
            state.submit(ApiRequest::Health),
            Submission::Queued(_)
        ));
        // Drain the queue and check the admission event was recorded.
        let pool = WorkPool::new(1);
        let mut last_shed = 0;
        while state.drain_once(&pool, &mut last_shed) > 0 {}
        let report = state.telemetry().report();
        assert_eq!(report.events_named("serve.admission").len(), 1);
        assert_eq!(report.counter("serve.shed"), 1);
    }

    /// Rewrites every value stored under `key`, anywhere in the tree
    /// (local copy of the testutil mutator — core cannot depend on
    /// opprox-testutil without a dev-dependency cycle).
    fn rewrite_key(value: &mut serde::value::Value, key: &str, to: &serde::value::Value) {
        use serde::value::Value;
        match value {
            Value::Object(entries) => {
                for (k, v) in entries.iter_mut() {
                    if k == key {
                        *v = to.clone();
                    } else {
                        rewrite_key(v, key, to);
                    }
                }
            }
            Value::Array(items) => {
                for item in items.iter_mut() {
                    rewrite_key(item, key, to);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn reload_audit_rejects_corrupt_and_uncovering_candidates() {
        use crate::telemetry::ManualClock;
        use serde::value::{Number, Value};

        let dir = std::env::temp_dir().join(format!("opprox-serve-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let healthy = trained();
        std::fs::write(&path, healthy.to_json().unwrap()).unwrap();

        let clock = Arc::new(ManualClock::default());
        let state = ServeState::with_clock(
            ServeOptions {
                threads: 1,
                ..ServeOptions::default()
            },
            clock.clone(),
        );
        state.load_artifact(&path).unwrap();
        assert_eq!(state.generation(), 1);

        // Populate the plan cache so the X006 cross-check has a served
        // schedule to pair with reload candidates.
        let req = ApiRequest::Optimize(OptimizeParams::new("pso", vec![16.0, 3.0], 10.0));
        let ApiResponse::Optimize(reply) = state.handle(&req) else {
            panic!("expected an optimize reply");
        };
        assert!(
            reply.levels.iter().flatten().any(|&l| l > 0),
            "the cached plan must approximate something: {:?}",
            reply.levels
        );

        // 1. Integrity rejection (A007): a negative band half-width
        //    survives the JSON text round-trip, so it can reach disk.
        let mut v = serde_json::parse_value(&healthy.to_json().unwrap()).unwrap();
        let mut poisoned = false;
        rewrite_first(&mut v, "half_width", &mut poisoned);
        assert!(poisoned, "fixture must carry a confidence band");
        std::fs::write(&path, v.render_compact()).unwrap();
        clock.advance_micros(10);
        assert_eq!(
            state.poll_reload(),
            0,
            "the corrupt candidate must not swap"
        );
        assert_eq!(state.generation(), 1, "the old artifact stays installed");
        assert_eq!(
            state.telemetry().counter_value("serve.reload.reject[A007]"),
            1
        );
        let msg = state.last_reload_rejection().expect("diagnostic kept");
        assert!(msg.starts_with("A007 "), "{msg}");
        assert!(msg.contains("half-width"), "{msg}");

        // 2. Coverage rejection (X006): a structurally clean candidate
        //    whose level space no longer covers the cached plan.
        let mut v = serde_json::parse_value(&healthy.to_json().unwrap()).unwrap();
        rewrite_key(&mut v, "max_level", &Value::Number(Number::U64(0)));
        std::fs::write(&path, v.render_compact()).unwrap();
        clock.advance_micros(10);
        assert_eq!(state.poll_reload(), 0);
        assert_eq!(
            state.telemetry().counter_value("serve.reload.reject[X006]"),
            1
        );
        let msg = state.last_reload_rejection().expect("diagnostic kept");
        assert!(msg.starts_with("X006 "), "{msg}");

        // 3. A healthy rewrite passes the audit, swaps, and closes the
        //    ledger with an acceptance event.
        std::fs::write(&path, healthy.to_json().unwrap()).unwrap();
        clock.advance_micros(10);
        assert_eq!(state.poll_reload(), 1);
        assert_eq!(state.generation(), 2);
        let report = state.telemetry().report();
        let events = report.events_named("serve.reload");
        assert_eq!(events.len(), 3, "one ledger event per poll outcome");
        assert_eq!(events[0].field("accepted"), Some(0.0));
        assert_eq!(
            events[0].field("rule"),
            Some(1007.0),
            "A007 encodes as 1007"
        );
        assert_eq!(
            events[1].field("rule"),
            Some(3006.0),
            "X006 encodes as 3006"
        );
        assert_eq!(events[2].field("accepted"), Some(1.0));
        assert_eq!(events[2].field("rule"), Some(0.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Sets the first `half_width` in the tree to `-2.5` (tree order).
    fn rewrite_first(value: &mut serde::value::Value, key: &str, done: &mut bool) {
        use serde::value::{Number, Value};
        match value {
            Value::Object(entries) => {
                for (k, v) in entries.iter_mut() {
                    if *done {
                        return;
                    }
                    if k == key {
                        *v = Value::Number(Number::F64(-2.5));
                        *done = true;
                        return;
                    }
                    rewrite_first(v, key, done);
                }
            }
            Value::Array(items) => {
                for item in items.iter_mut() {
                    if *done {
                        return;
                    }
                    rewrite_first(item, key, done);
                }
            }
            _ => {}
        }
    }
}
