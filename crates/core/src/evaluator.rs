//! The shared parallel evaluation engine — the single path through which
//! every real execution of an [`ApproxApp`] flows.
//!
//! The paper's profiling jobs run on a SLURM cluster and are embarrassingly
//! parallel; its online search re-executes many identical configurations
//! (goldens for every candidate validation, repeated probe settings across
//! budgets). [`EvalEngine`] reproduces both halves of that economics in
//! process:
//!
//! * **Parallel batches.** [`EvalEngine::run_batch`] executes a batch of
//!   `(input, schedule)` jobs on a bounded work-stealing thread pool, and
//!   assembles the results in **submission order**, so anything derived
//!   from a batch (training data, oracle sweeps) is bit-identical to a
//!   sequential collection regardless of thread count.
//! * **Execution cache.** Results are memoized on
//!   `(app, input, schedule)`. Benchmark applications are deterministic by
//!   contract, so a cached [`RunResult`] is indistinguishable from a fresh
//!   execution. Repeated goldens and re-probed configurations become cache
//!   hits instead of work.
//! * **Metrics.** The engine counts executions, cache hits, and work
//!   units, and records wall time per pipeline stage; [`EvalMetrics`] is
//!   surfaced through `core::report` and printed by the CLI.

use crate::error::OpproxError;
use crate::pool::WorkPool;
use crate::sync::{AtomicU64, Mutex, Ordering};
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Identity of one real execution: application, input, and schedule.
///
/// Inputs are keyed on the exact bit patterns of their parameters
/// (`f64::to_bits`), so `-0.0` and `0.0` — which can produce different
/// control flow in an application — are distinct keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    app: String,
    input_bits: Vec<u64>,
    phase_levels: Vec<Vec<u8>>,
    expected_iters: u64,
}

impl CacheKey {
    fn new(app: &dyn ApproxApp, input: &InputParams, schedule: &PhaseSchedule) -> Self {
        CacheKey {
            app: app.meta().name.clone(),
            input_bits: input.values().iter().map(|v| v.to_bits()).collect(),
            phase_levels: schedule
                .configs()
                .iter()
                .map(|c| c.levels().to_vec())
                .collect(),
            expected_iters: schedule.expected_iters(),
        }
    }
}

/// Wall time and execution count attributed to one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Stage name (e.g. `granularity`, `profiling`, `validation`).
    pub name: String,
    /// Real executions performed while the stage ran.
    pub executions: u64,
    /// Cache hits served while the stage ran.
    pub cache_hits: u64,
    /// Wall-clock milliseconds spent in the stage.
    pub wall_ms: f64,
}

/// A point-in-time snapshot of an engine's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalMetrics {
    /// Real application executions performed.
    pub executions: u64,
    /// Requests served from the execution cache (including duplicate
    /// submissions within one batch).
    pub cache_hits: u64,
    /// Total abstract work units across all real executions.
    pub total_work_units: u64,
    /// Per-stage wall time and execution counts, in first-use order.
    pub stages: Vec<StageMetrics>,
}

impl EvalMetrics {
    /// Fraction of requests served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.executions + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "evaluation: {} executions, {} cache hits ({:.1}% hit rate), {} work units",
            self.executions,
            self.cache_hits,
            100.0 * self.hit_rate(),
            self.total_work_units
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  stage {:<12} {:>6} exec {:>6} hits {:>10.1} ms",
                s.name, s.executions, s.cache_hits, s.wall_ms
            )?;
        }
        Ok(())
    }
}

/// The shared evaluation engine: bounded thread pool, execution cache,
/// and metrics. Cheap to share by reference across a whole pipeline run;
/// all interior state is synchronized.
///
/// # Example
///
/// ```
/// use opprox_core::evaluator::EvalEngine;
/// use opprox_apps::Pso;
/// use opprox_approx_rt::InputParams;
///
/// let engine = EvalEngine::new(2);
/// let app = Pso::new();
/// let input = InputParams::new(vec![12.0, 2.0]);
/// let first = engine.golden(&app, &input).unwrap();
/// let again = engine.golden(&app, &input).unwrap(); // served from cache
/// assert_eq!(first.work, again.work);
/// let m = engine.metrics();
/// assert_eq!((m.executions, m.cache_hits), (1, 1));
/// ```
pub struct EvalEngine {
    threads: usize,
    cache: Mutex<HashMap<CacheKey, Arc<RunResult>>>,
    executions: AtomicU64,
    cache_hits: AtomicU64,
    total_work: AtomicU64,
    stages: Mutex<Vec<StageMetrics>>,
}

impl Default for EvalEngine {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        EvalEngine::new(threads)
    }
}

impl fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalEngine")
            .field("threads", &self.threads)
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl EvalEngine {
    /// Creates an engine with a bounded pool of `threads` workers
    /// (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        EvalEngine {
            threads: threads.max(1),
            cache: Mutex::new(HashMap::new()),
            executions: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            total_work: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
        }
    }

    /// The configured worker-pool bound.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes (or recalls) one run of `app` on `input` under `schedule`.
    ///
    /// # Errors
    ///
    /// Propagates application runtime errors. Failed runs are never
    /// cached.
    pub fn run(
        &self,
        app: &dyn ApproxApp,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<Arc<RunResult>, OpproxError> {
        let key = CacheKey::new(app, input, schedule);
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let result = Arc::new(app.run(input, schedule)?);
        self.executions.fetch_add(1, Ordering::Relaxed);
        self.total_work.fetch_add(result.work, Ordering::Relaxed);
        self.cache
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_insert_with(|| Arc::clone(&result));
        Ok(result)
    }

    /// Executes (or recalls) the fully accurate run for `input`.
    ///
    /// # Errors
    ///
    /// Propagates application runtime errors.
    pub fn golden(
        &self,
        app: &dyn ApproxApp,
        input: &InputParams,
    ) -> Result<Arc<RunResult>, OpproxError> {
        let schedule = PhaseSchedule::accurate(app.meta().num_blocks());
        self.run(app, input, &schedule)
    }

    /// Executes a batch of jobs on the worker pool and returns the
    /// results in **submission order**.
    ///
    /// Duplicate jobs (by cache key) are executed once; the extra
    /// submissions — and any jobs already in the cache — are counted as
    /// cache hits. Because every application is deterministic and results
    /// are assembled into pre-assigned slots, the returned vector is
    /// bit-identical to running the jobs sequentially in submission
    /// order, for any thread count.
    ///
    /// # Errors
    ///
    /// If any job fails, returns the error of the earliest-submitted
    /// failing job.
    pub fn run_batch(
        &self,
        app: &dyn ApproxApp,
        jobs: &[(InputParams, PhaseSchedule)],
    ) -> Result<Vec<Arc<RunResult>>, OpproxError> {
        // Resolve each submission to a cached result or a unique pending
        // execution; duplicates alias the first occurrence.
        enum Slot {
            Cached(Arc<RunResult>),
            Pending(usize),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<(CacheKey, &InputParams, &PhaseSchedule)> = Vec::new();
        let mut seen: HashMap<CacheKey, usize> = HashMap::new();
        let mut hits = 0u64;
        {
            let cache = self.cache.lock().expect("cache lock");
            for (input, schedule) in jobs {
                let key = CacheKey::new(app, input, schedule);
                if let Some(hit) = cache.get(&key) {
                    hits += 1;
                    slots.push(Slot::Cached(Arc::clone(hit)));
                    continue;
                }
                match seen.entry(key.clone()) {
                    Entry::Occupied(e) => {
                        hits += 1;
                        slots.push(Slot::Pending(*e.get()));
                    }
                    Entry::Vacant(e) => {
                        e.insert(pending.len());
                        slots.push(Slot::Pending(pending.len()));
                        pending.push((key, input, schedule));
                    }
                }
            }
        }
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);

        let results = self.execute_pending(app, &pending)?;

        {
            let mut cache = self.cache.lock().expect("cache lock");
            for ((key, _, _), result) in pending.iter().zip(results.iter()) {
                cache.insert(key.clone(), Arc::clone(result));
            }
        }

        Ok(slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Cached(r) => r,
                Slot::Pending(i) => Arc::clone(&results[i]),
            })
            .collect())
    }

    /// Runs the de-duplicated pending jobs on a work-stealing pool of
    /// scoped threads (see [`WorkPool`]) and returns their results in job
    /// order.
    fn execute_pending(
        &self,
        app: &dyn ApproxApp,
        pending: &[(CacheKey, &InputParams, &PhaseSchedule)],
    ) -> Result<Vec<Arc<RunResult>>, OpproxError> {
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        let outcomes = WorkPool::new(self.threads).run(pending.len(), |i| {
            let (_, input, schedule) = pending[i];
            app.run(input, schedule)
        });

        let mut results = Vec::with_capacity(pending.len());
        for outcome in outcomes {
            let result = outcome.map_err(OpproxError::from)?;
            self.executions.fetch_add(1, Ordering::Relaxed);
            self.total_work.fetch_add(result.work, Ordering::Relaxed);
            results.push(Arc::new(result));
        }
        Ok(results)
    }

    /// Runs `f`, attributing its wall time and the executions and cache
    /// hits it causes to the named pipeline stage. Repeated stages
    /// accumulate.
    pub fn stage<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let execs_before = self.executions.load(Ordering::Relaxed);
        let hits_before = self.cache_hits.load(Ordering::Relaxed);
        let start = Instant::now();
        let out = f();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let executions = self.executions.load(Ordering::Relaxed) - execs_before;
        let cache_hits = self.cache_hits.load(Ordering::Relaxed) - hits_before;
        let mut stages = self.stages.lock().expect("stage lock");
        match stages.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.executions += executions;
                s.cache_hits += cache_hits;
                s.wall_ms += wall_ms;
            }
            None => stages.push(StageMetrics {
                name: name.to_string(),
                executions,
                cache_hits,
                wall_ms,
            }),
        }
        out
    }

    /// Snapshot of the engine's counters.
    pub fn metrics(&self) -> EvalMetrics {
        EvalMetrics {
            executions: self.executions.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            total_work_units: self.total_work.load(Ordering::Relaxed),
            stages: self.stages.lock().expect("stage lock").clone(),
        }
    }

    /// Number of distinct executions currently memoized.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::config::sample_configs;
    use opprox_approx_rt::LevelConfig;
    use opprox_apps::Pso;

    fn app() -> Pso {
        Pso::new()
    }

    fn input() -> InputParams {
        InputParams::new(vec![12.0, 2.0])
    }

    fn schedules(n: usize) -> Vec<PhaseSchedule> {
        sample_configs(&app().meta().blocks, n, 9)
            .into_iter()
            .map(PhaseSchedule::constant)
            .collect()
    }

    #[test]
    fn run_caches_identical_requests() {
        let engine = EvalEngine::new(2);
        let app = app();
        let schedule = PhaseSchedule::constant(LevelConfig::new(vec![1, 0, 0]));
        let a = engine.run(&app, &input(), &schedule).unwrap();
        let b = engine.run(&app, &input(), &schedule).unwrap();
        assert_eq!(a.output, b.output);
        let m = engine.metrics();
        assert_eq!(m.executions, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.total_work_units, a.work);
        assert_eq!(engine.cached_results(), 1);
    }

    #[test]
    fn distinct_schedules_do_not_collide() {
        let engine = EvalEngine::new(2);
        let app = app();
        for s in schedules(4) {
            engine.run(&app, &input(), &s).unwrap();
        }
        let m = engine.metrics();
        assert_eq!(m.executions, 4);
        assert_eq!(m.cache_hits, 0);
    }

    #[test]
    fn batch_deduplicates_and_counts_hits() {
        let engine = EvalEngine::new(4);
        let app = app();
        let s = schedules(2);
        // One warm entry, then a batch with that entry, a fresh one, and a
        // duplicate submission of the fresh one.
        engine.run(&app, &input(), &s[0]).unwrap();
        let jobs = vec![
            (input(), s[0].clone()),
            (input(), s[1].clone()),
            (input(), s[1].clone()),
        ];
        let results = engine.run_batch(&app, &jobs).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[1].output, results[2].output);
        let m = engine.metrics();
        assert_eq!(m.executions, 2, "warm run + one fresh batch execution");
        assert_eq!(m.cache_hits, 2, "warm entry + duplicate submission");
    }

    #[test]
    fn batch_order_matches_sequential_execution() {
        let app = app();
        let jobs: Vec<(InputParams, PhaseSchedule)> =
            schedules(6).into_iter().map(|s| (input(), s)).collect();
        let sequential: Vec<RunResult> = jobs.iter().map(|(i, s)| app.run(i, s).unwrap()).collect();
        for threads in [1, 2, 8] {
            let engine = EvalEngine::new(threads);
            let parallel = engine.run_batch(&app, &jobs).unwrap();
            for (p, s) in parallel.iter().zip(sequential.iter()) {
                assert_eq!(p.as_ref(), s, "{threads} threads");
            }
        }
    }

    #[test]
    fn batch_errors_surface_earliest_failure() {
        let engine = EvalEngine::new(2);
        let app = app();
        let good = PhaseSchedule::constant(LevelConfig::new(vec![1, 0, 0]));
        let bad = PhaseSchedule::constant(LevelConfig::new(vec![99, 99, 99]));
        let jobs = vec![(input(), good), (input(), bad)];
        assert!(engine.run_batch(&app, &jobs).is_err());
    }

    #[test]
    fn stages_accumulate_time_and_counts() {
        let engine = EvalEngine::new(2);
        let app = app();
        let s = schedules(1).remove(0);
        engine.stage("probe", || engine.run(&app, &input(), &s).unwrap());
        engine.stage("probe", || engine.run(&app, &input(), &s).unwrap());
        let m = engine.metrics();
        assert_eq!(m.stages.len(), 1);
        assert_eq!(m.stages[0].name, "probe");
        assert_eq!(m.stages[0].executions, 1);
        assert_eq!(m.stages[0].cache_hits, 1);
        assert!(m.stages[0].wall_ms >= 0.0);
    }

    #[test]
    fn metrics_render_and_serialize() {
        let engine = EvalEngine::new(1);
        let app = app();
        engine.stage("golden", || engine.golden(&app, &input()).unwrap());
        engine.golden(&app, &input()).unwrap();
        let m = engine.metrics();
        let text = m.to_string();
        assert!(text.contains("1 executions"), "{text}");
        assert!(text.contains("1 cache hits"), "{text}");
        assert!(text.contains("golden"), "{text}");
        let json = serde_json::to_string(&m).unwrap();
        let back: EvalMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn golden_signs_distinguish_inputs() {
        // -0.0 and 0.0 must key differently (bit-pattern identity).
        let engine = EvalEngine::new(1);
        let app = app();
        engine
            .golden(&app, &InputParams::new(vec![12.0, 2.0]))
            .unwrap();
        let before = engine.metrics().executions;
        engine
            .golden(&app, &InputParams::new(vec![12.0 + 0.0, 2.0]))
            .unwrap();
        assert_eq!(engine.metrics().executions, before, "same bits must hit");
    }
}
