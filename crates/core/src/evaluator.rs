//! The shared parallel evaluation engine — the single path through which
//! every real execution of an [`ApproxApp`] flows.
//!
//! The paper's profiling jobs run on a SLURM cluster and are embarrassingly
//! parallel; its online search re-executes many identical configurations
//! (goldens for every candidate validation, repeated probe settings across
//! budgets). [`EvalEngine`] reproduces both halves of that economics in
//! process:
//!
//! * **Parallel batches.** [`EvalEngine::run_batch`] executes a batch of
//!   `(input, schedule)` jobs on a bounded work-stealing thread pool, and
//!   assembles the results in **submission order**, so anything derived
//!   from a batch (training data, oracle sweeps) is bit-identical to a
//!   sequential collection regardless of thread count.
//! * **Execution cache.** Results are memoized on
//!   `(app, input, schedule)`. Benchmark applications are deterministic by
//!   contract, so a cached [`RunResult`] is indistinguishable from a fresh
//!   execution. Repeated goldens and re-probed configurations become cache
//!   hits instead of work. The cache is split into [`CACHE_SHARDS`]
//!   independently locked shards selected by the key's stable FNV-1a
//!   digest, so concurrent lookups and insert-backs on different keys do
//!   not serialize on one global lock (rule `C006` in the
//!   `opprox-analyze` registry).
//! * **Metrics.** The engine counts executions, cache hits, and work
//!   units, and records wall time per pipeline stage; [`EvalMetrics`] is
//!   surfaced through `core::report` and printed by the CLI.

use crate::error::OpproxError;
use crate::fault::{
    FailureKind, FaultEvent, FaultPlan, FaultPoint, FaultState, RecoveryPolicy, RobustnessReport,
};
use crate::pool::WorkPool;
use crate::sync::{AtomicU64, Mutex, Ordering};
use crate::telemetry::{Clock, Telemetry, TelemetryReport};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::{
    run_with_timeout, ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError,
};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Identity of one real execution: application, input, and schedule.
///
/// Inputs are keyed on the exact bit patterns of their parameters
/// (`f64::to_bits`), so `-0.0` and `0.0` — which can produce different
/// control flow in an application — are distinct keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    app: String,
    input_bits: Vec<u64>,
    phase_levels: Vec<Vec<u8>>,
    expected_iters: u64,
}

impl CacheKey {
    fn new(app: &dyn ApproxApp, input: &InputParams, schedule: &PhaseSchedule) -> Self {
        CacheKey {
            app: app.meta().name.clone(),
            input_bits: input.values().iter().map(|v| v.to_bits()).collect(),
            phase_levels: schedule
                .configs()
                .iter()
                .map(|c| c.levels().to_vec())
                .collect(),
            expected_iters: schedule.expected_iters(),
        }
    }

    /// A stable 64-bit digest of the key (FNV-1a), used to seed fault
    /// decisions and to index the quarantine set. Unlike `Hash`, the
    /// digest is identical across processes and runs.
    fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h
        }
        let mut h = eat(OFFSET, self.app.as_bytes());
        h = eat(h, &(self.input_bits.len() as u64).to_le_bytes());
        for &bits in &self.input_bits {
            h = eat(h, &bits.to_le_bytes());
        }
        h = eat(h, &(self.phase_levels.len() as u64).to_le_bytes());
        for levels in &self.phase_levels {
            h = eat(h, &(levels.len() as u64).to_le_bytes());
            h = eat(h, levels);
        }
        eat(h, &self.expected_iters.to_le_bytes())
    }
}

/// Number of independently locked cache shards. A power of two, so the
/// shard index is a mask of the key digest. Sixteen shards keep the
/// expected lock-collision rate low for worker pools up to the core
/// counts this engine targets, while costing only sixteen empty maps on
/// an idle engine.
const CACHE_SHARDS: usize = 16;

/// The execution cache, split into [`CACHE_SHARDS`] shards each behind
/// its own lock. The owning shard is a pure function of the key's stable
/// FNV-1a digest, so every entry lives in exactly one shard and the
/// never-cache-failures contract (rule `C005`) is shard-local. Lookups
/// and insert-backs on keys in different shards proceed without
/// contention (rule `C006`).
struct ShardedCache {
    shards: Vec<Mutex<HashMap<CacheKey, Arc<RunResult>>>>,
}

impl ShardedCache {
    fn new() -> Self {
        ShardedCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The shard owning `digest`. FNV-1a disperses low bits well, so the
    /// mask spreads keys evenly.
    fn shard(&self, digest: u64) -> &Mutex<HashMap<CacheKey, Arc<RunResult>>> {
        &self.shards[(digest as usize) & (CACHE_SHARDS - 1)]
    }

    /// Looks up `key` in its shard, cloning the hit out so the shard lock
    /// is held only for the probe.
    fn get(&self, digest: u64, key: &CacheKey) -> Option<Arc<RunResult>> {
        self.shard(digest)
            .lock()
            .expect("cache shard lock")
            .get(key)
            .map(Arc::clone)
    }

    /// Total entries across all shards, taking the shard locks one at a
    /// time. The sum is exact when no writer runs concurrently, which is
    /// how the metrics paths use it.
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }
}

/// The finite-QoS gate: observations carrying NaN/∞ output values are
/// rejected before they can reach the execution cache or a model.
fn finite_qos_gate(result: RunResult) -> Result<RunResult, FailureKind> {
    if result.output.iter().any(|v| !v.is_finite()) {
        Err(FailureKind::NonFiniteQos)
    } else {
        Ok(result)
    }
}

/// How one evaluation attempt ended short of success.
enum AttemptFailure {
    /// Retryable: injected faults, caught panics, timeouts, non-finite
    /// QoS, poisoned results.
    Transient(FailureKind),
    /// Not retryable: the app rejected the input or schedule outright.
    Fatal(OpproxError),
}

/// Wall time and execution count attributed to one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Stage name (e.g. `granularity`, `profiling`, `validation`).
    pub name: String,
    /// Real executions performed while the stage ran.
    pub executions: u64,
    /// Cache hits served while the stage ran.
    pub cache_hits: u64,
    /// Wall-clock milliseconds spent in the stage.
    pub wall_ms: f64,
}

/// A point-in-time snapshot of an engine's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalMetrics {
    /// Real application executions performed.
    pub executions: u64,
    /// Requests served from the execution cache (including duplicate
    /// submissions within one batch).
    pub cache_hits: u64,
    /// Total abstract work units across all real executions.
    pub total_work_units: u64,
    /// Per-stage wall time and execution counts, in first-use order.
    pub stages: Vec<StageMetrics>,
}

impl EvalMetrics {
    /// Fraction of requests served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.executions + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "evaluation: {} executions, {} cache hits ({:.1}% hit rate), {} work units",
            self.executions,
            self.cache_hits,
            100.0 * self.hit_rate(),
            self.total_work_units
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  stage {:<12} {:>6} exec {:>6} hits {:>10.1} ms",
                s.name, s.executions, s.cache_hits, s.wall_ms
            )?;
        }
        Ok(())
    }
}

/// The shared evaluation engine: bounded thread pool, execution cache,
/// and metrics. Cheap to share by reference across a whole pipeline run;
/// all interior state is synchronized.
///
/// # Example
///
/// ```
/// use opprox_core::evaluator::EvalEngine;
/// use opprox_apps::Pso;
/// use opprox_approx_rt::InputParams;
///
/// let engine = EvalEngine::new(2);
/// let app = Pso::new();
/// let input = InputParams::new(vec![12.0, 2.0]);
/// let first = engine.golden(&app, &input).unwrap();
/// let again = engine.golden(&app, &input).unwrap(); // served from cache
/// assert_eq!(first.work, again.work);
/// let m = engine.metrics();
/// assert_eq!((m.executions, m.cache_hits), (1, 1));
/// ```
pub struct EvalEngine {
    threads: usize,
    cache: ShardedCache,
    executions: AtomicU64,
    cache_hits: AtomicU64,
    total_work: AtomicU64,
    stages: Mutex<Vec<StageMetrics>>,
    faults: FaultState,
    telemetry: Telemetry,
}

impl Default for EvalEngine {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        EvalEngine::new(threads)
    }
}

impl fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalEngine")
            .field("threads", &self.threads)
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl EvalEngine {
    /// Creates an engine with a bounded pool of `threads` workers
    /// (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        EvalEngine::with_recovery(threads, RecoveryPolicy::default())
    }

    /// Creates an engine with an explicit [`RecoveryPolicy`] (retry
    /// bound, accounted backoff, per-evaluation timeout) and no fault
    /// injection.
    pub fn with_recovery(threads: usize, policy: RecoveryPolicy) -> Self {
        EvalEngine {
            threads: threads.max(1),
            cache: ShardedCache::new(),
            executions: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            total_work: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
            faults: FaultState::new(None, policy),
            telemetry: Telemetry::new(),
        }
    }

    /// Creates an engine that injects faults according to `plan` and
    /// recovers according to `policy`. Decisions are pure functions of
    /// the plan seed and the evaluation key, so the injected-failure
    /// schedule is identical across runs and thread counts.
    pub fn with_faults(threads: usize, plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        EvalEngine {
            threads: threads.max(1),
            cache: ShardedCache::new(),
            executions: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            total_work: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
            faults: FaultState::new(Some(plan), policy),
            telemetry: Telemetry::new(),
        }
    }

    /// Replaces the telemetry clock (and resets the registry), so tests
    /// can inject a [`crate::telemetry::ManualClock`] and get
    /// byte-identical trace exports across runs and thread counts.
    #[must_use]
    pub fn with_telemetry_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.telemetry = Telemetry::with_clock(clock);
        self
    }

    /// The engine's live telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Canonical snapshot of the telemetry registry.
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.telemetry.report()
    }

    /// The configured worker-pool bound.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether a fault plan is configured and can inject anything.
    pub fn fault_injection_enabled(&self) -> bool {
        self.faults.plan.as_ref().is_some_and(FaultPlan::is_active)
    }

    /// The engine's recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.faults.policy
    }

    /// Snapshot of the fault-injection and recovery ledger, in canonical
    /// order (byte-identical across runs and thread counts for a fixed
    /// [`FaultPlan`]).
    pub fn robustness_report(&self) -> RobustnessReport {
        self.faults.report()
    }

    /// Shared fault state, for in-crate collaborators (sampling records
    /// drops and requested-sample counts here).
    pub(crate) fn faults(&self) -> &FaultState {
        &self.faults
    }

    /// Executes (or recalls) one run of `app` on `input` under `schedule`,
    /// with panic isolation, bounded retry, and quarantine (see
    /// [`crate::fault`]).
    ///
    /// # Errors
    ///
    /// Propagates application runtime errors;
    /// [`OpproxError::EvaluationFailed`] when every recovery attempt was
    /// exhausted, [`OpproxError::Quarantined`] when the key already
    /// failed a full evaluation. Failed runs are **never** cached — a key
    /// whose last attempt failed cannot be served from the cache.
    pub fn run(
        &self,
        app: &dyn ApproxApp,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<Arc<RunResult>, OpproxError> {
        let key = CacheKey::new(app, input, schedule);
        let digest = key.digest();
        if let Some(hit) = self.cache.get(digest, &key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.note_hit(digest);
            return Ok(hit);
        }
        let result = Arc::new(self.evaluate_with_recovery(app, input, schedule, digest)?);
        self.executions.fetch_add(1, Ordering::Relaxed);
        self.total_work.fetch_add(result.work, Ordering::Relaxed);
        self.note_exec(digest, schedule.is_accurate());
        self.cache
            .shard(digest)
            .lock()
            .expect("cache shard lock")
            .entry(key)
            .or_insert_with(|| Arc::clone(&result));
        Ok(result)
    }

    /// Runs one full evaluation — up to `1 + max_retries` attempts with
    /// accounted backoff — and quarantines the key if every attempt
    /// fails.
    fn evaluate_with_recovery(
        &self,
        app: &dyn ApproxApp,
        input: &InputParams,
        schedule: &PhaseSchedule,
        digest: u64,
    ) -> Result<RunResult, OpproxError> {
        if self.faults.is_quarantined(digest) {
            self.faults.count_failure(FailureKind::Quarantined);
            self.telemetry.incr("eval.quarantine.hit");
            self.telemetry
                .incr(&format!("eval.quarantine[{digest:#018x}]"));
            return Err(OpproxError::Quarantined {
                context: format!("app `{}`, key {digest:#018x}", app.meta().name),
            });
        }
        let max_attempts = self.faults.policy.max_attempts();
        let mut last = FailureKind::Panic;
        for attempt in 0..max_attempts {
            match self.attempt_once(app, input, schedule, digest, attempt) {
                Ok(result) => return Ok(result),
                Err(AttemptFailure::Fatal(e)) => return Err(e),
                Err(AttemptFailure::Transient(kind)) => {
                    self.faults.count_failure(kind);
                    last = kind;
                    if attempt + 1 < max_attempts {
                        self.faults.account_retry(attempt);
                    }
                }
            }
        }
        self.faults.quarantine(digest, max_attempts);
        self.telemetry.incr("eval.quarantined");
        Err(OpproxError::EvaluationFailed {
            kind: last,
            attempts: max_attempts,
            context: format!("app `{}`, key {digest:#018x}", app.meta().name),
        })
    }

    /// One attempt: consult the fault plan at the named fault points,
    /// then (if nothing was injected) execute the app behind
    /// `catch_unwind`, the optional wall-clock budget, and the finite-QoS
    /// gate.
    fn attempt_once(
        &self,
        app: &dyn ApproxApp,
        input: &InputParams,
        schedule: &PhaseSchedule,
        digest: u64,
        attempt: u32,
    ) -> Result<RunResult, AttemptFailure> {
        let injected = self
            .faults
            .plan
            .as_ref()
            .and_then(|p| p.decide(digest, attempt));
        if let Some((point, kind)) = injected {
            self.faults.record_injection(FaultEvent {
                key: digest,
                attempt,
                point,
                kind,
            });
            match kind {
                FailureKind::Panic => {
                    // Raise a real panic and catch it at the worker
                    // boundary, exercising the same isolation machinery a
                    // genuine app panic takes.
                    let caught = catch_unwind(AssertUnwindSafe(|| -> RunResult {
                        panic!("injected fault: app-run panic (key {digest:#x}, attempt {attempt})")
                    }));
                    debug_assert!(caught.is_err());
                    return Err(AttemptFailure::Transient(FailureKind::Panic));
                }
                FailureKind::Timeout => {
                    return Err(AttemptFailure::Transient(FailureKind::Timeout));
                }
                FailureKind::NonFiniteQos => {
                    // Synthesize the corrupted observation and push it
                    // through the same finite-QoS gate a genuine NaN
                    // result would hit.
                    let corrupted = RunResult {
                        output: vec![f64::NAN],
                        work: 0,
                        outer_iters: 0,
                        log: CallContextLog::new(),
                    };
                    let kind = finite_qos_gate(corrupted)
                        .expect_err("synthesized NaN output must fail the gate");
                    return Err(AttemptFailure::Transient(kind));
                }
                FailureKind::PoisonedResult => {
                    // The corruption strikes at the cache-insert boundary:
                    // the would-be entry is rejected, never stored.
                    debug_assert_eq!(point, FaultPoint::CacheInsert);
                    return Err(AttemptFailure::Transient(FailureKind::PoisonedResult));
                }
                // The plan never decides `Quarantined`; quarantine is a
                // recovery outcome, not an injectable fault.
                FailureKind::Quarantined => {}
            }
        }
        self.guarded_run(app, input, schedule)
    }

    /// A genuine execution behind the worker-boundary guards: panics are
    /// caught, the optional per-evaluation wall-clock budget is enforced
    /// (via [`opprox_approx_rt::run_with_timeout`]), and non-finite
    /// outputs are rejected before they can reach the cache or a model.
    fn guarded_run(
        &self,
        app: &dyn ApproxApp,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, AttemptFailure> {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            match self.faults.policy.eval_timeout_ms {
                Some(budget) => run_with_timeout(app, input, schedule, budget),
                None => app.run(input, schedule),
            }
        }));
        match caught {
            Err(_) => Err(AttemptFailure::Transient(FailureKind::Panic)),
            Ok(Err(RuntimeError::Timeout { .. })) => {
                Err(AttemptFailure::Transient(FailureKind::Timeout))
            }
            Ok(Err(e)) => Err(AttemptFailure::Fatal(OpproxError::Runtime(e))),
            Ok(Ok(result)) => finite_qos_gate(result).map_err(AttemptFailure::Transient),
        }
    }

    /// Executes (or recalls) the fully accurate run for `input`.
    ///
    /// # Errors
    ///
    /// Propagates application runtime errors.
    pub fn golden(
        &self,
        app: &dyn ApproxApp,
        input: &InputParams,
    ) -> Result<Arc<RunResult>, OpproxError> {
        let schedule = PhaseSchedule::accurate(app.meta().num_blocks());
        self.run(app, input, &schedule)
    }

    /// Executes a batch of jobs on the worker pool and returns the
    /// results in **submission order**.
    ///
    /// Duplicate jobs (by cache key) are executed once; the extra
    /// submissions — and any jobs already in the cache — are counted as
    /// cache hits. Because every application is deterministic and results
    /// are assembled into pre-assigned slots, the returned vector is
    /// bit-identical to running the jobs sequentially in submission
    /// order, for any thread count.
    ///
    /// # Errors
    ///
    /// If any job fails, returns the error of the earliest-submitted
    /// failing job. Successful jobs in the batch are still cached.
    pub fn run_batch(
        &self,
        app: &dyn ApproxApp,
        jobs: &[(InputParams, PhaseSchedule)],
    ) -> Result<Vec<Arc<RunResult>>, OpproxError> {
        let mut out = Vec::with_capacity(jobs.len());
        for outcome in self.run_batch_resilient(app, jobs) {
            out.push(outcome?);
        }
        Ok(out)
    }

    /// Like [`EvalEngine::run_batch`], but failures degrade instead of
    /// aborting: every job gets its own `Result`, in submission order.
    /// Failed jobs are never cached; duplicate submissions of a failing
    /// key share the same error. This is the entry point degraded-mode
    /// training uses to drop individual samples while keeping the rest of
    /// the batch.
    pub fn run_batch_resilient(
        &self,
        app: &dyn ApproxApp,
        jobs: &[(InputParams, PhaseSchedule)],
    ) -> Vec<Result<Arc<RunResult>, OpproxError>> {
        // Resolve each submission to a cached result or a unique pending
        // execution; duplicates alias the first occurrence. Each probe
        // takes only the owning shard's lock; in-batch deduplication runs
        // through the local `seen` map, not the cache, so no lock is held
        // across the scan.
        enum Slot {
            Cached(Arc<RunResult>),
            Pending(usize),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<(CacheKey, &InputParams, &PhaseSchedule)> = Vec::new();
        let mut seen: HashMap<CacheKey, usize> = HashMap::new();
        let mut hits = 0u64;
        for (input, schedule) in jobs {
            let key = CacheKey::new(app, input, schedule);
            let digest = key.digest();
            if let Some(hit) = self.cache.get(digest, &key) {
                hits += 1;
                self.note_hit(digest);
                slots.push(Slot::Cached(hit));
                continue;
            }
            match seen.entry(key.clone()) {
                Entry::Occupied(e) => {
                    hits += 1;
                    self.note_hit(digest);
                    slots.push(Slot::Pending(*e.get()));
                }
                Entry::Vacant(e) => {
                    e.insert(pending.len());
                    slots.push(Slot::Pending(pending.len()));
                    pending.push((key, input, schedule));
                }
            }
        }
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.telemetry
            .set_gauge("eval.queue_depth", pending.len() as f64);

        let results = self.execute_pending(app, &pending);

        // Only successful results cross the cache boundary; failed
        // entries are never stored (rule C005). Each insert-back takes
        // only the owning shard's lock (rule C006).
        for ((key, _, _), result) in pending.iter().zip(results.iter()) {
            if let Ok(result) = result {
                self.cache
                    .shard(key.digest())
                    .lock()
                    .expect("cache shard lock")
                    .insert(key.clone(), Arc::clone(result));
            }
        }

        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Cached(r) => Ok(r),
                Slot::Pending(i) => results[i].clone(),
            })
            .collect()
    }

    /// Runs the de-duplicated pending jobs on a work-stealing pool of
    /// scoped threads (see [`WorkPool`]) with per-job panic isolation,
    /// and returns their outcomes in job order.
    fn execute_pending(
        &self,
        app: &dyn ApproxApp,
        pending: &[(CacheKey, &InputParams, &PhaseSchedule)],
    ) -> Vec<Result<Arc<RunResult>, OpproxError>> {
        if pending.is_empty() {
            return Vec::new();
        }
        let run = WorkPool::new(self.threads).run_isolated(pending.len(), |i| {
            let (key, input, schedule) = &pending[i];
            self.evaluate_with_recovery(app, input, schedule, key.digest())
        });
        for _ in 0..run.respawns {
            self.faults.record_respawn();
        }
        run.outcomes
            .into_iter()
            .zip(pending.iter())
            .map(|(outcome, (key, _, schedule))| match outcome {
                Ok(Ok(result)) => {
                    self.executions.fetch_add(1, Ordering::Relaxed);
                    self.total_work.fetch_add(result.work, Ordering::Relaxed);
                    self.note_exec(key.digest(), schedule.is_accurate());
                    Ok(Arc::new(result))
                }
                Ok(Err(e)) => Err(e),
                // Defense in depth: `evaluate_with_recovery` catches
                // panics itself, but if one ever escapes to the pool the
                // worker dies, is respawned, and the job fails typed.
                Err(panic) => Err(OpproxError::EvaluationFailed {
                    kind: FailureKind::Panic,
                    attempts: 1,
                    context: format!("worker died: {}", panic.message),
                }),
            })
            .collect()
    }

    /// Per-key cache-hit bookkeeping for the telemetry registry. Counter
    /// names carry the key digest so tests can assert facts about
    /// individual `(input, schedule)` keys.
    fn note_hit(&self, digest: u64) {
        self.telemetry.incr("eval.cache.hit");
        self.telemetry.incr(&format!("eval.hit[{digest:#018x}]"));
    }

    /// Per-key execution bookkeeping; accurate-schedule (golden)
    /// executions are counted separately so "golden exactly once per
    /// input" is an assertable fact.
    fn note_exec(&self, digest: u64, golden: bool) {
        self.telemetry.incr("eval.exec");
        self.telemetry.incr(&format!("eval.exec[{digest:#018x}]"));
        if golden {
            self.telemetry.incr("eval.golden.exec");
            self.telemetry
                .incr(&format!("eval.golden.exec[{digest:#018x}]"));
        }
    }

    /// Runs `f`, attributing its wall time and the executions and cache
    /// hits it causes to the named pipeline stage. Repeated stages
    /// accumulate. The stage is also recorded as a telemetry span
    /// `stage/<name>` against the engine's injectable clock.
    pub fn stage<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let execs_before = self.executions.load(Ordering::Relaxed);
        let hits_before = self.cache_hits.load(Ordering::Relaxed);
        let start = Instant::now();
        let out = self.telemetry.span(&format!("stage/{name}"), f);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let executions = self.executions.load(Ordering::Relaxed) - execs_before;
        let cache_hits = self.cache_hits.load(Ordering::Relaxed) - hits_before;
        let mut stages = self.stages.lock().expect("stage lock");
        match stages.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.executions += executions;
                s.cache_hits += cache_hits;
                s.wall_ms += wall_ms;
            }
            None => stages.push(StageMetrics {
                name: name.to_string(),
                executions,
                cache_hits,
                wall_ms,
            }),
        }
        out
    }

    /// Snapshot of the engine's counters.
    pub fn metrics(&self) -> EvalMetrics {
        EvalMetrics {
            executions: self.executions.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            total_work_units: self.total_work.load(Ordering::Relaxed),
            stages: self.stages.lock().expect("stage lock").clone(),
        }
    }

    /// Number of distinct executions currently memoized, summed across
    /// all cache shards.
    pub fn cached_results(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::config::sample_configs;
    use opprox_approx_rt::LevelConfig;
    use opprox_apps::Pso;

    fn app() -> Pso {
        Pso::new()
    }

    fn input() -> InputParams {
        InputParams::new(vec![12.0, 2.0])
    }

    fn schedules(n: usize) -> Vec<PhaseSchedule> {
        sample_configs(&app().meta().blocks, n, 9)
            .into_iter()
            .map(PhaseSchedule::constant)
            .collect()
    }

    #[test]
    fn run_caches_identical_requests() {
        let engine = EvalEngine::new(2);
        let app = app();
        let schedule = PhaseSchedule::constant(LevelConfig::new(vec![1, 0, 0]));
        let a = engine.run(&app, &input(), &schedule).unwrap();
        let b = engine.run(&app, &input(), &schedule).unwrap();
        assert_eq!(a.output, b.output);
        let m = engine.metrics();
        assert_eq!(m.executions, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.total_work_units, a.work);
        assert_eq!(engine.cached_results(), 1);
    }

    #[test]
    fn distinct_schedules_do_not_collide() {
        let engine = EvalEngine::new(2);
        let app = app();
        for s in schedules(4) {
            engine.run(&app, &input(), &s).unwrap();
        }
        let m = engine.metrics();
        assert_eq!(m.executions, 4);
        assert_eq!(m.cache_hits, 0);
    }

    #[test]
    fn batch_deduplicates_and_counts_hits() {
        let engine = EvalEngine::new(4);
        let app = app();
        let s = schedules(2);
        // One warm entry, then a batch with that entry, a fresh one, and a
        // duplicate submission of the fresh one.
        engine.run(&app, &input(), &s[0]).unwrap();
        let jobs = vec![
            (input(), s[0].clone()),
            (input(), s[1].clone()),
            (input(), s[1].clone()),
        ];
        let results = engine.run_batch(&app, &jobs).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[1].output, results[2].output);
        let m = engine.metrics();
        assert_eq!(m.executions, 2, "warm run + one fresh batch execution");
        assert_eq!(m.cache_hits, 2, "warm entry + duplicate submission");
    }

    #[test]
    fn batch_order_matches_sequential_execution() {
        let app = app();
        let jobs: Vec<(InputParams, PhaseSchedule)> =
            schedules(6).into_iter().map(|s| (input(), s)).collect();
        let sequential: Vec<RunResult> = jobs.iter().map(|(i, s)| app.run(i, s).unwrap()).collect();
        for threads in [1, 2, 8] {
            let engine = EvalEngine::new(threads);
            let parallel = engine.run_batch(&app, &jobs).unwrap();
            for (p, s) in parallel.iter().zip(sequential.iter()) {
                assert_eq!(p.as_ref(), s, "{threads} threads");
            }
        }
    }

    #[test]
    fn batch_errors_surface_earliest_failure() {
        let engine = EvalEngine::new(2);
        let app = app();
        let good = PhaseSchedule::constant(LevelConfig::new(vec![1, 0, 0]));
        let bad = PhaseSchedule::constant(LevelConfig::new(vec![99, 99, 99]));
        let jobs = vec![(input(), good), (input(), bad)];
        assert!(engine.run_batch(&app, &jobs).is_err());
    }

    #[test]
    fn stages_accumulate_time_and_counts() {
        let engine = EvalEngine::new(2);
        let app = app();
        let s = schedules(1).remove(0);
        engine.stage("probe", || engine.run(&app, &input(), &s).unwrap());
        engine.stage("probe", || engine.run(&app, &input(), &s).unwrap());
        let m = engine.metrics();
        assert_eq!(m.stages.len(), 1);
        assert_eq!(m.stages[0].name, "probe");
        assert_eq!(m.stages[0].executions, 1);
        assert_eq!(m.stages[0].cache_hits, 1);
        assert!(m.stages[0].wall_ms >= 0.0);
    }

    #[test]
    fn metrics_render_and_serialize() {
        let engine = EvalEngine::new(1);
        let app = app();
        engine.stage("golden", || engine.golden(&app, &input()).unwrap());
        engine.golden(&app, &input()).unwrap();
        let m = engine.metrics();
        let text = m.to_string();
        assert!(text.contains("1 executions"), "{text}");
        assert!(text.contains("1 cache hits"), "{text}");
        assert!(text.contains("golden"), "{text}");
        let json = serde_json::to_string(&m).unwrap();
        let back: EvalMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sharded_cache_counts_and_serves_across_shards() {
        use opprox_approx_rt::config::enumerate_configs;
        let engine = EvalEngine::new(2);
        let app = app();
        // Distinct keys by construction; enough of them that multiple
        // shards are populated (digest-selected, so coverage is
        // probabilistic but the counts below are exact either way).
        let schedules: Vec<PhaseSchedule> = enumerate_configs(&app.meta().blocks)
            .filter(|c| !c.is_accurate())
            .take(12)
            .map(PhaseSchedule::constant)
            .collect();
        for s in &schedules {
            engine.run(&app, &input(), s).unwrap();
        }
        assert_eq!(engine.cached_results(), 12, "every distinct key memoized");
        // A full re-submission is served entirely from the shards.
        let jobs: Vec<_> = schedules.iter().map(|s| (input(), s.clone())).collect();
        let results = engine.run_batch(&app, &jobs).unwrap();
        assert_eq!(results.len(), 12);
        let m = engine.metrics();
        assert_eq!(m.executions, 12);
        assert_eq!(m.cache_hits, 12);
        assert_eq!(engine.cached_results(), 12, "re-submission adds nothing");
    }

    #[test]
    fn golden_signs_distinguish_inputs() {
        // -0.0 and 0.0 must key differently (bit-pattern identity).
        let engine = EvalEngine::new(1);
        let app = app();
        engine
            .golden(&app, &InputParams::new(vec![12.0, 2.0]))
            .unwrap();
        let before = engine.metrics().executions;
        engine
            .golden(&app, &InputParams::new(vec![12.0 + 0.0, 2.0]))
            .unwrap();
        assert_eq!(engine.metrics().executions, before, "same bits must hit");
    }
}
