//! Performance and error models (paper Sec. 3.6–3.7).
//!
//! For every control-flow class and every phase, OPPROX fits three
//! polynomial-regression models:
//!
//! 1. an **iteration-count estimator** over the input parameters and the
//!    approximation levels (the number of outer-loop iterations can
//!    depend on internal approximations, as in LULESH);
//! 2. a **speedup model** and
//! 3. a **QoS-degradation model**, each built in two steps: *local*
//!    models per approximable block (level + input parameters → target,
//!    trained on the exhaustive per-block sweeps), then a *combined*
//!    model over the local predictions plus the estimated iteration
//!    count, trained on the sparse multi-block samples.
//!
//! Every model goes through the [`opprox_ml::model_select`] pipeline:
//! MIC feature filtering, degree escalation under 10-fold
//! cross-validation, optional sub-model splitting, and an empirical
//! confidence band. Predictions used by the optimizer are conservative:
//! the upper band limit for QoS degradation and the lower limit for
//! speedup.

use crate::control_flow::ControlFlowModel;
use crate::error::OpproxError;
use crate::sampling::{SampleRecord, TrainingData};
use opprox_approx_rt::{InputParams, LevelConfig};
use opprox_ml::model_select::{AutoFitConfig, TargetModel};
use opprox_ml::Dataset;
use serde::{Deserialize, Serialize};

/// Floor applied to QoS degradations when computing ROI ratios, so
/// near-zero-error samples do not produce unbounded ROI.
pub const ROI_QOS_FLOOR: f64 = 1.0;

/// A conservative prediction for one (phase, input, configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Conservative (lower-band) speedup estimate.
    pub speedup: f64,
    /// Conservative (upper-band) QoS-degradation estimate, clamped ≥ 0.
    pub qos: f64,
    /// Estimated outer-loop iteration count.
    pub iters: f64,
}

/// The target transform a two-step model is fitted under.
///
/// QoS degradations span several orders of magnitude (a mild perforation
/// may cost 0.1%, a destabilized run 10⁵%), and speedups are ratios;
/// both are modeled in log space, where polynomials fit well and the
/// empirical confidence bands stay meaningful. The transforms are
/// monotone, so band bounds map through the inverse directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetTransform {
    /// `y ↦ ln(1 + y)` — for non-negative, heavy-tailed QoS values.
    Log1p,
    /// `y ↦ ln(max(y, 1e-6))` — for strictly positive ratios (speedup).
    Ln,
}

impl TargetTransform {
    fn forward(self, y: f64) -> f64 {
        match self {
            TargetTransform::Log1p => y.max(0.0).ln_1p(),
            TargetTransform::Ln => y.max(1e-6).ln(),
        }
    }

    fn inverse(self, t: f64) -> f64 {
        match self {
            TargetTransform::Log1p => t.exp_m1().max(0.0),
            TargetTransform::Ln => t.exp(),
        }
    }
}

/// The paper's two-step model: per-block local models feeding a combined
/// model (together with the estimated iteration count), fitted under a
/// [`TargetTransform`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoStepModel {
    locals: Vec<TargetModel>,
    combined: TargetModel,
    transform: TargetTransform,
    /// Observed target range in transformed space; point predictions are
    /// clamped into it before the confidence band is applied, so corner
    /// extrapolations of the polynomial cannot claim impossible values.
    range_t: (f64, f64),
}

impl TwoStepModel {
    /// Point-and-band prediction in original units.
    /// Returns `(point, lower, upper)`.
    fn predict_full(
        &self,
        input: &InputParams,
        config: &LevelConfig,
        est_iters_ln: f64,
    ) -> Result<(f64, f64, f64), OpproxError> {
        // A configuration that approximates a single block is exactly what
        // the local models were trained on (the exhaustive per-block
        // sweeps); their prediction is strictly more faithful than the
        // combined model's re-fit, so use it directly.
        let nonzero: Vec<usize> = (0..self.locals.len())
            .filter(|&b| config.level(b) > 0)
            .collect();
        if nonzero.len() == 1 {
            let b = nonzero[0];
            let mut row = input.values().to_vec();
            row.push(config.level(b) as f64);
            let raw = self.locals[b].predict(&row)?;
            let point = clamp_to(raw, self.range_t.0, self.range_t.1);
            let half = (self.locals[b].predict_upper(&row)? - raw).max(0.0);
            return Ok((
                self.transform.inverse(point),
                self.transform.inverse(point - half),
                self.transform.inverse(point + half),
            ));
        }

        let mut features = Vec::with_capacity(self.locals.len() + 1);
        for (b, local) in self.locals.iter().enumerate() {
            let mut row = input.values().to_vec();
            row.push(config.level(b) as f64);
            features.push(local.predict(&row)?);
        }
        features.push(est_iters_ln);
        let raw = self.combined.predict(&features)?;
        let point = clamp_to(raw, self.range_t.0, self.range_t.1);
        let half = (self.combined.predict_upper(&features)? - raw).max(0.0);
        Ok((
            self.transform.inverse(point),
            self.transform.inverse(point - half),
            self.transform.inverse(point + half),
        ))
    }

    /// Cross-validated R² of the combined model (in transformed space).
    pub fn combined_r2(&self) -> f64 {
        self.combined.cv_r2()
    }
}

/// All models for one phase of one control-flow class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseModels {
    /// Iteration-count estimator (features: params + levels).
    pub iters: TargetModel,
    /// Two-step speedup model.
    pub speedup: TwoStepModel,
    /// Two-step QoS-degradation model.
    pub qos: TwoStepModel,
    /// Return on investment of this phase (mean speedup per unit QoS
    /// degradation over the training samples, Eq. 1).
    pub roi: f64,
    /// Observed `(min, max)` speedup in this phase's training samples;
    /// predictions are clamped into it to keep polynomial extrapolation
    /// honest.
    pub speedup_range: (f64, f64),
    /// Observed `(min, max)` QoS degradation in this phase's samples.
    pub qos_range: (f64, f64),
}

/// All models for one control-flow class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassModels {
    /// Per-phase models, indexed by phase.
    pub phases: Vec<PhaseModels>,
}

/// The complete trained model set for an application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppModels {
    control_flow: ControlFlowModel,
    classes: Vec<ClassModels>,
    num_phases: usize,
    num_blocks: usize,
    num_params: usize,
}

/// Options for model fitting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelingOptions {
    /// Auto-fit configuration shared by all models.
    pub autofit: AutoFitConfig,
}

impl Default for ModelingOptions {
    fn default() -> Self {
        ModelingOptions {
            autofit: AutoFitConfig {
                // Degrees 2..4 keep training fast; the paper saw 2..6.
                max_degree: 4,
                // The paper uses p = 0.99; our simulated applications have
                // heavier-tailed QoS noise (hard stability cliffs), where
                // the p99 residual is one catastrophic outlier and would
                // veto every configuration. p = 0.9 keeps the band
                // conservative without being degenerate.
                confidence_level: 0.9,
                ..AutoFitConfig::default()
            },
        }
    }
}

impl AppModels {
    /// Fits the full model set from training data.
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::InsufficientData`] when a (class, phase)
    /// bucket has too few samples, and propagates fitting errors.
    pub fn fit(
        data: &TrainingData,
        num_phases: usize,
        options: &ModelingOptions,
    ) -> Result<Self, OpproxError> {
        let control_flow = ControlFlowModel::learn(data)?;
        let first = data
            .records
            .first()
            .ok_or_else(|| OpproxError::InsufficientData("no samples collected".into()))?;
        let num_blocks = first.config.num_blocks();
        let num_params = first.input.len();

        // Assign each record to the control-flow class of its input's
        // golden run.
        let class_of_input = |input: &InputParams| -> usize {
            data.golden_for(input)
                .and_then(|g| control_flow.class_of_signature(&g.control_flow))
                .unwrap_or(0)
        };

        let mut classes = Vec::with_capacity(control_flow.num_classes());
        for class in 0..control_flow.num_classes() {
            let mut phases = Vec::with_capacity(num_phases);
            for phase in 0..num_phases {
                let records: Vec<&SampleRecord> = data
                    .records
                    .iter()
                    .filter(|r| r.phase == Some(phase) && class_of_input(&r.input) == class)
                    .collect();
                if records.len() < 8 {
                    return Err(OpproxError::InsufficientData(format!(
                        "class {class} phase {phase} has only {} samples",
                        records.len()
                    )));
                }
                let goldens: Vec<&crate::sampling::GoldenRecord> = data
                    .goldens
                    .iter()
                    .filter(|g| class_of_input(&g.input) == class)
                    .collect();
                phases.push(fit_phase_models(
                    &records, &goldens, num_blocks, num_params, options,
                )?);
            }
            classes.push(ClassModels { phases });
        }

        Ok(AppModels {
            control_flow,
            classes,
            num_phases,
            num_blocks,
            num_params,
        })
    }

    /// Number of phases the models were trained for.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// Number of approximable blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The control-flow classifier.
    pub fn control_flow(&self) -> &ControlFlowModel {
        &self.control_flow
    }

    /// The per-phase ROI values for the class predicted for `input`.
    ///
    /// # Errors
    ///
    /// Propagates control-flow prediction errors.
    pub fn rois(&self, input: &InputParams) -> Result<Vec<f64>, OpproxError> {
        let class = self.control_flow.predict(input)?;
        Ok(self.classes[class].phases.iter().map(|p| p.roi).collect())
    }

    /// Conservative prediction for approximating phase `phase` of the
    /// execution of `input` with `config` (all other phases accurate).
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors; `phase` must be in range.
    pub fn predict(
        &self,
        input: &InputParams,
        phase: usize,
        config: &LevelConfig,
    ) -> Result<Prediction, OpproxError> {
        assert!(phase < self.num_phases, "phase {phase} out of range");
        let class = self.control_flow.predict(input)?;
        let models = &self.classes[class].phases[phase];
        let mut iters_row = input.values().to_vec();
        iters_row.extend(config.levels().iter().map(|&l| l as f64));
        let iters_ln = models.iters.predict(&iters_row)?;
        let iters = iters_ln.exp().max(1.0);
        let (_, speedup_lower, _) = models.speedup.predict_full(input, config, iters_ln)?;
        let (_, _, qos_upper) = models.qos.predict_full(input, config, iters_ln)?;
        Ok(Prediction {
            speedup: clamp_to(
                speedup_lower,
                models.speedup_range.0.min(1.0),
                models.speedup_range.1,
            )
            .max(0.01),
            qos: clamp_to(qos_upper, 0.0, models.qos_range.1).max(0.0),
            iters,
        })
    }

    /// Point (non-conservative) prediction, used when evaluating model
    /// accuracy (paper Fig. 12/13).
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors.
    pub fn predict_point(
        &self,
        input: &InputParams,
        phase: usize,
        config: &LevelConfig,
    ) -> Result<Prediction, OpproxError> {
        assert!(phase < self.num_phases, "phase {phase} out of range");
        let class = self.control_flow.predict(input)?;
        let models = &self.classes[class].phases[phase];
        let mut iters_row = input.values().to_vec();
        iters_row.extend(config.levels().iter().map(|&l| l as f64));
        let iters_ln = models.iters.predict(&iters_row)?;
        let iters = iters_ln.exp().max(1.0);
        let (speedup, _, _) = models.speedup.predict_full(input, config, iters_ln)?;
        let (qos, _, _) = models.qos.predict_full(input, config, iters_ln)?;
        Ok(Prediction {
            speedup: clamp_to(
                speedup,
                models.speedup_range.0.min(1.0),
                models.speedup_range.1,
            ),
            qos: clamp_to(qos, 0.0, models.qos_range.1).max(0.0),
            iters,
        })
    }

    /// Summary of combined-model cross-validation scores, one `(phase,
    /// speedup R², qos R²)` triple per phase of the first class.
    pub fn accuracy_summary(&self) -> Vec<(usize, f64, f64)> {
        self.classes[0]
            .phases
            .iter()
            .enumerate()
            .map(|(p, m)| (p, m.speedup.combined_r2(), m.qos.combined_r2()))
            .collect()
    }
}

/// Clamp that tolerates inverted bounds from degenerate training sets.
fn clamp_to(v: f64, lo: f64, hi: f64) -> f64 {
    if lo > hi {
        return v;
    }
    v.clamp(lo, hi)
}

/// Whether a configuration touches exactly one block (a "local" sample).
fn is_local_sample(config: &LevelConfig, block: usize) -> bool {
    config
        .levels()
        .iter()
        .enumerate()
        .all(|(b, &l)| if b == block { l > 0 } else { l == 0 })
}

fn fit_phase_models(
    records: &[&SampleRecord],
    goldens: &[&crate::sampling::GoldenRecord],
    num_blocks: usize,
    num_params: usize,
    options: &ModelingOptions,
) -> Result<PhaseModels, OpproxError> {
    let param_names: Vec<String> = (0..num_params).map(|i| format!("param{i}")).collect();

    // Iteration-count estimator over params + all levels. The golden runs
    // anchor the all-accurate corner of the level space, which the
    // approximated samples never visit; they are repeated so the fit
    // cannot trade their residual away against the bulk of the samples.
    let mut iters_names = param_names.clone();
    iters_names.extend((0..num_blocks).map(|b| format!("level{b}")));
    let mut iters_ds = Dataset::new(iters_names);
    for r in records {
        let mut row = r.input.values().to_vec();
        row.extend(r.config.levels().iter().map(|&l| l as f64));
        iters_ds
            .push(row, (r.outer_iters as f64).max(1.0).ln())
            .map_err(OpproxError::from)?;
    }
    let golden_weight = (records.len() / goldens.len().max(1)).clamp(1, 8);
    for g in goldens {
        let mut row = g.input.values().to_vec();
        row.extend(std::iter::repeat_n(0.0, num_blocks));
        for _ in 0..golden_weight {
            iters_ds
                .push(row.clone(), (g.outer_iters as f64).max(1.0).ln())
                .map_err(OpproxError::from)?;
        }
    }
    let iters = TargetModel::fit(&iters_ds, &options.autofit)?;

    let speedup = fit_two_step(
        records,
        num_blocks,
        &param_names,
        &iters,
        options,
        TargetTransform::Ln,
        |r| r.speedup,
    )?;
    let qos = fit_two_step(
        records,
        num_blocks,
        &param_names,
        &iters,
        options,
        TargetTransform::Log1p,
        |r| r.qos,
    )?;

    // ROI (Eq. 1): mean speedup per unit QoS degradation.
    let roi = records
        .iter()
        .map(|r| r.speedup / r.qos.max(ROI_QOS_FLOOR))
        .sum::<f64>()
        / records.len() as f64;

    let fold_range = |f: fn(&SampleRecord) -> f64| {
        records
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), r| {
                (lo.min(f(r)), hi.max(f(r)))
            })
    };
    let speedup_range = fold_range(|r| r.speedup);
    let qos_range = fold_range(|r| r.qos);

    Ok(PhaseModels {
        iters,
        speedup,
        qos,
        roi,
        speedup_range,
        qos_range,
    })
}

#[allow(clippy::too_many_arguments)]
fn fit_two_step(
    records: &[&SampleRecord],
    num_blocks: usize,
    param_names: &[String],
    iters_model: &TargetModel,
    options: &ModelingOptions,
    transform: TargetTransform,
    raw_target: impl Fn(&SampleRecord) -> f64,
) -> Result<TwoStepModel, OpproxError> {
    let target = |r: &SampleRecord| transform.forward(raw_target(r));
    // Step 1: local models, one per block, trained on that block's
    // exhaustive sweep (falling back to all records if a block has no
    // local samples, e.g. after aggressive sub-sampling). MIC filtering
    // is disabled here: a local model has only the input parameters and
    // its own level as features, and the level must never be dropped.
    let local_autofit = opprox_ml::model_select::AutoFitConfig {
        mic_threshold: None,
        ..options.autofit
    };
    let mut locals = Vec::with_capacity(num_blocks);
    for b in 0..num_blocks {
        let mut names = param_names.to_vec();
        names.push(format!("level{b}"));
        let mut ds = Dataset::new(names);
        let local_records: Vec<&&SampleRecord> = records
            .iter()
            .filter(|r| is_local_sample(&r.config, b))
            .collect();
        let pool: Vec<&SampleRecord> = if local_records.len() >= 4 {
            local_records.into_iter().copied().collect()
        } else {
            records.to_vec()
        };
        for r in pool {
            let mut row = r.input.values().to_vec();
            row.push(r.config.level(b) as f64);
            ds.push(row, target(r)).map_err(OpproxError::from)?;
        }
        locals.push(TargetModel::fit(&ds, &local_autofit)?);
    }

    // Step 2: combined model over local predictions + estimated iters,
    // trained on every sample of the phase.
    let mut names: Vec<String> = (0..num_blocks).map(|b| format!("local{b}")).collect();
    names.push("est_iters".into());
    let mut ds = Dataset::new(names);
    for r in records {
        let mut row = Vec::with_capacity(num_blocks + 1);
        for (b, local) in locals.iter().enumerate() {
            let mut lrow = r.input.values().to_vec();
            lrow.push(r.config.level(b) as f64);
            row.push(local.predict(&lrow)?);
        }
        let mut iters_row = r.input.values().to_vec();
        iters_row.extend(r.config.levels().iter().map(|&l| l as f64));
        // The iteration estimator already works in ln space; its raw
        // prediction is the feature.
        row.push(iters_model.predict(&iters_row)?);
        ds.push(row, target(r)).map_err(OpproxError::from)?;
    }
    // The combined model's features are already curated (one local
    // prediction per block plus the iteration estimate); MIC filtering —
    // which the paper applies to *raw* input features — stays off here so
    // no block's contribution can silently vanish.
    let combined = TargetModel::fit(&ds, &local_autofit)?;
    let range_t = records
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), r| {
            let t = target(r);
            (lo.min(t), hi.max(t))
        });

    Ok(TwoStepModel {
        locals,
        combined,
        transform,
        range_t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{collect_training_data, SamplingPlan};
    use opprox_apps::Pso;

    fn trained() -> (Pso, AppModels, TrainingData) {
        let app = Pso::new();
        let inputs = vec![
            InputParams::new(vec![16.0, 3.0]),
            InputParams::new(vec![24.0, 4.0]),
        ];
        let plan = SamplingPlan {
            num_phases: 2,
            sparse_samples: 10,
            whole_run_samples: 0,
            seed: 5,
        };
        let data = collect_training_data(&app, &inputs, &plan).unwrap();
        let models = AppModels::fit(&data, 2, &ModelingOptions::default()).unwrap();
        (app, models, data)
    }

    #[test]
    fn fits_and_predicts_finite_values() {
        let (_, models, _) = trained();
        assert_eq!(models.num_phases(), 2);
        assert_eq!(models.num_blocks(), 3);
        let input = InputParams::new(vec![20.0, 3.0]);
        let cfg = LevelConfig::new(vec![2, 1, 0]);
        for phase in 0..2 {
            let p = models.predict(&input, phase, &cfg).unwrap();
            assert!(p.speedup.is_finite() && p.speedup > 0.0);
            assert!(p.qos.is_finite() && p.qos >= 0.0);
            assert!(p.iters >= 1.0);
        }
    }

    #[test]
    fn conservative_bounds_bracket_point_predictions() {
        let (_, models, _) = trained();
        let input = InputParams::new(vec![16.0, 3.0]);
        let cfg = LevelConfig::new(vec![1, 1, 1]);
        let cons = models.predict(&input, 0, &cfg).unwrap();
        let point = models.predict_point(&input, 0, &cfg).unwrap();
        assert!(cons.qos >= point.qos.max(0.0) - 1e-9);
        assert!(cons.speedup <= point.speedup + 1e-9);
    }

    #[test]
    fn early_phase_predicted_worse_than_late_phase() {
        let (_, models, _) = trained();
        let input = InputParams::new(vec![16.0, 3.0]);
        let cfg = LevelConfig::new(vec![4, 3, 3]);
        let early = models.predict_point(&input, 0, &cfg).unwrap();
        let late = models.predict_point(&input, 1, &cfg).unwrap();
        assert!(
            early.qos > late.qos,
            "models should reproduce phase sensitivity: early {} vs late {}",
            early.qos,
            late.qos
        );
    }

    #[test]
    fn rois_are_positive_and_finite() {
        // With only two phases on a convergence loop the ROI ordering is
        // not guaranteed (the "late" half still contains convergence-
        // critical iterations); the invariant is that every phase has a
        // positive, finite ROI so the budget split is well defined.
        let (_, models, _) = trained();
        let rois = models.rois(&InputParams::new(vec![16.0, 3.0])).unwrap();
        assert_eq!(rois.len(), 2);
        for r in &rois {
            assert!(r.is_finite() && *r > 0.0, "bad ROI set {rois:?}");
        }
    }

    #[test]
    fn models_predict_training_records_reasonably() {
        let (_, models, data) = trained();
        // Combined speedup model should rank-order the training data:
        // compute correlation between predicted and actual speedups.
        let recs: Vec<&SampleRecord> = data.phase_records(1);
        let actual: Vec<f64> = recs.iter().map(|r| r.speedup).collect();
        let mut predicted = Vec::new();
        for r in &recs {
            predicted.push(
                models
                    .predict_point(&r.input, 1, &r.config)
                    .unwrap()
                    .speedup,
            );
        }
        let corr = opprox_linalg::stats::pearson(&actual, &predicted);
        assert!(corr > 0.7, "speedup prediction correlation {corr}");
    }

    #[test]
    fn insufficient_data_is_reported() {
        let data = TrainingData::default();
        assert!(matches!(
            AppModels::fit(&data, 2, &ModelingOptions::default()),
            Err(OpproxError::InsufficientData(_))
        ));
    }
}
