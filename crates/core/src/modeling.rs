//! Performance and error models (paper Sec. 3.6–3.7).
//!
//! For every control-flow class and every phase, OPPROX fits three
//! polynomial-regression models:
//!
//! 1. an **iteration-count estimator** over the input parameters and the
//!    approximation levels (the number of outer-loop iterations can
//!    depend on internal approximations, as in LULESH);
//! 2. a **speedup model** and
//! 3. a **QoS-degradation model**, each built in two steps: *local*
//!    models per approximable block (level + input parameters → target,
//!    trained on the exhaustive per-block sweeps), then a *combined*
//!    model over the local predictions plus the estimated iteration
//!    count, trained on the sparse multi-block samples.
//!
//! Every model goes through the [`opprox_ml::model_select`] pipeline:
//! MIC feature filtering, degree escalation under 10-fold
//! cross-validation, optional sub-model splitting, and an empirical
//! confidence band. Predictions used by the optimizer are conservative:
//! the upper band limit for QoS degradation and the lower limit for
//! speedup.

use crate::control_flow::ControlFlowModel;
use crate::error::OpproxError;
use crate::pool::WorkPool;
use crate::sampling::{GoldenRecord, SampleRecord, TrainingData};
use crate::telemetry::Telemetry;
use opprox_approx_rt::block::BlockDescriptor;
use opprox_approx_rt::{InputParams, LevelConfig};
use opprox_ml::fitmetrics::{FitCounters, MAX_TRACKED_DEGREE};
use opprox_ml::model_select::{AutoFitConfig, IntervalPrediction, TargetModel};
use opprox_ml::polyreg::PredictScratch;
use opprox_ml::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Floor applied to QoS degradations when computing ROI ratios, so
/// near-zero-error samples do not produce unbounded ROI.
pub const ROI_QOS_FLOOR: f64 = 1.0;

/// A conservative prediction for one (phase, input, configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Conservative (lower-band) speedup estimate.
    pub speedup: f64,
    /// Conservative (upper-band) QoS-degradation estimate, clamped ≥ 0.
    pub qos: f64,
    /// Estimated outer-loop iteration count.
    pub iters: f64,
}

/// The target transform a two-step model is fitted under.
///
/// QoS degradations span several orders of magnitude (a mild perforation
/// may cost 0.1%, a destabilized run 10⁵%), and speedups are ratios;
/// both are modeled in log space, where polynomials fit well and the
/// empirical confidence bands stay meaningful. The transforms are
/// monotone, so band bounds map through the inverse directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetTransform {
    /// `y ↦ ln(1 + y)` — for non-negative, heavy-tailed QoS values.
    Log1p,
    /// `y ↦ ln(max(y, 1e-6))` — for strictly positive ratios (speedup).
    Ln,
}

impl TargetTransform {
    fn forward(self, y: f64) -> f64 {
        match self {
            TargetTransform::Log1p => y.max(0.0).ln_1p(),
            TargetTransform::Ln => y.max(1e-6).ln(),
        }
    }

    fn inverse(self, t: f64) -> f64 {
        match self {
            TargetTransform::Log1p => t.exp_m1().max(0.0),
            TargetTransform::Ln => t.exp(),
        }
    }
}

/// The paper's two-step model: per-block local models feeding a combined
/// model (together with the estimated iteration count), fitted under a
/// [`TargetTransform`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoStepModel {
    locals: Vec<TargetModel>,
    combined: TargetModel,
    transform: TargetTransform,
    /// Observed target range in transformed space; point predictions are
    /// clamped into it before the confidence band is applied, so corner
    /// extrapolations of the polynomial cannot claim impossible values.
    range_t: (f64, f64),
}

impl TwoStepModel {
    /// Point-and-band prediction in original units.
    /// Returns `(point, lower, upper)`.
    fn predict_full(
        &self,
        input: &InputParams,
        config: &LevelConfig,
        est_iters_ln: f64,
    ) -> Result<(f64, f64, f64), OpproxError> {
        // A configuration that approximates a single block is exactly what
        // the local models were trained on (the exhaustive per-block
        // sweeps); their prediction is strictly more faithful than the
        // combined model's re-fit, so use it directly.
        let nonzero: Vec<usize> = (0..self.locals.len())
            .filter(|&b| config.level(b) > 0)
            .collect();
        if nonzero.len() == 1 {
            let b = nonzero[0];
            let mut row = input.values().to_vec();
            row.push(config.level(b) as f64);
            let raw = self.locals[b].predict(&row)?;
            let point = clamp_to(raw, self.range_t.0, self.range_t.1);
            let half = (self.locals[b].predict_upper(&row)? - raw).max(0.0);
            return Ok((
                self.transform.inverse(point),
                self.transform.inverse(point - half),
                self.transform.inverse(point + half),
            ));
        }

        let mut features = Vec::with_capacity(self.locals.len() + 1);
        for (b, local) in self.locals.iter().enumerate() {
            let mut row = input.values().to_vec();
            row.push(config.level(b) as f64);
            features.push(local.predict(&row)?);
        }
        features.push(est_iters_ln);
        let raw = self.combined.predict(&features)?;
        let point = clamp_to(raw, self.range_t.0, self.range_t.1);
        let half = (self.combined.predict_upper(&features)? - raw).max(0.0);
        Ok((
            self.transform.inverse(point),
            self.transform.inverse(point - half),
            self.transform.inverse(point + half),
        ))
    }

    /// Batched [`Self::predict_full`]: one `(point, lower, upper)` triple
    /// per configuration, computed with one flat prediction pass per
    /// underlying model. Bit-identical to the per-row path.
    fn predict_full_batch(
        &self,
        input: &InputParams,
        configs: &[LevelConfig],
        iters_ln: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<Vec<(f64, f64, f64)>, OpproxError> {
        let n = configs.len();
        let num_blocks = self.locals.len();
        let row_len = input.len() + 1;
        let mut flat = Vec::with_capacity(n * row_len);
        let mut local_preds: Vec<Vec<f64>> = Vec::with_capacity(num_blocks);
        let mut local_halves: Vec<Vec<f64>> = Vec::with_capacity(num_blocks);
        for (b, local) in self.locals.iter().enumerate() {
            flat.clear();
            for c in configs {
                flat.extend_from_slice(input.values());
                flat.push(c.level(b) as f64);
            }
            let mut out = Vec::with_capacity(n);
            let mut halves = Vec::with_capacity(n);
            local
                .predict_batch_with_band_into(&flat, row_len, &mut out, &mut halves, scratch)
                .map_err(OpproxError::from)?;
            local_preds.push(out);
            local_halves.push(halves);
        }

        flat.clear();
        for i in 0..n {
            for preds in &local_preds {
                flat.push(preds[i]);
            }
            flat.push(iters_ln[i]);
        }
        let mut combined = Vec::with_capacity(n);
        let mut combined_halves = Vec::with_capacity(n);
        self.combined
            .predict_batch_with_band_into(
                &flat,
                num_blocks + 1,
                &mut combined,
                &mut combined_halves,
                scratch,
            )
            .map_err(OpproxError::from)?;

        let mut results = Vec::with_capacity(n);
        for (i, c) in configs.iter().enumerate() {
            // Mirror the per-row path: a configuration that approximates a
            // single block uses its local model directly.
            let mut nz_count = 0usize;
            let mut nz_block = 0usize;
            for b in 0..num_blocks {
                if c.level(b) > 0 {
                    nz_count += 1;
                    nz_block = b;
                }
            }
            let (raw, half) = if nz_count == 1 {
                let raw = local_preds[nz_block][i];
                let upper = raw + local_halves[nz_block][i];
                (raw, (upper - raw).max(0.0))
            } else {
                let raw = combined[i];
                let upper = raw + combined_halves[i];
                (raw, (upper - raw).max(0.0))
            };
            let point = clamp_to(raw, self.range_t.0, self.range_t.1);
            results.push((
                self.transform.inverse(point),
                self.transform.inverse(point - half),
                self.transform.inverse(point + half),
            ));
        }
        Ok(results)
    }

    /// Cross-validated R² of the combined model (in transformed space).
    pub fn combined_r2(&self) -> f64 {
        self.combined.cv_r2()
    }

    /// The per-block local models (one per approximable block).
    pub fn locals(&self) -> &[TargetModel] {
        &self.locals
    }

    /// The combined model over local predictions + estimated iterations.
    pub fn combined(&self) -> &TargetModel {
        &self.combined
    }
}

/// All models for one phase of one control-flow class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseModels {
    /// Iteration-count estimator (features: params + levels).
    pub iters: TargetModel,
    /// Two-step speedup model.
    pub speedup: TwoStepModel,
    /// Two-step QoS-degradation model.
    pub qos: TwoStepModel,
    /// Return on investment of this phase (mean speedup per unit QoS
    /// degradation over the training samples, Eq. 1).
    pub roi: f64,
    /// Observed `(min, max)` speedup in this phase's training samples;
    /// predictions are clamped into it to keep polynomial extrapolation
    /// honest.
    pub speedup_range: (f64, f64),
    /// Observed `(min, max)` QoS degradation in this phase's samples.
    pub qos_range: (f64, f64),
}

/// All models for one control-flow class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassModels {
    /// Per-phase models, indexed by phase.
    pub phases: Vec<PhaseModels>,
}

/// The complete trained model set for an application.
#[derive(Debug, Clone)]
pub struct AppModels {
    control_flow: ControlFlowModel,
    classes: Vec<ClassModels>,
    num_phases: usize,
    num_blocks: usize,
    num_params: usize,
    /// Training-run statistics. Wall times are machine-dependent, so the
    /// field is excluded from serialization (see the hand-written impls
    /// below): serialized model sets stay bit-reproducible across machines
    /// and thread counts.
    metrics: ModelingMetrics,
}

// The vendored serde derive has no `#[serde(skip)]`, so these are the
// derive expansion minus the `metrics` field.
impl Serialize for AppModels {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("control_flow".to_string(), self.control_flow.to_value()),
            ("classes".to_string(), self.classes.to_value()),
            ("num_phases".to_string(), self.num_phases.to_value()),
            ("num_blocks".to_string(), self.num_blocks.to_value()),
            ("num_params".to_string(), self.num_params.to_value()),
        ])
    }
}

impl Deserialize for AppModels {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let entries = serde::__private::as_object(v, "AppModels")?;
        Ok(AppModels {
            control_flow: serde::__private::field(entries, "control_flow", "AppModels")?,
            classes: serde::__private::field(entries, "classes", "AppModels")?,
            num_phases: serde::__private::field(entries, "num_phases", "AppModels")?,
            num_blocks: serde::__private::field(entries, "num_blocks", "AppModels")?,
            num_params: serde::__private::field(entries, "num_params", "AppModels")?,
            metrics: ModelingMetrics::default(),
        })
    }
}

/// Options for model fitting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModelingOptions {
    /// Auto-fit configuration shared by all models.
    pub autofit: AutoFitConfig,
    /// Worker-thread bound for the parallel fit fan-out; `None` uses the
    /// machine's available parallelism. The fitted models are identical
    /// for every thread count.
    pub threads: Option<usize>,
}

// Hand-written so option files saved before `threads` existed still
// deserialize (the vendored serde derive has no `#[serde(default)]`).
impl Deserialize for ModelingOptions {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let entries = serde::__private::as_object(v, "ModelingOptions")?;
        Ok(ModelingOptions {
            autofit: serde::__private::field(entries, "autofit", "ModelingOptions")?,
            threads: match entries.iter().find(|(k, _)| k == "threads") {
                Some((_, tv)) => Deserialize::from_value(tv)?,
                None => None,
            },
        })
    }
}

impl Default for ModelingOptions {
    fn default() -> Self {
        ModelingOptions {
            autofit: AutoFitConfig {
                // Degrees 2..4 keep training fast; the paper saw 2..6.
                max_degree: 4,
                // The paper uses p = 0.99; our simulated applications have
                // heavier-tailed QoS noise (hard stability cliffs), where
                // the p99 residual is one catastrophic outlier and would
                // veto every configuration. p = 0.9 keeps the band
                // conservative without being degenerate.
                confidence_level: 0.9,
                ..AutoFitConfig::default()
            },
            threads: None,
        }
    }
}

/// Statistics of one model-training run, printed by the CLI next to the
/// evaluation-engine metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelingMetrics {
    /// `TargetModel` fits attempted across all stages (including sub-model
    /// splitting attempts).
    pub fits_attempted: u64,
    /// Cross-validation linear-system solves performed.
    pub cv_solves: u64,
    /// Polynomial degrees evaluated during escalation.
    pub degrees_tried: u64,
    /// Worker threads used for the fit fan-out.
    pub threads: usize,
    /// Wall time of the iteration-estimator and local-model stage.
    pub base_fit_wall_ms: f64,
    /// Wall time of the combined-model stage.
    pub combined_fit_wall_ms: f64,
    /// Total wall time of [`AppModels::fit`].
    pub total_wall_ms: f64,
}

impl fmt::Display for ModelingMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "modeling: {} fits, {} CV solves, {} degrees tried, {} threads",
            self.fits_attempted, self.cv_solves, self.degrees_tried, self.threads
        )?;
        writeln!(
            f,
            "  stage {:<12} {:>10.1} ms",
            "base-fit", self.base_fit_wall_ms
        )?;
        writeln!(
            f,
            "  stage {:<12} {:>10.1} ms",
            "combined-fit", self.combined_fit_wall_ms
        )?;
        writeln!(f, "  stage {:<12} {:>10.1} ms", "total", self.total_wall_ms)
    }
}

impl AppModels {
    /// Fits the full model set from training data.
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::InsufficientData`] when a (class, phase)
    /// bucket has too few samples, and propagates fitting errors.
    pub fn fit(
        data: &TrainingData,
        num_phases: usize,
        options: &ModelingOptions,
    ) -> Result<Self, OpproxError> {
        Self::fit_traced(data, num_phases, options, None)
    }

    /// [`AppModels::fit`] with an optional telemetry registry: the two
    /// fan-out stages become spans (`fit/base`, `fit/combined`), the
    /// [`ModelingMetrics`] counters are absorbed into the registry
    /// (`ml.fits_attempted`, `ml.cv_solves`, `ml.degrees_tried`), and the
    /// per-degree CV-solve counts feed the fixed-bucket
    /// `ml.cv_solves_per_degree` histogram.
    ///
    /// # Errors
    ///
    /// Same as [`AppModels::fit`].
    pub fn fit_traced(
        data: &TrainingData,
        num_phases: usize,
        options: &ModelingOptions,
        telemetry: Option<&Telemetry>,
    ) -> Result<Self, OpproxError> {
        let fit_start = Instant::now();
        let control_flow = ControlFlowModel::learn(data)?;
        let first = data
            .records
            .first()
            .ok_or_else(|| OpproxError::InsufficientData("no samples collected".into()))?;
        let num_blocks = first.config.num_blocks();
        let num_params = first.input.len();
        let param_names: Vec<String> = (0..num_params).map(|i| format!("param{i}")).collect();

        // Assign each record to the control-flow class of its input's
        // golden run.
        let class_of_input = |input: &InputParams| -> usize {
            data.golden_for(input)
                .and_then(|g| control_flow.class_of_signature(&g.control_flow))
                .unwrap_or(0)
        };

        // Bucket the samples per (class, phase) up front so every fit job
        // below is independent of the others.
        struct Bucket<'a> {
            records: Vec<&'a SampleRecord>,
            goldens: Vec<&'a GoldenRecord>,
        }
        let num_classes = control_flow.num_classes();
        let mut buckets: Vec<Bucket> = Vec::with_capacity(num_classes * num_phases);
        for class in 0..num_classes {
            let goldens: Vec<&GoldenRecord> = data
                .goldens
                .iter()
                .filter(|g| class_of_input(&g.input) == class)
                .collect();
            for phase in 0..num_phases {
                let records: Vec<&SampleRecord> = data
                    .records
                    .iter()
                    .filter(|r| r.phase == Some(phase) && class_of_input(&r.input) == class)
                    .collect();
                if records.len() < 8 {
                    return Err(OpproxError::InsufficientData(format!(
                        "class {class} phase {phase} has only {} samples",
                        records.len()
                    )));
                }
                buckets.push(Bucket {
                    records,
                    goldens: goldens.clone(),
                });
            }
        }

        let threads = options
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let pool = WorkPool::new(threads);
        let counters = FitCounters::new();
        // MIC filtering stays off for local and combined models: their
        // features are already curated, and no block's level may silently
        // vanish.
        let local_autofit = AutoFitConfig {
            mic_threshold: None,
            ..options.autofit
        };

        // Stage 1: the iteration estimator and the per-block local models
        // of every (class, phase) bucket are mutually independent — fan
        // them out across the pool. Results come back in submission order,
        // so the assembled model set is identical to a sequential fit.
        let stage1_start = Instant::now();
        let jobs_per_bucket = 1 + TARGETS.len() * num_blocks;
        let stage1 = Telemetry::maybe_span(telemetry, "fit/base", || {
            pool.run(buckets.len() * jobs_per_bucket, |i| {
                let bucket = &buckets[i / jobs_per_bucket];
                match i % jobs_per_bucket {
                    0 => {
                        let ds = iters_dataset(
                            &bucket.records,
                            &bucket.goldens,
                            num_blocks,
                            &param_names,
                        )?;
                        TargetModel::fit_with_counters(&ds, &options.autofit, &counters)
                            .map_err(OpproxError::from)
                    }
                    j => {
                        let (t, b) = ((j - 1) / num_blocks, (j - 1) % num_blocks);
                        let (transform, raw) = TARGETS[t];
                        let ds = local_dataset(&bucket.records, b, &param_names, transform, raw)?;
                        TargetModel::fit_with_counters(&ds, &local_autofit, &counters)
                            .map_err(OpproxError::from)
                    }
                }
            })
        });
        let base_fit_wall_ms = stage1_start.elapsed().as_secs_f64() * 1e3;

        // Deterministic assembly; the earliest-submitted error wins.
        let mut stage1 = stage1.into_iter();
        let mut iters_models: Vec<TargetModel> = Vec::with_capacity(buckets.len());
        let mut locals: Vec<Vec<Vec<TargetModel>>> = Vec::with_capacity(buckets.len());
        for _ in &buckets {
            iters_models.push(stage1.next().expect("stage-1 job count")?);
            let mut per_target = Vec::with_capacity(TARGETS.len());
            for _ in TARGETS {
                let mut per_block = Vec::with_capacity(num_blocks);
                for _ in 0..num_blocks {
                    per_block.push(stage1.next().expect("stage-1 job count")?);
                }
                per_target.push(per_block);
            }
            locals.push(per_target);
        }

        // Stage 2: combined models — each depends on one bucket's local
        // models and iteration estimator, but not on any other combined
        // fit, so they fan out the same way.
        let stage2_start = Instant::now();
        let stage2 = Telemetry::maybe_span(telemetry, "fit/combined", || {
            pool.run(buckets.len() * TARGETS.len(), |i| {
                let (bi, t) = (i / TARGETS.len(), i % TARGETS.len());
                let (transform, raw) = TARGETS[t];
                let ds = combined_dataset(
                    &buckets[bi].records,
                    &locals[bi][t],
                    &iters_models[bi],
                    num_blocks,
                    transform,
                    raw,
                )?;
                TargetModel::fit_with_counters(&ds, &local_autofit, &counters)
                    .map_err(OpproxError::from)
            })
        });
        let combined_fit_wall_ms = stage2_start.elapsed().as_secs_f64() * 1e3;

        // Final assembly: cheap sequential scans for ROI and ranges.
        let mut stage2 = stage2.into_iter();
        let mut iters_models = iters_models.into_iter();
        let mut locals = locals.into_iter();
        let mut bucket_iter = buckets.iter();
        let mut classes = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let mut phases = Vec::with_capacity(num_phases);
            for _ in 0..num_phases {
                let bucket = bucket_iter.next().expect("bucket count");
                let iters = iters_models.next().expect("bucket count");
                let mut per_target = locals.next().expect("bucket count").into_iter();
                let mut two_step = |transform: TargetTransform,
                                    raw: fn(&SampleRecord) -> f64|
                 -> Result<TwoStepModel, OpproxError> {
                    Ok(TwoStepModel {
                        locals: per_target.next().expect("target count"),
                        combined: stage2.next().expect("stage-2 job count")?,
                        transform,
                        range_t: target_range(&bucket.records, transform, raw),
                    })
                };
                let speedup = two_step(TARGETS[0].0, TARGETS[0].1)?;
                let qos = two_step(TARGETS[1].0, TARGETS[1].1)?;
                // ROI (Eq. 1): mean speedup per unit QoS degradation.
                let roi = bucket
                    .records
                    .iter()
                    .map(|r| r.speedup / r.qos.max(ROI_QOS_FLOOR))
                    .sum::<f64>()
                    / bucket.records.len() as f64;
                phases.push(PhaseModels {
                    iters,
                    speedup,
                    qos,
                    roi,
                    speedup_range: observed_range(&bucket.records, TARGETS[0].1),
                    qos_range: observed_range(&bucket.records, TARGETS[1].1),
                });
            }
            classes.push(ClassModels { phases });
        }

        let metrics = ModelingMetrics {
            fits_attempted: counters.fits(),
            cv_solves: counters.cv_solves(),
            degrees_tried: counters.degrees_tried(),
            threads: pool.threads(),
            base_fit_wall_ms,
            combined_fit_wall_ms,
            total_wall_ms: fit_start.elapsed().as_secs_f64() * 1e3,
        };

        // Absorb the modeling counters into the telemetry registry. The
        // histogram buckets are fixed (one per polynomial degree up to
        // MAX_TRACKED_DEGREE, plus overflow), so the counts are invariant
        // under fit-job scheduling order and thread count.
        if let Some(t) = telemetry {
            t.add("ml.fits_attempted", counters.fits());
            t.add("ml.cv_solves", counters.cv_solves());
            t.add("ml.degrees_tried", counters.degrees_tried());
            t.set_gauge("ml.threads", pool.threads() as f64);
            let bounds: Vec<f64> = (0..=MAX_TRACKED_DEGREE).map(|d| d as f64 + 0.5).collect();
            for (degree, &n) in counters.cv_solves_by_degree().iter().enumerate() {
                if n > 0 {
                    t.observe_n("ml.cv_solves_per_degree", &bounds, degree as f64, n);
                }
            }
        }

        Ok(AppModels {
            control_flow,
            classes,
            num_phases,
            num_blocks,
            num_params,
            metrics,
        })
    }

    /// Statistics of the training run that produced this model set.
    pub fn metrics(&self) -> &ModelingMetrics {
        &self.metrics
    }

    /// Number of phases the models were trained for.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// Number of approximable blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The control-flow classifier.
    pub fn control_flow(&self) -> &ControlFlowModel {
        &self.control_flow
    }

    /// The per-phase ROI values for the class predicted for `input`.
    ///
    /// # Errors
    ///
    /// Propagates control-flow prediction errors.
    pub fn rois(&self, input: &InputParams) -> Result<Vec<f64>, OpproxError> {
        let class = self.control_flow.predict(input)?;
        Ok(self.classes[class].phases.iter().map(|p| p.roi).collect())
    }

    /// Conservative prediction for approximating phase `phase` of the
    /// execution of `input` with `config` (all other phases accurate).
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors; `phase` must be in range.
    pub fn predict(
        &self,
        input: &InputParams,
        phase: usize,
        config: &LevelConfig,
    ) -> Result<Prediction, OpproxError> {
        assert!(phase < self.num_phases, "phase {phase} out of range");
        let class = self.control_flow.predict(input)?;
        let models = &self.classes[class].phases[phase];
        let mut iters_row = input.values().to_vec();
        iters_row.extend(config.levels().iter().map(|&l| l as f64));
        let iters_ln = models.iters.predict(&iters_row)?;
        let iters = iters_ln.exp().max(1.0);
        let (_, speedup_lower, _) = models.speedup.predict_full(input, config, iters_ln)?;
        let (_, _, qos_upper) = models.qos.predict_full(input, config, iters_ln)?;
        Ok(Prediction {
            speedup: clamp_to(
                speedup_lower,
                models.speedup_range.0.min(1.0),
                models.speedup_range.1,
            )
            .max(0.01),
            qos: clamp_to(qos_upper, 0.0, models.qos_range.1).max(0.0),
            iters,
        })
    }

    /// Batched [`Self::predict`] over many configurations of one phase.
    ///
    /// One flat prediction pass per underlying model replaces the per-row
    /// scalar pipeline (standardize, expand, dot-product, band), with all
    /// intermediates living in reusable scratch buffers. The returned
    /// predictions are bit-identical to calling [`Self::predict`] on each
    /// configuration in turn.
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors; `phase` must be in range.
    pub fn predict_batch(
        &self,
        input: &InputParams,
        phase: usize,
        configs: &[LevelConfig],
    ) -> Result<Vec<Prediction>, OpproxError> {
        assert!(phase < self.num_phases, "phase {phase} out of range");
        if configs.is_empty() {
            return Ok(Vec::new());
        }
        let class = self.control_flow.predict(input)?;
        let models = &self.classes[class].phases[phase];
        let mut scratch = PredictScratch::default();

        let row_len = self.num_params + self.num_blocks;
        let mut flat = Vec::with_capacity(configs.len() * row_len);
        for c in configs {
            flat.extend_from_slice(input.values());
            flat.extend(c.levels().iter().map(|&l| l as f64));
        }
        let mut iters_ln = Vec::with_capacity(configs.len());
        models
            .iters
            .predict_batch_into(&flat, row_len, &mut iters_ln, &mut scratch)
            .map_err(OpproxError::from)?;

        let speedup = models
            .speedup
            .predict_full_batch(input, configs, &iters_ln, &mut scratch)?;
        let qos = models
            .qos
            .predict_full_batch(input, configs, &iters_ln, &mut scratch)?;

        Ok((0..configs.len())
            .map(|i| Prediction {
                speedup: clamp_to(
                    speedup[i].1,
                    models.speedup_range.0.min(1.0),
                    models.speedup_range.1,
                )
                .max(0.01),
                qos: clamp_to(qos[i].2, 0.0, models.qos_range.1).max(0.0),
                iters: iters_ln[i].exp().max(1.0),
            })
            .collect())
    }

    /// Batched [`Self::predict_point`]: the point-prediction counterpart
    /// of [`Self::predict_batch`], bit-identical to the per-row path.
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors; `phase` must be in range.
    pub fn predict_point_batch(
        &self,
        input: &InputParams,
        phase: usize,
        configs: &[LevelConfig],
    ) -> Result<Vec<Prediction>, OpproxError> {
        assert!(phase < self.num_phases, "phase {phase} out of range");
        if configs.is_empty() {
            return Ok(Vec::new());
        }
        let class = self.control_flow.predict(input)?;
        let models = &self.classes[class].phases[phase];
        let mut scratch = PredictScratch::default();

        let row_len = self.num_params + self.num_blocks;
        let mut flat = Vec::with_capacity(configs.len() * row_len);
        for c in configs {
            flat.extend_from_slice(input.values());
            flat.extend(c.levels().iter().map(|&l| l as f64));
        }
        let mut iters_ln = Vec::with_capacity(configs.len());
        models
            .iters
            .predict_batch_into(&flat, row_len, &mut iters_ln, &mut scratch)
            .map_err(OpproxError::from)?;

        let speedup = models
            .speedup
            .predict_full_batch(input, configs, &iters_ln, &mut scratch)?;
        let qos = models
            .qos
            .predict_full_batch(input, configs, &iters_ln, &mut scratch)?;

        Ok((0..configs.len())
            .map(|i| Prediction {
                speedup: clamp_to(
                    speedup[i].0,
                    models.speedup_range.0.min(1.0),
                    models.speedup_range.1,
                ),
                qos: clamp_to(qos[i].0, 0.0, models.qos_range.1).max(0.0),
                iters: iters_ln[i].exp().max(1.0),
            })
            .collect())
    }

    /// Batched point **and** conservative predictions in one model pass.
    ///
    /// The underlying batch kernels already produce the full
    /// `(point, lower, upper)` tuple per row, so computing both
    /// projections costs the same as either [`Self::predict_batch`] or
    /// [`Self::predict_point_batch`] alone — the search uses this to
    /// halve its leaf-evaluation work in Band mode. Each returned pair is
    /// `(point, conservative)`, bit-identical to the two single-mode
    /// batch calls.
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors; `phase` must be in range.
    pub fn predict_pair_batch(
        &self,
        input: &InputParams,
        phase: usize,
        configs: &[LevelConfig],
    ) -> Result<Vec<(Prediction, Prediction)>, OpproxError> {
        assert!(phase < self.num_phases, "phase {phase} out of range");
        if configs.is_empty() {
            return Ok(Vec::new());
        }
        let class = self.control_flow.predict(input)?;
        let models = &self.classes[class].phases[phase];
        let mut scratch = PredictScratch::default();

        let row_len = self.num_params + self.num_blocks;
        let mut flat = Vec::with_capacity(configs.len() * row_len);
        for c in configs {
            flat.extend_from_slice(input.values());
            flat.extend(c.levels().iter().map(|&l| l as f64));
        }
        let mut iters_ln = Vec::with_capacity(configs.len());
        models
            .iters
            .predict_batch_into(&flat, row_len, &mut iters_ln, &mut scratch)
            .map_err(OpproxError::from)?;

        let speedup = models
            .speedup
            .predict_full_batch(input, configs, &iters_ln, &mut scratch)?;
        let qos = models
            .qos
            .predict_full_batch(input, configs, &iters_ln, &mut scratch)?;

        Ok((0..configs.len())
            .map(|i| {
                let iters = iters_ln[i].exp().max(1.0);
                let point = Prediction {
                    speedup: clamp_to(
                        speedup[i].0,
                        models.speedup_range.0.min(1.0),
                        models.speedup_range.1,
                    ),
                    qos: clamp_to(qos[i].0, 0.0, models.qos_range.1).max(0.0),
                    iters,
                };
                let conservative = Prediction {
                    speedup: clamp_to(
                        speedup[i].1,
                        models.speedup_range.0.min(1.0),
                        models.speedup_range.1,
                    )
                    .max(0.01),
                    qos: clamp_to(qos[i].2, 0.0, models.qos_range.1).max(0.0),
                    iters,
                };
                (point, conservative)
            })
            .collect())
    }

    /// Point (non-conservative) prediction, used when evaluating model
    /// accuracy (paper Fig. 12/13).
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors.
    pub fn predict_point(
        &self,
        input: &InputParams,
        phase: usize,
        config: &LevelConfig,
    ) -> Result<Prediction, OpproxError> {
        assert!(phase < self.num_phases, "phase {phase} out of range");
        let class = self.control_flow.predict(input)?;
        let models = &self.classes[class].phases[phase];
        let mut iters_row = input.values().to_vec();
        iters_row.extend(config.levels().iter().map(|&l| l as f64));
        let iters_ln = models.iters.predict(&iters_row)?;
        let iters = iters_ln.exp().max(1.0);
        let (speedup, _, _) = models.speedup.predict_full(input, config, iters_ln)?;
        let (qos, _, _) = models.qos.predict_full(input, config, iters_ln)?;
        Ok(Prediction {
            speedup: clamp_to(
                speedup,
                models.speedup_range.0.min(1.0),
                models.speedup_range.1,
            ),
            qos: clamp_to(qos, 0.0, models.qos_range.1).max(0.0),
            iters,
        })
    }

    /// Summary of combined-model cross-validation scores, one `(phase,
    /// speedup R², qos R²)` triple per phase of the first class.
    pub fn accuracy_summary(&self) -> Vec<(usize, f64, f64)> {
        self.classes[0]
            .phases
            .iter()
            .enumerate()
            .map(|(p, m)| (p, m.speedup.combined_r2(), m.qos.combined_r2()))
            .collect()
    }

    /// The per-class model sets, indexed by control-flow class.
    pub fn classes(&self) -> &[ClassModels] {
        &self.classes
    }

    /// Number of input parameters the models were trained over.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Precomputes an admissible-bounds evaluator for the per-phase
    /// search over the level space of `blocks` (which may restrict each
    /// block to fewer levels than the models were trained on). See
    /// [`PhaseBounds`] for the soundness contract.
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors; `phase` must be in range and
    /// `blocks` must match the trained block count.
    pub fn phase_bounds<'m>(
        &'m self,
        input: &InputParams,
        phase: usize,
        blocks: &[BlockDescriptor],
    ) -> Result<PhaseBounds<'m>, OpproxError> {
        assert!(phase < self.num_phases, "phase {phase} out of range");
        assert_eq!(
            blocks.len(),
            self.num_blocks,
            "bounds need one descriptor per trained block"
        );
        let class = self.control_flow.predict(input)?;
        let models = &self.classes[class].phases[phase];
        let num_blocks = blocks.len();
        let mut scratch = PredictScratch::default();

        // Exact per-(block, level) local-model predictions, tabulated with
        // the same batched path leaf evaluation uses, so fixed-block
        // features in the interval boxes are the leaf values themselves.
        let local_row_len = input.len() + 1;
        let mut local_tables = |ts: &TwoStepModel| -> Result<Vec<Vec<f64>>, OpproxError> {
            let mut tables = Vec::with_capacity(num_blocks);
            for (b, local) in ts.locals.iter().enumerate().take(num_blocks) {
                let levels = blocks[b].max_level as usize + 1;
                let mut flat = Vec::with_capacity(levels * local_row_len);
                for l in 0..levels {
                    flat.extend_from_slice(input.values());
                    flat.push(l as f64);
                }
                let mut out = Vec::with_capacity(levels);
                local
                    .predict_batch_into(&flat, local_row_len, &mut out, &mut scratch)
                    .map_err(OpproxError::from)?;
                tables.push(out);
            }
            Ok(tables)
        };
        let s_tbl = local_tables(&models.speedup)?;
        let q_tbl = local_tables(&models.qos)?;
        let minmax = |t: &[f64]| {
            t.iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                })
        };
        let s_loc: Vec<(f64, f64)> = s_tbl.iter().map(|t| minmax(t)).collect();
        let q_loc: Vec<(f64, f64)> = q_tbl.iter().map(|t| minmax(t)).collect();

        // Single-nonzero-block configurations route through the local
        // models directly (see `predict_full`), a discontinuity interval
        // bounds over the combined model cannot see — enumerate their
        // exact leaf predictions instead.
        let mut sb_configs = Vec::new();
        for (b, block) in blocks.iter().enumerate() {
            for l in 1..=block.max_level {
                sb_configs.push(LevelConfig::accurate(num_blocks).with_level(b, l));
            }
        }
        let sb_pairs = self.predict_pair_batch(input, phase, &sb_configs)?;
        let mut sb_speedup = Vec::with_capacity(num_blocks);
        let mut sb_point_qos = Vec::with_capacity(num_blocks);
        let mut sb_band_qos = Vec::with_capacity(num_blocks);
        let mut cursor = 0usize;
        for block in blocks {
            let levels = block.max_level as usize + 1;
            let mut sp = vec![f64::NAN; levels];
            let mut pq = vec![f64::NAN; levels];
            let mut bq = vec![f64::NAN; levels];
            for l in 1..levels {
                sp[l] = sb_pairs[cursor].0.speedup;
                pq[l] = sb_pairs[cursor].0.qos;
                bq[l] = sb_pairs[cursor].1.qos;
                cursor += 1;
            }
            sb_speedup.push(sp);
            sb_point_qos.push(pq);
            sb_band_qos.push(bq);
        }

        // Prefix aggregates over blocks `0..k`: the extremal single-block
        // leaf predictions a free prefix can reach.
        let agg = |tables: &[Vec<f64>], max: bool| -> Vec<f64> {
            let mut out = Vec::with_capacity(num_blocks + 1);
            let mut acc = if max {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
            out.push(acc);
            for t in tables {
                for &v in &t[1..] {
                    acc = if max { acc.max(v) } else { acc.min(v) };
                }
                out.push(acc);
            }
            out
        };

        Ok(PhaseBounds {
            models,
            params: input.values().to_vec(),
            max_levels: blocks.iter().map(|b| b.max_level).collect(),
            pre_sb_speedup_max: agg(&sb_speedup, true),
            pre_sb_point_qos_min: agg(&sb_point_qos, false),
            pre_sb_band_qos_min: agg(&sb_band_qos, false),
            s_tbl,
            q_tbl,
            s_loc,
            q_loc,
            sb_speedup,
            sb_point_qos,
            sb_band_qos,
        })
    }

    /// Checks the model set for corruption that would make every
    /// prediction meaningless: non-finite regression coefficients,
    /// invalid confidence bands, and shape mismatches between the
    /// class/phase/block structure and the declared dimensions.
    ///
    /// This is the Error-severity subset of the `opprox analyze` rules
    /// (A004, A007, A012); [`crate::pipeline::TrainedOpprox::load`] and
    /// the optimizer entry path reject model sets that fail it, and the
    /// `opprox-analyze` lints delegate here so the two cannot drift.
    pub fn integrity_issues(&self) -> Vec<IntegrityIssue> {
        let mut issues = Vec::new();
        if self.classes.len() != self.control_flow.num_classes() {
            issues.push(IntegrityIssue {
                kind: IssueKind::ShapeMismatch,
                location: "models.classes".into(),
                message: format!(
                    "{} class model sets for {} control-flow classes",
                    self.classes.len(),
                    self.control_flow.num_classes()
                ),
            });
        }
        for (c, class) in self.classes.iter().enumerate() {
            if class.phases.len() != self.num_phases {
                issues.push(IntegrityIssue {
                    kind: IssueKind::ShapeMismatch,
                    location: format!("models.class[{c}]"),
                    message: format!(
                        "{} phase model sets for {} phases",
                        class.phases.len(),
                        self.num_phases
                    ),
                });
            }
            for (p, phase) in class.phases.iter().enumerate() {
                let at = |part: &str| format!("models.class[{c}].phase[{p}].{part}");
                check_target_model(&phase.iters, &at("iters"), &mut issues);
                for (name, model) in [("speedup", &phase.speedup), ("qos", &phase.qos)] {
                    if model.locals.len() != self.num_blocks {
                        issues.push(IntegrityIssue {
                            kind: IssueKind::ShapeMismatch,
                            location: at(name),
                            message: format!(
                                "{} local models for {} blocks",
                                model.locals.len(),
                                self.num_blocks
                            ),
                        });
                    }
                    for (b, local) in model.locals.iter().enumerate() {
                        check_target_model(local, &at(&format!("{name}.local[{b}]")), &mut issues);
                    }
                    check_target_model(
                        &model.combined,
                        &at(&format!("{name}.combined")),
                        &mut issues,
                    );
                }
            }
        }
        issues
    }
}

/// Admissible bounds for a node of the per-phase level search.
#[derive(Debug, Clone, Copy)]
pub struct NodeBounds {
    /// No configuration in the subtree predicts a point speedup above this.
    pub speedup_ub: f64,
    /// No configuration in the subtree predicts a constrained qos below this.
    pub qos_lb: f64,
}

impl NodeBounds {
    /// The trivial bounds: prune nothing.
    pub const UNBOUNDED: NodeBounds = NodeBounds {
        speedup_ub: f64::INFINITY,
        qos_lb: 0.0,
    };
}

/// Precomputed bounds evaluator for one `(input, phase)` search.
///
/// A search node fixes the levels of a *suffix* of the block vector and
/// leaves the prefix free. [`PhaseBounds::bound_suffix`] returns a speedup
/// upper bound and a qos lower bound that hold for **every** leaf
/// configuration in that subtree, under the same model predictions the
/// optimizer's batched leaf evaluation produces:
///
/// * the combined polynomial models are bounded by interval arithmetic
///   over per-feature boxes (fixed blocks contribute their exact tabulated
///   local prediction, free blocks the min/max over their levels, and the
///   `iters_ln` feature an interval through the iteration model);
/// * single-nonzero-block configurations take a different prediction path
///   (the local models directly), so their exact leaf values are tabulated
///   up front and merged in by the nonzero count of the fixed suffix;
/// * every monotone post-step (`clamp_to`, the target transforms' inverse)
///   is pushed through the interval endpoints, and a relative epsilon is
///   added to absorb the rounding differences between the interval path
///   and the scalar leaf path.
///
/// Non-finite intermediates degrade to [`NodeBounds::UNBOUNDED`]; bounds
/// are advisory, so the search stays correct (just less pruned).
pub struct PhaseBounds<'m> {
    models: &'m PhaseModels,
    params: Vec<f64>,
    max_levels: Vec<u8>,
    /// Exact local-model predictions, indexed `[block][level]`.
    s_tbl: Vec<Vec<f64>>,
    q_tbl: Vec<Vec<f64>>,
    /// `(min, max)` of the local tables over all levels of each block.
    s_loc: Vec<(f64, f64)>,
    q_loc: Vec<(f64, f64)>,
    /// Exact leaf predictions of single-nonzero-block configurations,
    /// indexed `[block][level]`; level 0 is an unused placeholder.
    sb_speedup: Vec<Vec<f64>>,
    sb_point_qos: Vec<Vec<f64>>,
    sb_band_qos: Vec<Vec<f64>>,
    /// Aggregates of the `sb_*` tables over blocks `0..k`, indexed by `k`.
    pre_sb_speedup_max: Vec<f64>,
    pre_sb_point_qos_min: Vec<f64>,
    pre_sb_band_qos_min: Vec<f64>,
}

/// Relative slack applied to the final bounds so that rounding differences
/// between the interval path and the scalar leaf path can never flip a
/// pruning decision.
const BOUND_SLACK: f64 = 1e-9;

impl PhaseBounds<'_> {
    /// Number of blocks in the search space.
    pub fn num_blocks(&self) -> usize {
        self.max_levels.len()
    }

    /// Maximum level of block `b` in this search space.
    pub fn max_level(&self, b: usize) -> u8 {
        self.max_levels[b]
    }

    /// Bounds for the subtree where blocks `split..` are pinned to
    /// `fixed` (so `fixed[i]` is the level of block `split + i`, with
    /// `split = num_blocks - fixed.len()`) and blocks `..split` range
    /// over all their levels. With `band`, the qos lower bound tracks the
    /// conservative upper-band prediction; otherwise the point prediction.
    pub fn bound_suffix(&self, fixed: &[u8], band: bool) -> NodeBounds {
        let n = self.max_levels.len();
        debug_assert!(fixed.len() <= n);
        let split = n - fixed.len();

        // Interval through the iteration model over the raw level box.
        let mut row_lo = self.params.clone();
        let mut row_hi = self.params.clone();
        for b in 0..n {
            let (lo, hi) = if b < split {
                (0.0, self.max_levels[b] as f64)
            } else {
                let l = fixed[b - split] as f64;
                (l, l)
            };
            row_lo.push(lo);
            row_hi.push(hi);
        }
        let Ok(iters_ip) = self.models.iters.predict_interval(&row_lo, &row_hi) else {
            return NodeBounds::UNBOUNDED;
        };

        // Feature boxes for the combined models: exact tabulated locals
        // for fixed blocks, level-range extrema for free ones.
        let combined_ip = |ts: &TwoStepModel,
                           tbl: &[Vec<f64>],
                           loc: &[(f64, f64)]|
         -> Option<IntervalPrediction> {
            let mut feat_lo = Vec::with_capacity(n + 1);
            let mut feat_hi = Vec::with_capacity(n + 1);
            for b in 0..n {
                let (lo, hi) = if b < split {
                    loc[b]
                } else {
                    let v = tbl[b][fixed[b - split] as usize];
                    (v, v)
                };
                feat_lo.push(lo);
                feat_hi.push(hi);
            }
            feat_lo.push(iters_ip.lo);
            feat_hi.push(iters_ip.hi);
            ts.combined.predict_interval(&feat_lo, &feat_hi).ok()
        };

        let s = &self.models.speedup;
        let mut speedup_ub = match combined_ip(s, &self.s_tbl, &self.s_loc) {
            Some(ip) if ip.hi.is_finite() => clamp_to(
                s.transform
                    .inverse(clamp_to(ip.hi, s.range_t.0, s.range_t.1)),
                self.models.speedup_range.0.min(1.0),
                self.models.speedup_range.1,
            ),
            _ => f64::INFINITY,
        };

        let q = &self.models.qos;
        let mut qos_lb = match combined_ip(q, &self.q_tbl, &self.q_loc) {
            Some(ip) if ip.lo.is_finite() && ip.half_lo.is_finite() => {
                let mut t = clamp_to(ip.lo, q.range_t.0, q.range_t.1);
                if band {
                    t += ip.half_lo.max(0.0);
                }
                clamp_to(q.transform.inverse(t), 0.0, self.models.qos_range.1).max(0.0)
            }
            _ => 0.0,
        };

        // Merge the exact single-nonzero-block leaves the combined-model
        // interval does not cover.
        let nonzero = fixed.iter().filter(|&&l| l > 0).count();
        let sb_qos = if band {
            &self.pre_sb_band_qos_min
        } else {
            &self.pre_sb_point_qos_min
        };
        match nonzero {
            0 => {
                // Any single free block may be the lone nonzero one.
                speedup_ub = speedup_ub.max(self.pre_sb_speedup_max[split]);
                qos_lb = qos_lb.min(sb_qos[split]);
            }
            1 => {
                let i = fixed.iter().position(|&l| l > 0).expect("nonzero == 1");
                let (b, l) = (split + i, fixed[i] as usize);
                speedup_ub = speedup_ub.max(self.sb_speedup[b][l]);
                let q_sb = if band {
                    self.sb_band_qos[b][l]
                } else {
                    self.sb_point_qos[b][l]
                };
                qos_lb = qos_lb.min(q_sb);
            }
            _ => {}
        }

        if !speedup_ub.is_finite() || !qos_lb.is_finite() {
            return NodeBounds::UNBOUNDED;
        }
        NodeBounds {
            speedup_ub: speedup_ub * (1.0 + BOUND_SLACK) + BOUND_SLACK,
            qos_lb: (qos_lb * (1.0 - BOUND_SLACK) - BOUND_SLACK).max(0.0),
        }
    }
}

/// One corruption found by [`AppModels::integrity_issues`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityIssue {
    /// What kind of corruption this is.
    pub kind: IssueKind,
    /// Dotted path into the model set, e.g.
    /// `models.class[0].phase[1].qos.local[2]`.
    pub location: String,
    /// Human-readable description of the defect.
    pub message: String,
}

/// The corruption classes [`AppModels::integrity_issues`] detects. Each
/// maps to one Error-severity `opprox analyze` rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// A regression coefficient is NaN or infinite (rule A004).
    NonFiniteCoefficient,
    /// A confidence band has a negative/non-finite half-width or a
    /// confidence level outside `(0, 1]` (rule A007).
    InvalidBand,
    /// The class/phase/block structure contradicts the declared
    /// dimensions (rule A012).
    ShapeMismatch,
}

impl IssueKind {
    /// The stable `opprox analyze` rule code this corruption maps to.
    /// Boundary enforcers (model load, the serve reload audit) use it to
    /// name the rule that rejected an artifact.
    pub fn rule_code(self) -> &'static str {
        match self {
            IssueKind::NonFiniteCoefficient => "A004",
            IssueKind::InvalidBand => "A007",
            IssueKind::ShapeMismatch => "A012",
        }
    }
}

/// Checks one fitted model's submodels for non-finite coefficients and
/// invalid confidence bands.
fn check_target_model(model: &TargetModel, location: &str, issues: &mut Vec<IntegrityIssue>) {
    for (s, sub) in model.submodels().iter().enumerate() {
        let at = if model.is_split() {
            format!("{location}.submodel[{s}]")
        } else {
            location.to_string()
        };
        if let Some(j) = sub.coefficients().iter().position(|c| !c.is_finite()) {
            issues.push(IntegrityIssue {
                kind: IssueKind::NonFiniteCoefficient,
                location: at.clone(),
                message: format!(
                    "coefficient {j} is {} (degree-{} fit)",
                    sub.coefficients()[j],
                    sub.degree()
                ),
            });
        }
        let band = sub.band();
        if !band.half_width().is_finite() || band.half_width() < 0.0 {
            issues.push(IntegrityIssue {
                kind: IssueKind::InvalidBand,
                location: at.clone(),
                message: format!(
                    "confidence band half-width {} is invalid",
                    band.half_width()
                ),
            });
        }
        if !(band.level() > 0.0 && band.level() <= 1.0) {
            issues.push(IntegrityIssue {
                kind: IssueKind::InvalidBand,
                location: at,
                message: format!("confidence level {} outside (0, 1]", band.level()),
            });
        }
    }
}

/// Clamp that tolerates inverted bounds from degenerate training sets.
fn clamp_to(v: f64, lo: f64, hi: f64) -> f64 {
    if lo > hi {
        return v;
    }
    v.clamp(lo, hi)
}

/// Whether a configuration touches exactly one block (a "local" sample).
fn is_local_sample(config: &LevelConfig, block: usize) -> bool {
    config
        .levels()
        .iter()
        .enumerate()
        .all(|(b, &l)| if b == block { l > 0 } else { l == 0 })
}

fn speedup_of(r: &SampleRecord) -> f64 {
    r.speedup
}

fn qos_of(r: &SampleRecord) -> f64 {
    r.qos
}

/// Extracts one modeled target value from a profiling record.
type TargetFn = fn(&SampleRecord) -> f64;

/// The two modeled targets and their transforms, in fitting order.
const TARGETS: [(TargetTransform, TargetFn); 2] = [
    (TargetTransform::Ln, speedup_of),
    (TargetTransform::Log1p, qos_of),
];

/// Builds the iteration-count dataset over params + all levels. The
/// golden runs anchor the all-accurate corner of the level space, which
/// the approximated samples never visit; they are repeated so the fit
/// cannot trade their residual away against the bulk of the samples.
fn iters_dataset(
    records: &[&SampleRecord],
    goldens: &[&GoldenRecord],
    num_blocks: usize,
    param_names: &[String],
) -> Result<Dataset, OpproxError> {
    let mut names = param_names.to_vec();
    names.extend((0..num_blocks).map(|b| format!("level{b}")));
    let mut ds = Dataset::new(names);
    let golden_weight = (records.len() / goldens.len().max(1)).clamp(1, 8);
    let mut rows = Vec::with_capacity(records.len() + goldens.len() * golden_weight);
    for r in records {
        let mut row = r.input.values().to_vec();
        row.extend(r.config.levels().iter().map(|&l| l as f64));
        rows.push((row, (r.outer_iters as f64).max(1.0).ln()));
    }
    for g in goldens {
        let mut row = g.input.values().to_vec();
        row.extend(std::iter::repeat_n(0.0, num_blocks));
        let target = (g.outer_iters as f64).max(1.0).ln();
        for _ in 0..golden_weight {
            rows.push((row.clone(), target));
        }
    }
    ds.extend_rows(rows).map_err(OpproxError::from)?;
    Ok(ds)
}

/// Builds one block's local dataset: that block's exhaustive sweep
/// (falling back to all records if the block has no local samples, e.g.
/// after aggressive sub-sampling), targets in transformed space.
fn local_dataset(
    records: &[&SampleRecord],
    block: usize,
    param_names: &[String],
    transform: TargetTransform,
    raw_target: fn(&SampleRecord) -> f64,
) -> Result<Dataset, OpproxError> {
    let mut names = param_names.to_vec();
    names.push(format!("level{block}"));
    let mut ds = Dataset::new(names);
    let local: Vec<&SampleRecord> = records
        .iter()
        .copied()
        .filter(|r| is_local_sample(&r.config, block))
        .collect();
    let pool: &[&SampleRecord] = if local.len() >= 4 { &local } else { records };
    let rows: Vec<(Vec<f64>, f64)> = pool
        .iter()
        .map(|r| {
            let mut row = r.input.values().to_vec();
            row.push(r.config.level(block) as f64);
            (row, transform.forward(raw_target(r)))
        })
        .collect();
    ds.extend_rows(rows).map_err(OpproxError::from)?;
    Ok(ds)
}

/// Builds the combined dataset — local predictions per block plus the
/// estimated iteration count — using one batched prediction pass per
/// model instead of a per-record, per-block scalar loop.
fn combined_dataset(
    records: &[&SampleRecord],
    locals: &[TargetModel],
    iters_model: &TargetModel,
    num_blocks: usize,
    transform: TargetTransform,
    raw_target: fn(&SampleRecord) -> f64,
) -> Result<Dataset, OpproxError> {
    let n = records.len();
    let num_params = records.first().map_or(0, |r| r.input.len());
    let mut names: Vec<String> = (0..num_blocks).map(|b| format!("local{b}")).collect();
    names.push("est_iters".into());
    let mut ds = Dataset::new(names);
    let mut scratch = PredictScratch::default();

    let local_row_len = num_params + 1;
    let mut flat = Vec::with_capacity(n * local_row_len);
    let mut local_preds: Vec<Vec<f64>> = Vec::with_capacity(num_blocks);
    for (b, local) in locals.iter().enumerate() {
        flat.clear();
        for r in records {
            flat.extend_from_slice(r.input.values());
            flat.push(r.config.level(b) as f64);
        }
        let mut out = Vec::with_capacity(n);
        local
            .predict_batch_into(&flat, local_row_len, &mut out, &mut scratch)
            .map_err(OpproxError::from)?;
        local_preds.push(out);
    }

    // The iteration estimator already works in ln space; its raw
    // prediction is the feature.
    let iters_row_len = num_params + num_blocks;
    flat.clear();
    for r in records {
        flat.extend_from_slice(r.input.values());
        flat.extend(r.config.levels().iter().map(|&l| l as f64));
    }
    let mut iters_pred = Vec::with_capacity(n);
    iters_model
        .predict_batch_into(&flat, iters_row_len, &mut iters_pred, &mut scratch)
        .map_err(OpproxError::from)?;

    let mut rows = Vec::with_capacity(n);
    for (i, r) in records.iter().enumerate() {
        let mut row = Vec::with_capacity(num_blocks + 1);
        for preds in &local_preds {
            row.push(preds[i]);
        }
        row.push(iters_pred[i]);
        rows.push((row, transform.forward(raw_target(r))));
    }
    ds.extend_rows(rows).map_err(OpproxError::from)?;
    Ok(ds)
}

/// Observed `(min, max)` of a raw target over the bucket's records.
fn observed_range(records: &[&SampleRecord], f: fn(&SampleRecord) -> f64) -> (f64, f64) {
    records
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), r| {
            (lo.min(f(r)), hi.max(f(r)))
        })
}

/// Observed `(min, max)` of a target in transformed space.
fn target_range(
    records: &[&SampleRecord],
    transform: TargetTransform,
    raw_target: fn(&SampleRecord) -> f64,
) -> (f64, f64) {
    records
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), r| {
            let t = transform.forward(raw_target(r));
            (lo.min(t), hi.max(t))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{collect_training_data, SamplingPlan};
    use opprox_apps::Pso;

    fn trained() -> (Pso, AppModels, TrainingData) {
        let app = Pso::new();
        let inputs = vec![
            InputParams::new(vec![16.0, 3.0]),
            InputParams::new(vec![24.0, 4.0]),
        ];
        let plan = SamplingPlan {
            num_phases: 2,
            sparse_samples: 10,
            whole_run_samples: 0,
            seed: 5,
        };
        let data = collect_training_data(&app, &inputs, &plan).unwrap();
        let models = AppModels::fit(&data, 2, &ModelingOptions::default()).unwrap();
        (app, models, data)
    }

    #[test]
    fn fits_and_predicts_finite_values() {
        let (_, models, _) = trained();
        assert_eq!(models.num_phases(), 2);
        assert_eq!(models.num_blocks(), 3);
        let input = InputParams::new(vec![20.0, 3.0]);
        let cfg = LevelConfig::new(vec![2, 1, 0]);
        for phase in 0..2 {
            let p = models.predict(&input, phase, &cfg).unwrap();
            assert!(p.speedup.is_finite() && p.speedup > 0.0);
            assert!(p.qos.is_finite() && p.qos >= 0.0);
            assert!(p.iters >= 1.0);
        }
    }

    #[test]
    fn conservative_bounds_bracket_point_predictions() {
        let (_, models, _) = trained();
        let input = InputParams::new(vec![16.0, 3.0]);
        let cfg = LevelConfig::new(vec![1, 1, 1]);
        let cons = models.predict(&input, 0, &cfg).unwrap();
        let point = models.predict_point(&input, 0, &cfg).unwrap();
        assert!(cons.qos >= point.qos.max(0.0) - 1e-9);
        assert!(cons.speedup <= point.speedup + 1e-9);
    }

    #[test]
    fn early_phase_predicted_worse_than_late_phase() {
        let (_, models, _) = trained();
        let input = InputParams::new(vec![16.0, 3.0]);
        let cfg = LevelConfig::new(vec![4, 3, 3]);
        let early = models.predict_point(&input, 0, &cfg).unwrap();
        let late = models.predict_point(&input, 1, &cfg).unwrap();
        assert!(
            early.qos > late.qos,
            "models should reproduce phase sensitivity: early {} vs late {}",
            early.qos,
            late.qos
        );
    }

    #[test]
    fn rois_are_positive_and_finite() {
        // With only two phases on a convergence loop the ROI ordering is
        // not guaranteed (the "late" half still contains convergence-
        // critical iterations); the invariant is that every phase has a
        // positive, finite ROI so the budget split is well defined.
        let (_, models, _) = trained();
        let rois = models.rois(&InputParams::new(vec![16.0, 3.0])).unwrap();
        assert_eq!(rois.len(), 2);
        for r in &rois {
            assert!(r.is_finite() && *r > 0.0, "bad ROI set {rois:?}");
        }
    }

    #[test]
    fn models_predict_training_records_reasonably() {
        let (_, models, data) = trained();
        // Combined speedup model should rank-order the training data:
        // compute correlation between predicted and actual speedups.
        let recs: Vec<&SampleRecord> = data.phase_records(1);
        let actual: Vec<f64> = recs.iter().map(|r| r.speedup).collect();
        let mut predicted = Vec::new();
        for r in &recs {
            predicted.push(
                models
                    .predict_point(&r.input, 1, &r.config)
                    .unwrap()
                    .speedup,
            );
        }
        let corr = opprox_linalg::stats::pearson(&actual, &predicted);
        assert!(corr > 0.7, "speedup prediction correlation {corr}");
    }

    #[test]
    fn insufficient_data_is_reported() {
        let data = TrainingData::default();
        assert!(matches!(
            AppModels::fit(&data, 2, &ModelingOptions::default()),
            Err(OpproxError::InsufficientData(_))
        ));
    }

    #[test]
    fn predict_batch_is_bit_identical_to_per_row_predict() {
        let (_, models, _) = trained();
        let input = InputParams::new(vec![20.0, 3.0]);
        // An enumeration-style sweep: every configuration over a level
        // grid, covering all-accurate, single-block, and multi-block rows.
        let mut configs = Vec::new();
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    configs.push(LevelConfig::new(vec![a, b, c]));
                }
            }
        }
        for phase in 0..2 {
            let batch = models.predict_batch(&input, phase, &configs).unwrap();
            assert_eq!(batch.len(), configs.len());
            for (cfg, got) in configs.iter().zip(&batch) {
                let want = models.predict(&input, phase, cfg).unwrap();
                assert_eq!(want.speedup.to_bits(), got.speedup.to_bits(), "{cfg:?}");
                assert_eq!(want.qos.to_bits(), got.qos.to_bits(), "{cfg:?}");
                assert_eq!(want.iters.to_bits(), got.iters.to_bits(), "{cfg:?}");
            }
        }
        assert!(models.predict_batch(&input, 0, &[]).unwrap().is_empty());
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        let app = Pso::new();
        let inputs = vec![
            InputParams::new(vec![16.0, 3.0]),
            InputParams::new(vec![24.0, 4.0]),
        ];
        let plan = SamplingPlan {
            num_phases: 2,
            sparse_samples: 10,
            whole_run_samples: 0,
            seed: 5,
        };
        let data = collect_training_data(&app, &inputs, &plan).unwrap();
        let fit_with = |threads: usize| {
            let options = ModelingOptions {
                threads: Some(threads),
                ..ModelingOptions::default()
            };
            let models = AppModels::fit(&data, 2, &options).unwrap();
            serde_json::to_string(&models).unwrap()
        };
        let sequential = fit_with(1);
        let parallel = fit_with(4);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn metrics_are_populated_but_not_serialized() {
        let (_, models, _) = trained();
        let m = models.metrics();
        assert!(m.fits_attempted > 0);
        assert!(m.cv_solves > 0);
        assert!(m.degrees_tried > 0);
        assert!(m.threads >= 1);
        assert!(m.total_wall_ms > 0.0);
        let json = serde_json::to_string(&models).unwrap();
        assert!(!json.contains("total_wall_ms"));
        let back: AppModels = serde_json::from_str(&json).unwrap();
        assert_eq!(back.metrics(), &ModelingMetrics::default());
        assert_eq!(back.num_phases(), models.num_phases());
    }
}
