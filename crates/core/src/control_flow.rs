//! Control-flow prediction (paper Sec. 3.4).
//!
//! An application's control flow — the sequence of approximable blocks it
//! executes — can change with its input parameters (the paper's FFmpeg
//! example: swapping the deflate and edge-detection filters changes both
//! the block order and the QoS behaviour, Fig. 7/8). OPPROX therefore
//! trains a decision-tree classifier from input parameters to
//! control-flow class, and keeps separate speedup/QoS models per class.

use crate::error::OpproxError;
use crate::sampling::TrainingData;
use opprox_approx_rt::InputParams;
use opprox_ml::dtree::{DecisionTree, TreeParams};
use serde::{Deserialize, Serialize};

/// A trained mapping from input parameters to control-flow class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControlFlowModel {
    /// The distinct call-context signatures, indexed by class id.
    classes: Vec<Vec<usize>>,
    /// Classifier over input parameters; `None` when only one class was
    /// observed (the common case for fixed-pipeline applications).
    tree: Option<DecisionTree>,
}

impl ControlFlowModel {
    /// Learns the model from collected training data.
    ///
    /// # Errors
    ///
    /// Returns [`OpproxError::InsufficientData`] if the data has no golden
    /// runs, and propagates classifier-fitting errors.
    pub fn learn(data: &TrainingData) -> Result<Self, OpproxError> {
        let classes = data.control_flow_classes();
        if classes.is_empty() {
            return Err(OpproxError::InsufficientData(
                "no golden runs to derive control-flow classes from".into(),
            ));
        }
        if classes.len() == 1 {
            return Ok(ControlFlowModel {
                classes,
                tree: None,
            });
        }
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<usize> = Vec::new();
        for g in &data.goldens {
            let class = classes
                .iter()
                .position(|c| *c == g.control_flow)
                .expect("class list derived from the same goldens");
            xs.push(g.input.values().to_vec());
            ys.push(class);
        }
        let tree = DecisionTree::fit(&xs, &ys, TreeParams::default())?;
        Ok(ControlFlowModel {
            classes,
            tree: Some(tree),
        })
    }

    /// Number of distinct control-flow classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The signature of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn signature(&self, class: usize) -> &[usize] {
        &self.classes[class]
    }

    /// Predicts the control-flow class for an input.
    ///
    /// # Errors
    ///
    /// Propagates classifier prediction errors (wrong feature arity).
    pub fn predict(&self, input: &InputParams) -> Result<usize, OpproxError> {
        match &self.tree {
            None => Ok(0),
            Some(tree) => Ok(tree.predict_one(input.values())?),
        }
    }

    /// Classifies an observed signature, if it matches a known class.
    pub fn class_of_signature(&self, signature: &[usize]) -> Option<usize> {
        self.classes.iter().position(|c| c == signature)
    }

    /// The class ids the classifier can actually emit: every decision-tree
    /// leaf label, or just class 0 when no tree was trained. A class in
    /// `0..num_classes` missing from this set is unreachable control flow
    /// (lint `A010` in `opprox-analyze`).
    pub fn reachable_classes(&self) -> Vec<usize> {
        match &self.tree {
            None => vec![0],
            Some(tree) => tree.leaf_labels(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{collect_training_data, SamplingPlan};
    use opprox_approx_rt::ApproxApp;
    use opprox_apps::{Pso, VideoPipeline};

    fn plan() -> SamplingPlan {
        SamplingPlan {
            num_phases: 2,
            sparse_samples: 2,
            whole_run_samples: 0,
            seed: 3,
        }
    }

    #[test]
    fn single_class_app_predicts_class_zero() {
        let app = Pso::new();
        let inputs = vec![
            InputParams::new(vec![16.0, 3.0]),
            InputParams::new(vec![24.0, 4.0]),
        ];
        let data = collect_training_data(&app, &inputs, &plan()).unwrap();
        let model = ControlFlowModel::learn(&data).unwrap();
        assert_eq!(model.num_classes(), 1);
        assert_eq!(
            model.predict(&InputParams::new(vec![20.0, 5.0])).unwrap(),
            0
        );
    }

    #[test]
    fn video_filter_order_creates_two_classes() {
        let app = VideoPipeline::new();
        let inputs = vec![
            InputParams::new(vec![12.0, 4.0, 600.0, 0.0]),
            InputParams::new(vec![12.0, 4.0, 600.0, 1.0]),
            InputParams::new(vec![20.0, 4.0, 600.0, 0.0]),
            InputParams::new(vec![20.0, 4.0, 600.0, 1.0]),
        ];
        let data = collect_training_data(&app, &inputs, &plan()).unwrap();
        let model = ControlFlowModel::learn(&data).unwrap();
        assert_eq!(model.num_classes(), 2);
        // The tree keys on the filter_order parameter.
        let c0 = model
            .predict(&InputParams::new(vec![16.0, 5.0, 600.0, 0.0]))
            .unwrap();
        let c1 = model
            .predict(&InputParams::new(vec![16.0, 5.0, 600.0, 1.0]))
            .unwrap();
        assert_ne!(c0, c1);
        // Predictions agree with the observed signatures.
        let g = app
            .golden(&InputParams::new(vec![16.0, 5.0, 600.0, 1.0]))
            .unwrap();
        assert_eq!(
            model.class_of_signature(&g.log.control_flow_signature()),
            Some(c1)
        );
    }

    #[test]
    fn empty_data_rejected() {
        let data = TrainingData::default();
        assert!(ControlFlowModel::learn(&data).is_err());
    }
}
