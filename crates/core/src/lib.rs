//! OPPROX — phase-aware optimization of approximate programs.
//!
//! This crate is the paper's primary contribution (Mitra et al., CGO
//! 2017): given an application with tunable approximable blocks and a
//! user-provided accuracy specification, OPPROX
//!
//! 1. identifies the computation phases ([`phases`]),
//! 2. collects training data by profiling the application under sampled
//!    approximation settings ([`sampling`]),
//! 3. classifies input-parameter-dependent control flows ([`control_flow`])
//!    and fits per-phase speedup, QoS-degradation, and iteration-count
//!    models ([`modeling`]),
//! 4. splits the error budget across phases in proportion to their return
//!    on investment and solves a per-phase numerical optimization problem
//!    ([`optimizer`]).
//!
//! The phase-agnostic exhaustive-search oracle that prior work used as an
//! idealized baseline lives in [`oracle`]. The end-to-end system — train
//! once, optimize for any budget — is [`pipeline::Opprox`]. Every real
//! execution of an application routes through the shared
//! [`evaluator::EvalEngine`] — a work-stealing pool with an execution
//! cache and per-stage metrics — and optimization requests are expressed
//! with the [`request::OptimizeRequest`] builder.
//!
//! # Example
//!
//! ```no_run
//! use opprox_core::pipeline::{Opprox, TrainingOptions};
//! use opprox_core::request::OptimizeRequest;
//! use opprox_core::spec::AccuracySpec;
//! use opprox_apps::Pso;
//! use opprox_approx_rt::InputParams;
//!
//! let app = Pso::new();
//! let spec = AccuracySpec::new(10.0); // 10% QoS-degradation budget
//! let trained = Opprox::train(&app, &TrainingOptions::default()).unwrap();
//! let outcome = OptimizeRequest::new(InputParams::new(vec![20.0, 4.0]), spec)
//!     .validate_on(&app)
//!     .run(&trained)
//!     .unwrap();
//! println!("predicted speedup {:.2}", outcome.plan.predicted_speedup);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod control;
pub mod control_flow;
pub mod error;
pub mod evaluator;
pub mod fault;
pub mod modeling;
pub mod optimizer;
pub mod oracle;
pub mod phases;
pub mod pipeline;
pub mod pool;
pub mod report;
pub mod request;
pub mod sampling;
pub mod serve;
pub mod spec;
pub(crate) mod sync;
pub mod telemetry;

pub use api::{ApiRequest, ApiResponse, WireCode, API_VERSION};
pub use control::{ControlOptions, ControlOutcome, ControlStepRecord, DriftInjection};
pub use error::OpproxError;
pub use evaluator::{EvalEngine, EvalMetrics};
pub use fault::{FailureKind, FaultPlan, RecoveryPolicy, RobustnessReport};
pub use pipeline::Opprox;
pub use request::{OptimizeOutcome, OptimizePath, OptimizeRequest};
pub use serve::{ServeOptions, ServeState, Server, Submission};
pub use spec::AccuracySpec;
pub use telemetry::{Clock, ManualClock, MonotonicClock, Telemetry, TelemetryReport};
