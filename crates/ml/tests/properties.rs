//! Property-based tests for the ML substrate.

use opprox_ml::crossval::kfold_indices;
use opprox_ml::dtree::{DecisionTree, TreeParams};
use opprox_ml::features::{PolynomialFeatures, Standardizer};
use opprox_ml::m5::{ModelTree, ModelTreeParams};
use opprox_ml::mic::mic;
use opprox_ml::model_select::{AutoFitConfig, TargetModel};
use opprox_ml::polyreg::{PolynomialRegression, PredictScratch};
use opprox_ml::Dataset;
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    (-50.0f64..50.0).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    /// The polynomial expansion of any input always starts with the
    /// constant 1 and has the advertised length.
    #[test]
    fn polynomial_features_shape(
        x in proptest::collection::vec(small_f64(), 1..4),
        degree in 0usize..4,
    ) {
        let pf = PolynomialFeatures::new(x.len(), degree);
        let row = pf.transform_one(&x).unwrap();
        prop_assert_eq!(row.len(), pf.num_outputs());
        prop_assert_eq!(row[0], 1.0);
        // Degree-1 part echoes the raw inputs.
        if degree >= 1 {
            for (i, &xi) in x.iter().enumerate() {
                prop_assert_eq!(row[1 + i], xi);
            }
        }
    }

    /// Standardize-then-fit equals fit on raw data for prediction
    /// purposes: the regression already standardizes internally, so
    /// pre-scaling inputs by a positive constant must not change
    /// training-point predictions.
    #[test]
    fn regression_is_input_scale_equivariant(scale in 0.5f64..20.0) {
        let xs: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let scaled: Vec<Vec<f64>> = xs.iter().map(|r| vec![r[0] * scale]).collect();
        let m_raw = PolynomialRegression::fit(&xs, &ys, 2).unwrap();
        let m_scaled = PolynomialRegression::fit(&scaled, &ys, 2).unwrap();
        for (a, b) in xs.iter().zip(scaled.iter()) {
            let pa = m_raw.predict_one(a).unwrap();
            let pb = m_scaled.predict_one(b).unwrap();
            prop_assert!((pa - pb).abs() < 1e-6, "{pa} vs {pb}");
        }
    }

    /// The standardizer's transform has mean ~0 per column on its own
    /// training data.
    #[test]
    fn standardizer_centres_training_data(
        rows in proptest::collection::vec(
            proptest::collection::vec(small_f64(), 2),
            2..20
        ),
    ) {
        let s = Standardizer::fit(&rows).unwrap();
        let t = s.transform(&rows).unwrap();
        for c in 0..2 {
            let m: f64 = t.iter().map(|r| r[c]).sum::<f64>() / t.len() as f64;
            prop_assert!(m.abs() < 1e-9, "column {c} mean {m}");
        }
    }

    /// k-fold indices always partition 0..n exactly.
    #[test]
    fn kfold_partitions(n in 4usize..40, seed in 0u64..100) {
        let k = 2 + seed as usize % 3;
        prop_assume!(k <= n);
        let folds = kfold_indices(n, k, seed).unwrap();
        let mut all: Vec<usize> = folds.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// A decision tree always reaches 100% accuracy on linearly separable
    /// one-dimensional labels.
    #[test]
    fn dtree_separates_threshold_labels(cut in 2usize..18) {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= cut)).collect();
        let t = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        prop_assert_eq!(t.accuracy(&xs, &ys).unwrap(), 1.0);
    }

    /// MIC is bounded in [0, 1] for arbitrary paired data.
    #[test]
    fn mic_is_bounded(
        xs in proptest::collection::vec(small_f64(), 8..64),
        seed in 0u64..50,
    ) {
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x * ((seed + i as u64) % 3) as f64 + i as f64)
            .collect();
        let v = mic(&xs, &ys).unwrap();
        prop_assert!((0.0..=1.0).contains(&v), "mic {v}");
    }

    /// Batched prediction is bit-identical to per-row prediction on both
    /// the raw regression and the full TargetModel (Single structure),
    /// for arbitrary query points.
    #[test]
    fn batched_prediction_is_bit_identical(
        queries in proptest::collection::vec(
            proptest::collection::vec(small_f64(), 2),
            1..24
        ),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let mut ds = Dataset::new(vec!["x".into(), "z".into()]);
        for i in 0..40 {
            let x = i as f64 * 0.25;
            let z = ((i * 7) % 11) as f64 / 11.0;
            ds.push(vec![x, z], a * x * x + b * z + 1.0).unwrap();
        }
        let cfg = AutoFitConfig { mic_threshold: None, ..AutoFitConfig::default() };
        let model = TargetModel::fit(&ds, &cfg).unwrap();
        let flat: Vec<f64> = queries.iter().flatten().copied().collect();
        let mut out = Vec::new();
        let mut halves = Vec::new();
        let mut scratch = PredictScratch::default();
        model
            .predict_batch_with_band_into(&flat, 2, &mut out, &mut halves, &mut scratch)
            .unwrap();
        prop_assert_eq!(out.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let single = model.predict(q).unwrap();
            prop_assert_eq!(single.to_bits(), out[i].to_bits());
            let upper = model.predict_upper(q).unwrap();
            prop_assert_eq!(upper.to_bits(), (out[i] + halves[i]).to_bits());
            let lower = model.predict_lower(q).unwrap();
            prop_assert_eq!(lower.to_bits(), (out[i] - halves[i]).to_bits());
        }
    }

    /// Model-tree predictions on training points never stray far outside
    /// the training target range (leaves are local linear fits).
    #[test]
    fn model_tree_predictions_stay_near_target_range(slope in -5.0f64..5.0) {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| slope * r[0]).collect();
        let t = ModelTree::fit(&xs, &ys, ModelTreeParams::default()).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1.0);
        for (x, _) in xs.iter().zip(ys.iter()) {
            let p = t.predict_one(x).unwrap();
            prop_assert!(p >= lo - 0.5 * span && p <= hi + 0.5 * span, "{p}");
        }
    }
}
