//! A small named-column dataset container shared by the modeling layers.

use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// A tabular dataset with named feature columns and a single target.
///
/// # Example
///
/// ```
/// use opprox_ml::Dataset;
///
/// let mut ds = Dataset::new(vec!["al".into(), "mesh".into()]);
/// ds.push(vec![1.0, 30.0], 0.05).unwrap();
/// ds.push(vec![2.0, 30.0], 0.09).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.column(0), vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature names.
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            rows: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Appends one observation.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if the row length differs from
    /// the number of feature names.
    pub fn push(&mut self, row: Vec<f64>, target: f64) -> Result<(), MlError> {
        if row.len() != self.feature_names.len() {
            return Err(MlError::FeatureMismatch {
                expected: self.feature_names.len(),
                actual: row.len(),
            });
        }
        self.rows.push(row);
        self.targets.push(target);
        Ok(())
    }

    /// Bulk-appends observations. Every row's arity is validated before
    /// any mutation, so a failed call leaves the dataset unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if any row length differs from
    /// the number of feature names.
    pub fn extend_rows(&mut self, rows: Vec<(Vec<f64>, f64)>) -> Result<(), MlError> {
        let width = self.feature_names.len();
        if let Some((bad, _)) = rows.iter().find(|(r, _)| r.len() != width) {
            return Err(MlError::FeatureMismatch {
                expected: width,
                actual: bad.len(),
            });
        }
        self.rows.reserve(rows.len());
        self.targets.reserve(rows.len());
        for (row, target) in rows {
            self.rows.push(row);
            self.targets.push(target);
        }
        Ok(())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no observations.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// All feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Extracts column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.feature_names.len(), "column {c} out of range");
        self.rows.iter().map(|r| r[c]).collect()
    }

    /// Returns a new dataset restricted to the given feature columns
    /// (e.g. after MIC filtering).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_features(&self, keep: &[usize]) -> Dataset {
        let feature_names = keep
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|r| keep.iter().map(|&c| r[c]).collect())
            .collect();
        Dataset {
            feature_names,
            rows,
            targets: self.targets.clone(),
        }
    }

    /// Splits into (train, test) by index parity of a deterministic
    /// interleave: even positions go to train, odd to test. Produces the
    /// paper's "randomly partitioned data into two equal-sized
    /// non-overlapping parts" evaluation split in a reproducible way when
    /// the row order is already randomized.
    pub fn split_half(&self) -> (Dataset, Dataset) {
        let mut train = Dataset::new(self.feature_names.clone());
        let mut test = Dataset::new(self.feature_names.clone());
        for (i, (row, &t)) in self.rows.iter().zip(self.targets.iter()).enumerate() {
            let dst = if i % 2 == 0 { &mut train } else { &mut test };
            dst.rows.push(row.clone());
            dst.targets.push(t);
        }
        (train, test)
    }

    /// Returns the subset of rows whose column `c` value lies in
    /// `[lo, hi)` — used for sub-model splitting (paper Sec. 3.7).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn filter_by_range(&self, c: usize, lo: f64, hi: f64) -> Dataset {
        assert!(c < self.feature_names.len(), "column {c} out of range");
        let mut out = Dataset::new(self.feature_names.clone());
        for (row, &t) in self.rows.iter().zip(self.targets.iter()) {
            if row[c] >= lo && row[c] < hi {
                out.rows.push(row.clone());
                out.targets.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..6 {
            ds.push(vec![i as f64, (i * 2) as f64], i as f64 * 10.0)
                .unwrap();
        }
        ds
    }

    #[test]
    fn push_validates_arity() {
        let mut ds = Dataset::new(vec!["a".into()]);
        assert!(ds.push(vec![1.0, 2.0], 0.0).is_err());
        assert!(ds.push(vec![1.0], 0.0).is_ok());
        assert_eq!(ds.len(), 1);
        assert!(!ds.is_empty());
    }

    #[test]
    fn extend_rows_bulk_appends_and_validates() {
        let mut ds = sample();
        ds.extend_rows(vec![(vec![6.0, 12.0], 60.0), (vec![7.0, 14.0], 70.0)])
            .unwrap();
        assert_eq!(ds.len(), 8);
        assert_eq!(ds.targets()[7], 70.0);
        // A bad row anywhere in the batch rejects the whole batch.
        let before = ds.clone();
        assert!(ds
            .extend_rows(vec![(vec![8.0, 16.0], 80.0), (vec![9.0], 90.0)])
            .is_err());
        assert_eq!(ds, before);
    }

    #[test]
    fn column_extraction() {
        let ds = sample();
        assert_eq!(ds.column(1), vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn select_features_projects_rows_and_names() {
        let ds = sample();
        let proj = ds.select_features(&[1]);
        assert_eq!(proj.feature_names(), &["b".to_string()]);
        assert_eq!(proj.rows()[2], vec![4.0]);
        assert_eq!(proj.targets(), ds.targets());
    }

    #[test]
    fn split_half_partitions_rows() {
        let ds = sample();
        let (train, test) = ds.split_half();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 3);
        assert_eq!(train.rows()[0], ds.rows()[0]);
        assert_eq!(test.rows()[0], ds.rows()[1]);
    }

    #[test]
    fn filter_by_range_selects_half_open_interval() {
        let ds = sample();
        let f = ds.filter_by_range(0, 2.0, 4.0);
        assert_eq!(f.len(), 2);
        assert_eq!(f.rows()[0][0], 2.0);
        assert_eq!(f.rows()[1][0], 3.0);
    }
}
