//! Automatic model selection: MIC filtering, degree escalation, and
//! sub-model splitting (paper Sec. 3.7, "Improving Modeling Accuracy").
//!
//! The paper's recipe, reproduced here:
//!
//! 1. Filter input features with no MIC association to the target.
//! 2. Gradually increase the polynomial degree until 10-fold
//!    cross-validation reaches a good R² (the paper uses > 0.9 and found
//!    degrees 2–6 sufficient across its applications).
//! 3. If no single model reaches the target, split the value range of a
//!    feature into `k` magnitude-ordered subsets and learn one sub-model
//!    per subset.
//! 4. Wrap the final model in an empirical confidence band (p = 0.99) so
//!    the optimizer can use conservative bounds.

use crate::confidence::ConfidenceBand;
use crate::crossval::kfold_indices;
use crate::dataset::Dataset;
use crate::error::MlError;
use crate::mic::filter_features_by_mic;
use crate::polyreg::PolynomialRegression;
use opprox_linalg::stats::r2_score;
use serde::{Deserialize, Serialize};

/// Configuration for [`TargetModel::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoFitConfig {
    /// Smallest polynomial degree to try (paper starts at 2).
    pub min_degree: usize,
    /// Largest polynomial degree to try (paper observed up to 6).
    pub max_degree: usize,
    /// Cross-validated R² considered "good" (paper: > 0.9).
    pub target_r2: f64,
    /// Number of cross-validation folds (paper: 10).
    pub folds: usize,
    /// Confidence level for the empirical error band (paper: 0.99).
    pub confidence_level: f64,
    /// Maximum number of sub-models when splitting a feature's range.
    pub max_submodels: usize,
    /// MIC threshold below which a feature is dropped; `None` disables
    /// MIC filtering.
    pub mic_threshold: Option<f64>,
    /// Seed for the deterministic fold shuffle.
    pub seed: u64,
}

impl Default for AutoFitConfig {
    fn default() -> Self {
        AutoFitConfig {
            min_degree: 2,
            max_degree: 6,
            target_r2: 0.9,
            folds: 10,
            confidence_level: 0.99,
            max_submodels: 4,
            mic_threshold: Some(0.15),
            seed: 0x0bb0c5,
        }
    }
}

/// One fitted polynomial model with its cross-validated score and
/// confidence band.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleModel {
    regression: PolynomialRegression,
    band: ConfidenceBand,
    cv_r2: f64,
}

impl SingleModel {
    /// Point prediction for a (feature-selected) row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on a wrong-length row.
    pub fn predict(&self, row: &[f64]) -> Result<f64, MlError> {
        self.regression.predict_one(row)
    }

    /// The model's confidence band.
    pub fn band(&self) -> &ConfidenceBand {
        &self.band
    }

    /// Cross-validated R² achieved during fitting.
    pub fn cv_r2(&self) -> f64 {
        self.cv_r2
    }

    /// Degree of the underlying polynomial.
    pub fn degree(&self) -> usize {
        self.regression.degree()
    }
}

/// The fitted structure: either one global model or range-split
/// sub-models over a single feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Structure {
    Single(SingleModel),
    Split {
        /// Index (within the *selected* features) of the split feature.
        feature: usize,
        /// Ascending boundaries; row goes to sub-model `i` when its value
        /// is below `boundaries[i]`, and to the last sub-model otherwise.
        boundaries: Vec<f64>,
        models: Vec<SingleModel>,
    },
}

/// A complete, self-describing model for one target (speedup, QoS
/// degradation, or iteration count) over the full feature row.
///
/// `TargetModel` remembers which original columns survived MIC filtering,
/// so prediction always takes a *full* feature row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetModel {
    kept_features: Vec<usize>,
    feature_names: Vec<String>,
    structure: Structure,
    overall_cv_r2: f64,
    reached_target: bool,
}

impl TargetModel {
    /// Fits a model per the paper's recipe (see module docs). Never fails
    /// on merely noisy data: when the target R² is unreachable, the best
    /// model found is returned with [`TargetModel::reached_target`] set to
    /// `false`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] when the dataset has fewer
    /// than four rows or degenerate shapes.
    pub fn fit(dataset: &Dataset, config: &AutoFitConfig) -> Result<Self, MlError> {
        if dataset.len() < 4 {
            return Err(MlError::InvalidTrainingData(format!(
                "need at least 4 rows to fit a model, got {}",
                dataset.len()
            )));
        }
        // Step 1: MIC feature filtering.
        let all: Vec<usize> = (0..dataset.feature_names().len()).collect();
        let kept = match config.mic_threshold {
            Some(t) => {
                let keep = filter_features_by_mic(dataset.rows(), dataset.targets(), t)?;
                if keep.is_empty() {
                    all.clone()
                } else {
                    keep
                }
            }
            None => all.clone(),
        };
        let selected = dataset.select_features(&kept);
        let feature_names = selected.feature_names().to_vec();

        // Step 2: degree escalation on a single global model.
        let (best_single, best_r2) = fit_best_degree(&selected, config)?;
        if best_r2 >= config.target_r2 {
            return Ok(TargetModel {
                kept_features: kept,
                feature_names,
                structure: Structure::Single(best_single),
                overall_cv_r2: best_r2,
                reached_target: true,
            });
        }

        // Step 3: sub-model splitting on the widest-ranged feature.
        if let Some((structure, split_r2)) = try_split(&selected, config)? {
            if split_r2 > best_r2 {
                return Ok(TargetModel {
                    kept_features: kept,
                    feature_names,
                    structure,
                    overall_cv_r2: split_r2,
                    reached_target: split_r2 >= config.target_r2,
                });
            }
        }

        Ok(TargetModel {
            kept_features: kept,
            feature_names,
            structure: Structure::Single(best_single),
            overall_cv_r2: best_r2,
            reached_target: false,
        })
    }

    /// Point prediction for a full feature row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if the row is shorter than the
    /// highest kept feature index.
    pub fn predict(&self, full_row: &[f64]) -> Result<f64, MlError> {
        let row = self.project(full_row)?;
        match &self.structure {
            Structure::Single(m) => m.predict(&row),
            Structure::Split {
                feature,
                boundaries,
                models,
            } => {
                let v = row[*feature];
                let mut idx = boundaries.iter().filter(|&&b| v >= b).count();
                if idx >= models.len() {
                    idx = models.len() - 1;
                }
                models[idx].predict(&row)
            }
        }
    }

    /// Conservative upper bound (prediction plus the p-quantile error) —
    /// used for QoS degradation.
    ///
    /// # Errors
    ///
    /// Same as [`TargetModel::predict`].
    pub fn predict_upper(&self, full_row: &[f64]) -> Result<f64, MlError> {
        let p = self.predict(full_row)?;
        Ok(self.active_band(full_row)?.upper(p))
    }

    /// Conservative lower bound (prediction minus the p-quantile error) —
    /// used for speedup.
    ///
    /// # Errors
    ///
    /// Same as [`TargetModel::predict`].
    pub fn predict_lower(&self, full_row: &[f64]) -> Result<f64, MlError> {
        let p = self.predict(full_row)?;
        Ok(self.active_band(full_row)?.lower(p))
    }

    /// The cross-validated R² of the final structure.
    pub fn cv_r2(&self) -> f64 {
        self.overall_cv_r2
    }

    /// Whether the configured target R² was reached.
    pub fn reached_target(&self) -> bool {
        self.reached_target
    }

    /// Indices of the original feature columns the model uses.
    pub fn kept_features(&self) -> &[usize] {
        &self.kept_features
    }

    /// Names of the kept features.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Whether the fitted structure uses range-split sub-models.
    pub fn is_split(&self) -> bool {
        matches!(self.structure, Structure::Split { .. })
    }

    fn project(&self, full_row: &[f64]) -> Result<Vec<f64>, MlError> {
        let max = self.kept_features.iter().copied().max().unwrap_or(0);
        if full_row.len() <= max {
            return Err(MlError::FeatureMismatch {
                expected: max + 1,
                actual: full_row.len(),
            });
        }
        Ok(self.kept_features.iter().map(|&c| full_row[c]).collect())
    }

    fn active_band(&self, full_row: &[f64]) -> Result<&ConfidenceBand, MlError> {
        let row = self.project(full_row)?;
        Ok(match &self.structure {
            Structure::Single(m) => m.band(),
            Structure::Split {
                feature,
                boundaries,
                models,
            } => {
                let v = row[*feature];
                let mut idx = boundaries.iter().filter(|&&b| v >= b).count();
                if idx >= models.len() {
                    idx = models.len() - 1;
                }
                models[idx].band()
            }
        })
    }
}

/// Escalates the degree and returns the best single model with its CV R².
fn fit_best_degree(
    dataset: &Dataset,
    config: &AutoFitConfig,
) -> Result<(SingleModel, f64), MlError> {
    let n = dataset.len();
    let folds = config.folds.clamp(2, n);
    let mut best: Option<(SingleModel, f64)> = None;
    for degree in config.min_degree..=config.max_degree {
        let (cv_r2, residuals) = cv_with_residuals(
            dataset.rows(),
            dataset.targets(),
            degree,
            folds,
            config.seed,
        )?;
        let improved = best.as_ref().is_none_or(|(_, r)| cv_r2 > *r);
        if improved {
            let regression = PolynomialRegression::fit(dataset.rows(), dataset.targets(), degree)?;
            let band = ConfidenceBand::from_residuals(&residuals, config.confidence_level)?;
            best = Some((
                SingleModel {
                    regression,
                    band,
                    cv_r2,
                },
                cv_r2,
            ));
        }
        if cv_r2 >= config.target_r2 {
            break;
        }
    }
    best.ok_or_else(|| MlError::InvalidTrainingData("no degree could be fitted".into()))
}

/// Runs k-fold CV collecting held-out residuals alongside the mean R².
fn cv_with_residuals(
    xs: &[Vec<f64>],
    ys: &[f64],
    degree: usize,
    k: usize,
    seed: u64,
) -> Result<(f64, Vec<f64>), MlError> {
    let folds = kfold_indices(xs.len(), k, seed)?;
    let mut fold_r2 = Vec::with_capacity(k);
    let mut residuals = Vec::with_capacity(xs.len());
    for test_fold in &folds {
        let test_set: std::collections::HashSet<usize> = test_fold.iter().copied().collect();
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for i in 0..xs.len() {
            if test_set.contains(&i) {
                test_x.push(xs[i].clone());
                test_y.push(ys[i]);
            } else {
                train_x.push(xs[i].clone());
                train_y.push(ys[i]);
            }
        }
        let model = PolynomialRegression::fit(&train_x, &train_y, degree)?;
        let preds = model.predict(&test_x)?;
        for (p, t) in preds.iter().zip(test_y.iter()) {
            residuals.push(t - p);
        }
        fold_r2.push(r2_score(&test_y, &preds));
    }
    let mean = fold_r2.iter().sum::<f64>() / fold_r2.len() as f64;
    Ok((mean, residuals))
}

/// Attempts range-splitting each feature into 2..=max_submodels subsets
/// and returns the best split structure with its weighted CV R².
fn try_split(
    dataset: &Dataset,
    config: &AutoFitConfig,
) -> Result<Option<(Structure, f64)>, MlError> {
    let dim = dataset.feature_names().len();
    let mut best: Option<(Structure, f64)> = None;
    for feature in 0..dim {
        let mut vals = dataset.column(feature);
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for k in 2..=config.max_submodels {
            if vals.len() < k {
                break;
            }
            // Magnitude-ordered equal-count boundaries over distinct values.
            let boundaries: Vec<f64> = (1..k)
                .map(|i| {
                    let pos = i * vals.len() / k;
                    vals[pos.min(vals.len() - 1)]
                })
                .collect();
            let mut models = Vec::with_capacity(k);
            let mut weighted_r2 = 0.0;
            let mut total = 0usize;
            let mut feasible = true;
            for sub in 0..k {
                let lo = if sub == 0 {
                    f64::NEG_INFINITY
                } else {
                    boundaries[sub - 1]
                };
                let hi = if sub == k - 1 {
                    f64::INFINITY
                } else {
                    boundaries[sub]
                };
                let subset = dataset.filter_by_range(feature, lo, hi);
                if subset.len() < 4 {
                    feasible = false;
                    break;
                }
                let (m, r2) = fit_best_degree(&subset, config)?;
                weighted_r2 += r2 * subset.len() as f64;
                total += subset.len();
                models.push(m);
            }
            if !feasible || total == 0 {
                continue;
            }
            let score = weighted_r2 / total as f64;
            if best.as_ref().is_none_or(|(_, r)| score > *r) {
                best = Some((
                    Structure::Split {
                        feature,
                        boundaries,
                        models,
                    },
                    score,
                ));
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["x".into(), "noise".into()]);
        for i in 0..n {
            let x = i as f64 * 0.2;
            // A deterministic pseudo-noise column that MIC should drop.
            let noise = ((i * 2654435761) % 97) as f64 / 97.0;
            ds.push(vec![x, noise], 1.0 + 2.0 * x + 0.5 * x * x)
                .unwrap();
        }
        ds
    }

    #[test]
    fn fits_quadratic_and_reaches_target() {
        let ds = quadratic_dataset(80);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        assert!(model.reached_target());
        assert!(model.cv_r2() > 0.9);
        let p = model.predict(&[3.0, 0.5]).unwrap();
        let truth = 1.0 + 6.0 + 4.5;
        assert!((p - truth).abs() < 0.5, "{p} vs {truth}");
    }

    #[test]
    fn mic_filter_drops_noise_feature() {
        let ds = quadratic_dataset(80);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        assert_eq!(model.kept_features(), &[0]);
        assert_eq!(model.feature_names(), &["x".to_string()]);
    }

    #[test]
    fn conservative_bounds_bracket_prediction() {
        let ds = quadratic_dataset(60);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        let row = [2.0, 0.1];
        let p = model.predict(&row).unwrap();
        assert!(model.predict_lower(&row).unwrap() <= p);
        assert!(model.predict_upper(&row).unwrap() >= p);
    }

    #[test]
    fn degree_escalation_stops_at_first_good_degree() {
        let ds = quadratic_dataset(60);
        let cfg = AutoFitConfig {
            mic_threshold: None,
            ..AutoFitConfig::default()
        };
        let model = TargetModel::fit(&ds, &cfg).unwrap();
        // A quadratic target should not need degree > 2.
        match &model.structure {
            Structure::Single(m) => assert_eq!(m.degree(), 2),
            _ => panic!("expected single model"),
        }
    }

    #[test]
    fn piecewise_target_triggers_split_or_best_effort() {
        // Discontinuous target: very hard for one low-degree polynomial.
        let mut ds = Dataset::new(vec!["x".into()]);
        for i in 0..120 {
            let x = i as f64 * 0.1;
            let y = if x < 6.0 { x } else { 100.0 + x * x };
            ds.push(vec![x], y).unwrap();
        }
        let cfg = AutoFitConfig {
            max_degree: 3,
            mic_threshold: None,
            ..AutoFitConfig::default()
        };
        let model = TargetModel::fit(&ds, &cfg).unwrap();
        // Either the split reached the target or we got a best-effort fit;
        // in both cases prediction should roughly track the two regimes.
        let low = model.predict(&[2.0]).unwrap();
        let high = model.predict(&[10.0]).unwrap();
        assert!(high > low + 50.0, "low={low} high={high}");
    }

    #[test]
    fn rejects_tiny_dataset() {
        let mut ds = Dataset::new(vec!["x".into()]);
        ds.push(vec![1.0], 1.0).unwrap();
        assert!(TargetModel::fit(&ds, &AutoFitConfig::default()).is_err());
    }

    #[test]
    fn predict_checks_row_length() {
        let ds = quadratic_dataset(40);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        assert!(model.predict(&[]).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let ds = quadratic_dataset(50);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: TargetModel = serde_json::from_str(&json).unwrap();
        let row = [1.5, 0.3];
        assert_eq!(model.predict(&row).unwrap(), back.predict(&row).unwrap());
    }
}
