//! Automatic model selection: MIC filtering, degree escalation, and
//! sub-model splitting (paper Sec. 3.7, "Improving Modeling Accuracy").
//!
//! The paper's recipe, reproduced here:
//!
//! 1. Filter input features with no MIC association to the target.
//! 2. Gradually increase the polynomial degree until 10-fold
//!    cross-validation reaches a good R² (the paper uses > 0.9 and found
//!    degrees 2–6 sufficient across its applications).
//! 3. If no single model reaches the target, split the value range of a
//!    feature into `k` magnitude-ordered subsets and learn one sub-model
//!    per subset.
//! 4. Wrap the final model in an empirical confidence band (p = 0.99) so
//!    the optimizer can use conservative bounds.

use crate::confidence::ConfidenceBand;
use crate::crossval::cross_validate_degree;
use crate::dataset::Dataset;
use crate::error::MlError;
use crate::fitmetrics::FitCounters;
use crate::mic::filter_features_by_mic;
use crate::polyreg::{PolynomialRegression, PredictScratch, DEFAULT_RIDGE};
use serde::{Deserialize, Serialize};

/// Configuration for [`TargetModel::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoFitConfig {
    /// Smallest polynomial degree to try (paper starts at 2).
    pub min_degree: usize,
    /// Largest polynomial degree to try (paper observed up to 6).
    pub max_degree: usize,
    /// Cross-validated R² considered "good" (paper: > 0.9).
    pub target_r2: f64,
    /// Number of cross-validation folds (paper: 10).
    pub folds: usize,
    /// Confidence level for the empirical error band (paper: 0.99).
    pub confidence_level: f64,
    /// Maximum number of sub-models when splitting a feature's range.
    pub max_submodels: usize,
    /// MIC threshold below which a feature is dropped; `None` disables
    /// MIC filtering.
    pub mic_threshold: Option<f64>,
    /// Seed for the deterministic fold shuffle.
    pub seed: u64,
}

impl Default for AutoFitConfig {
    fn default() -> Self {
        AutoFitConfig {
            min_degree: 2,
            max_degree: 6,
            target_r2: 0.9,
            folds: 10,
            confidence_level: 0.99,
            max_submodels: 4,
            mic_threshold: Some(0.15),
            seed: 0x0bb0c5,
        }
    }
}

/// One fitted polynomial model with its cross-validated score and
/// confidence band.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleModel {
    regression: PolynomialRegression,
    band: ConfidenceBand,
    cv_r2: f64,
}

impl SingleModel {
    /// Point prediction for a (feature-selected) row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on a wrong-length row.
    pub fn predict(&self, row: &[f64]) -> Result<f64, MlError> {
        self.regression.predict_one(row)
    }

    /// The model's confidence band.
    pub fn band(&self) -> &ConfidenceBand {
        &self.band
    }

    /// Cross-validated R² achieved during fitting.
    pub fn cv_r2(&self) -> f64 {
        self.cv_r2
    }

    /// Degree of the underlying polynomial.
    pub fn degree(&self) -> usize {
        self.regression.degree()
    }

    /// The fitted regression coefficients (integrity checks inspect these
    /// for non-finite values after deserializing untrusted artifacts).
    pub fn coefficients(&self) -> &[f64] {
        self.regression.coefficients()
    }
}

/// The fitted structure: either one global model or range-split
/// sub-models over a single feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Structure {
    Single(SingleModel),
    Split {
        /// Index (within the *selected* features) of the split feature.
        feature: usize,
        /// Ascending boundaries; row goes to sub-model `i` when its value
        /// is below `boundaries[i]`, and to the last sub-model otherwise.
        boundaries: Vec<f64>,
        models: Vec<SingleModel>,
    },
}

/// Result of [`TargetModel::predict_interval`]: an enclosure of the point
/// prediction over a feature box, plus the range of confidence-band
/// half-widths the box can route to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalPrediction {
    /// Lower bound of the point prediction over the box.
    pub lo: f64,
    /// Upper bound of the point prediction over the box.
    pub hi: f64,
    /// Smallest reachable confidence-band half-width.
    pub half_lo: f64,
    /// Largest reachable confidence-band half-width.
    pub half_hi: f64,
}

/// A complete, self-describing model for one target (speedup, QoS
/// degradation, or iteration count) over the full feature row.
///
/// `TargetModel` remembers which original columns survived MIC filtering,
/// so prediction always takes a *full* feature row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetModel {
    kept_features: Vec<usize>,
    feature_names: Vec<String>,
    structure: Structure,
    overall_cv_r2: f64,
    reached_target: bool,
}

impl TargetModel {
    /// Fits a model per the paper's recipe (see module docs). Never fails
    /// on merely noisy data: when the target R² is unreachable, the best
    /// model found is returned with [`TargetModel::reached_target`] set to
    /// `false`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] when the dataset has fewer
    /// than four rows or degenerate shapes.
    pub fn fit(dataset: &Dataset, config: &AutoFitConfig) -> Result<Self, MlError> {
        Self::fit_with_counters(dataset, config, &FitCounters::new())
    }

    /// Like [`TargetModel::fit`], accumulating fitting statistics into the
    /// given shared counters (see [`FitCounters`]).
    ///
    /// # Errors
    ///
    /// Same as [`TargetModel::fit`].
    pub fn fit_with_counters(
        dataset: &Dataset,
        config: &AutoFitConfig,
        counters: &FitCounters,
    ) -> Result<Self, MlError> {
        if dataset.len() < 4 {
            return Err(MlError::InvalidTrainingData(format!(
                "need at least 4 rows to fit a model, got {}",
                dataset.len()
            )));
        }
        counters.record_fit();
        // Step 1: MIC feature filtering.
        let dim = dataset.feature_names().len();
        let kept = match config.mic_threshold {
            Some(t) => {
                let keep = filter_features_by_mic(dataset.rows(), dataset.targets(), t)?;
                if keep.is_empty() {
                    (0..dim).collect()
                } else {
                    keep
                }
            }
            None => (0..dim).collect::<Vec<usize>>(),
        };
        // Projecting is a deep copy of every row; skip it when the filter
        // kept every column in order (the common case for small rows).
        let selected_owned;
        let selected: &Dataset =
            if kept.len() == dim && kept.iter().enumerate().all(|(i, &c)| i == c) {
                dataset
            } else {
                selected_owned = dataset.select_features(&kept);
                &selected_owned
            };
        let feature_names = selected.feature_names().to_vec();

        // Step 2: degree escalation on a single global model.
        let (best_single, best_r2) = fit_best_degree(selected, config, counters)?;
        if best_r2 >= config.target_r2 {
            return Ok(TargetModel {
                kept_features: kept,
                feature_names,
                structure: Structure::Single(best_single),
                overall_cv_r2: best_r2,
                reached_target: true,
            });
        }

        // Step 3: sub-model splitting on the widest-ranged feature.
        if let Some((structure, split_r2)) = try_split(selected, config, counters)? {
            if split_r2 > best_r2 {
                return Ok(TargetModel {
                    kept_features: kept,
                    feature_names,
                    structure,
                    overall_cv_r2: split_r2,
                    reached_target: split_r2 >= config.target_r2,
                });
            }
        }

        Ok(TargetModel {
            kept_features: kept,
            feature_names,
            structure: Structure::Single(best_single),
            overall_cv_r2: best_r2,
            reached_target: false,
        })
    }

    /// Point prediction for a full feature row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if the row is shorter than the
    /// highest kept feature index.
    pub fn predict(&self, full_row: &[f64]) -> Result<f64, MlError> {
        let row = self.project(full_row)?;
        match &self.structure {
            Structure::Single(m) => m.predict(&row),
            Structure::Split {
                feature,
                boundaries,
                models,
            } => {
                let v = row[*feature];
                let mut idx = boundaries.iter().filter(|&&b| v >= b).count();
                if idx >= models.len() {
                    idx = models.len() - 1;
                }
                models[idx].predict(&row)
            }
        }
    }

    /// Conservative upper bound (prediction plus the p-quantile error) —
    /// used for QoS degradation.
    ///
    /// # Errors
    ///
    /// Same as [`TargetModel::predict`].
    pub fn predict_upper(&self, full_row: &[f64]) -> Result<f64, MlError> {
        let p = self.predict(full_row)?;
        Ok(self.active_band(full_row)?.upper(p))
    }

    /// Conservative lower bound (prediction minus the p-quantile error) —
    /// used for speedup.
    ///
    /// # Errors
    ///
    /// Same as [`TargetModel::predict`].
    pub fn predict_lower(&self, full_row: &[f64]) -> Result<f64, MlError> {
        let p = self.predict(full_row)?;
        Ok(self.active_band(full_row)?.lower(p))
    }

    /// Interval enclosure of [`TargetModel::predict`] over the
    /// axis-aligned box `[full_lo, full_hi]` of full feature rows,
    /// together with the range of confidence-band half-widths reachable
    /// inside the box.
    ///
    /// For a range-split structure the routing feature's interval selects
    /// every reachable sub-model (routing is monotone in the feature), and
    /// the result is the union of the sub-model enclosures. The half-width
    /// range lets callers bound `predict ± half` conservatively:
    /// `lo + half_lo` never exceeds any reachable upper-band prediction,
    /// `hi + half_hi` is never below one, and symmetrically for the lower
    /// band.
    ///
    /// # Errors
    ///
    /// Same as [`TargetModel::predict`].
    pub fn predict_interval(
        &self,
        full_lo: &[f64],
        full_hi: &[f64],
    ) -> Result<IntervalPrediction, MlError> {
        let row_lo = self.project(full_lo)?;
        let mut row_hi = self.project(full_hi)?;
        for (a, b) in row_lo.iter().zip(row_hi.iter_mut()) {
            if a > b {
                *b = *a;
            }
        }
        match &self.structure {
            Structure::Single(m) => {
                let (lo, hi) = m.regression.predict_interval(&row_lo, &row_hi)?;
                Ok(IntervalPrediction {
                    lo,
                    hi,
                    half_lo: m.band.half_width(),
                    half_hi: m.band.half_width(),
                })
            }
            Structure::Split {
                feature,
                boundaries,
                models,
            } => {
                let route = |v: f64| -> usize {
                    boundaries
                        .iter()
                        .filter(|&&b| v >= b)
                        .count()
                        .min(models.len() - 1)
                };
                let first = route(row_lo[*feature]);
                let last = route(row_hi[*feature]).max(first);
                let mut out: Option<IntervalPrediction> = None;
                for m in &models[first..=last] {
                    let (lo, hi) = m.regression.predict_interval(&row_lo, &row_hi)?;
                    let half = m.band.half_width();
                    out = Some(match out {
                        None => IntervalPrediction {
                            lo,
                            hi,
                            half_lo: half,
                            half_hi: half,
                        },
                        Some(p) => IntervalPrediction {
                            lo: p.lo.min(lo),
                            hi: p.hi.max(hi),
                            half_lo: p.half_lo.min(half),
                            half_hi: p.half_hi.max(half),
                        },
                    });
                }
                Ok(out.expect("split structure has at least one sub-model"))
            }
        }
    }

    /// The cross-validated R² of the final structure.
    pub fn cv_r2(&self) -> f64 {
        self.overall_cv_r2
    }

    /// Whether the configured target R² was reached.
    pub fn reached_target(&self) -> bool {
        self.reached_target
    }

    /// Indices of the original feature columns the model uses.
    pub fn kept_features(&self) -> &[usize] {
        &self.kept_features
    }

    /// Names of the kept features.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Whether the fitted structure uses range-split sub-models.
    pub fn is_split(&self) -> bool {
        matches!(self.structure, Structure::Split { .. })
    }

    /// Every fitted [`SingleModel`] in this target model — the single
    /// global model, or each range-split sub-model. Integrity checks walk
    /// these to vet coefficients and confidence bands without depending on
    /// the (private) structure layout.
    pub fn submodels(&self) -> Vec<&SingleModel> {
        match &self.structure {
            Structure::Single(m) => vec![m],
            Structure::Split { models, .. } => models.iter().collect(),
        }
    }

    /// Batched point predictions for a slice of full feature rows.
    ///
    /// Bit-identical to calling [`TargetModel::predict`] per row.
    ///
    /// # Errors
    ///
    /// Same as [`TargetModel::predict`].
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let mut out = Vec::with_capacity(rows.len());
        let mut scratch = PredictScratch::default();
        for row in rows {
            self.predict_batch_into(row, row.len(), &mut out, &mut scratch)?;
        }
        Ok(out)
    }

    /// Batched, allocation-free point predictions over a flat row-major
    /// buffer of full feature rows. Appends one prediction per row to
    /// `out`, reusing the buffers in `scratch`.
    ///
    /// Bit-identical to calling [`TargetModel::predict`] per row.
    ///
    /// # Errors
    ///
    /// * [`MlError::FeatureMismatch`] if `row_len` does not cover the
    ///   highest kept feature index.
    /// * [`MlError::InvalidTrainingData`] if `rows.len()` is not a
    ///   multiple of `row_len`.
    pub fn predict_batch_into(
        &self,
        rows: &[f64],
        row_len: usize,
        out: &mut Vec<f64>,
        scratch: &mut PredictScratch,
    ) -> Result<(), MlError> {
        self.predict_batch_impl(rows, row_len, out, None, scratch)
    }

    /// Like [`TargetModel::predict_batch_into`], additionally appending
    /// each row's confidence-band half-width to `halves`, so callers can
    /// form the conservative bounds `prediction ± half` exactly as
    /// [`TargetModel::predict_upper`] / [`TargetModel::predict_lower`] do.
    ///
    /// # Errors
    ///
    /// Same as [`TargetModel::predict_batch_into`].
    pub fn predict_batch_with_band_into(
        &self,
        rows: &[f64],
        row_len: usize,
        out: &mut Vec<f64>,
        halves: &mut Vec<f64>,
        scratch: &mut PredictScratch,
    ) -> Result<(), MlError> {
        self.predict_batch_impl(rows, row_len, out, Some(halves), scratch)
    }

    fn predict_batch_impl(
        &self,
        rows: &[f64],
        row_len: usize,
        out: &mut Vec<f64>,
        mut halves: Option<&mut Vec<f64>>,
        scratch: &mut PredictScratch,
    ) -> Result<(), MlError> {
        let max = self.kept_features.iter().copied().max().unwrap_or(0);
        if row_len <= max {
            return Err(MlError::FeatureMismatch {
                expected: max + 1,
                actual: row_len,
            });
        }
        if !rows.len().is_multiple_of(row_len) {
            return Err(MlError::InvalidTrainingData(format!(
                "flat buffer of {} values is not a multiple of row length {row_len}",
                rows.len()
            )));
        }
        let n = rows.len() / row_len;
        if n == 0 {
            return Ok(());
        }
        let kw = self.kept_features.len();
        let mut projected = std::mem::take(&mut scratch.projected);
        projected.clear();
        projected.reserve(n * kw);
        for raw in rows.chunks_exact(row_len) {
            for &c in &self.kept_features {
                projected.push(raw[c]);
            }
        }
        let result = match &self.structure {
            Structure::Single(m) => {
                let before = out.len();
                let r = m.regression.predict_flat_into(&projected, kw, out, scratch);
                if r.is_ok() {
                    if let Some(h) = halves.as_deref_mut() {
                        h.extend(std::iter::repeat_n(m.band.half_width(), out.len() - before));
                    }
                }
                r
            }
            Structure::Split {
                feature,
                boundaries,
                models,
            } => {
                let mut route = std::mem::take(&mut scratch.route);
                route.clear();
                route.reserve(n);
                for i in 0..n {
                    let v = projected[i * kw + *feature];
                    let mut idx = boundaries.iter().filter(|&&b| v >= b).count();
                    if idx >= models.len() {
                        idx = models.len() - 1;
                    }
                    route.push(idx);
                }
                let base = out.len();
                out.resize(base + n, 0.0);
                let hbase = halves.as_deref_mut().map(|h| {
                    let hb = h.len();
                    h.resize(hb + n, 0.0);
                    hb
                });
                let mut result = Ok(());
                for (m_idx, m) in models.iter().enumerate() {
                    let mut gathered = std::mem::take(&mut scratch.gathered);
                    gathered.clear();
                    for (i, &r) in route.iter().enumerate() {
                        if r == m_idx {
                            gathered.extend_from_slice(&projected[i * kw..(i + 1) * kw]);
                        }
                    }
                    if gathered.is_empty() {
                        scratch.gathered = gathered;
                        continue;
                    }
                    let mut gout = std::mem::take(&mut scratch.gathered_out);
                    gout.clear();
                    result = m
                        .regression
                        .predict_flat_into(&gathered, kw, &mut gout, scratch);
                    if result.is_err() {
                        scratch.gathered = gathered;
                        scratch.gathered_out = gout;
                        break;
                    }
                    let mut cursor = 0usize;
                    for (i, &r) in route.iter().enumerate() {
                        if r == m_idx {
                            out[base + i] = gout[cursor];
                            if let (Some(h), Some(hb)) = (halves.as_deref_mut(), hbase) {
                                h[hb + i] = m.band.half_width();
                            }
                            cursor += 1;
                        }
                    }
                    scratch.gathered = gathered;
                    scratch.gathered_out = gout;
                }
                scratch.route = route;
                result
            }
        };
        scratch.projected = projected;
        result
    }

    fn project(&self, full_row: &[f64]) -> Result<Vec<f64>, MlError> {
        let max = self.kept_features.iter().copied().max().unwrap_or(0);
        if full_row.len() <= max {
            return Err(MlError::FeatureMismatch {
                expected: max + 1,
                actual: full_row.len(),
            });
        }
        Ok(self.kept_features.iter().map(|&c| full_row[c]).collect())
    }

    fn active_band(&self, full_row: &[f64]) -> Result<&ConfidenceBand, MlError> {
        let row = self.project(full_row)?;
        Ok(match &self.structure {
            Structure::Single(m) => m.band(),
            Structure::Split {
                feature,
                boundaries,
                models,
            } => {
                let v = row[*feature];
                let mut idx = boundaries.iter().filter(|&&b| v >= b).count();
                if idx >= models.len() {
                    idx = models.len() - 1;
                }
                models[idx].band()
            }
        })
    }
}

/// Clamps a requested fold count to what `n` rows can support.
///
/// [`crate::crossval::kfold_indices`] hard-errors when `k > n`; small
/// sub-model subsets routinely have fewer rows than the configured fold
/// count, so the call site clamps (and logs, once per process — the split
/// search hits this thousands of times) instead of failing the fit.
fn effective_folds(requested: usize, n: usize) -> usize {
    let k = requested.clamp(2, n.max(2));
    if k != requested {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "opprox-ml: clamping {requested}-fold CV to k = {k} for n = {n} rows \
                 (further clamps not logged)"
            );
        });
    }
    k
}

/// Escalates the degree and returns the best single model with its CV R².
///
/// Each candidate degree costs one expand-once cross-validation pass (see
/// [`cross_validate_degree`]), which also yields the full-data model and
/// its out-of-fold residuals — no separate refit.
fn fit_best_degree(
    dataset: &Dataset,
    config: &AutoFitConfig,
    counters: &FitCounters,
) -> Result<(SingleModel, f64), MlError> {
    let folds = effective_folds(config.folds, dataset.len());
    let mut best: Option<(SingleModel, f64)> = None;
    for degree in config.min_degree..=config.max_degree {
        counters.record_degree_tried();
        let cv = cross_validate_degree(
            dataset.rows(),
            dataset.targets(),
            degree,
            folds,
            config.seed,
            DEFAULT_RIDGE,
        )?;
        counters.record_cv_solves_at(degree, cv.solves);
        let cv_r2 = cv.mean_r2;
        let improved = best.as_ref().is_none_or(|(_, r)| cv_r2 > *r);
        if improved {
            let band = ConfidenceBand::from_residuals(&cv.residuals, config.confidence_level)?;
            best = Some((
                SingleModel {
                    regression: cv.model,
                    band,
                    cv_r2,
                },
                cv_r2,
            ));
        }
        if cv_r2 >= config.target_r2 {
            break;
        }
    }
    best.ok_or_else(|| MlError::InvalidTrainingData("no degree could be fitted".into()))
}

/// Attempts range-splitting each feature into 2..=max_submodels subsets
/// and returns the best split structure with its weighted CV R².
fn try_split(
    dataset: &Dataset,
    config: &AutoFitConfig,
    counters: &FitCounters,
) -> Result<Option<(Structure, f64)>, MlError> {
    let dim = dataset.feature_names().len();
    let mut best: Option<(Structure, f64)> = None;
    for feature in 0..dim {
        let mut vals = dataset.column(feature);
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for k in 2..=config.max_submodels {
            if vals.len() < k {
                break;
            }
            // Magnitude-ordered equal-count boundaries over distinct values.
            let boundaries: Vec<f64> = (1..k)
                .map(|i| {
                    let pos = i * vals.len() / k;
                    vals[pos.min(vals.len() - 1)]
                })
                .collect();
            let mut models = Vec::with_capacity(k);
            let mut weighted_r2 = 0.0;
            let mut total = 0usize;
            let mut feasible = true;
            for sub in 0..k {
                let lo = if sub == 0 {
                    f64::NEG_INFINITY
                } else {
                    boundaries[sub - 1]
                };
                let hi = if sub == k - 1 {
                    f64::INFINITY
                } else {
                    boundaries[sub]
                };
                let subset = dataset.filter_by_range(feature, lo, hi);
                if subset.len() < 4 {
                    feasible = false;
                    break;
                }
                let (m, r2) = fit_best_degree(&subset, config, counters)?;
                weighted_r2 += r2 * subset.len() as f64;
                total += subset.len();
                models.push(m);
            }
            if !feasible || total == 0 {
                continue;
            }
            let score = weighted_r2 / total as f64;
            if best.as_ref().is_none_or(|(_, r)| score > *r) {
                best = Some((
                    Structure::Split {
                        feature,
                        boundaries,
                        models,
                    },
                    score,
                ));
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["x".into(), "noise".into()]);
        for i in 0..n {
            let x = i as f64 * 0.2;
            // A deterministic pseudo-noise column that MIC should drop.
            let noise = ((i * 2654435761) % 97) as f64 / 97.0;
            ds.push(vec![x, noise], 1.0 + 2.0 * x + 0.5 * x * x)
                .unwrap();
        }
        ds
    }

    #[test]
    fn fits_quadratic_and_reaches_target() {
        let ds = quadratic_dataset(80);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        assert!(model.reached_target());
        assert!(model.cv_r2() > 0.9);
        let p = model.predict(&[3.0, 0.5]).unwrap();
        let truth = 1.0 + 6.0 + 4.5;
        assert!((p - truth).abs() < 0.5, "{p} vs {truth}");
    }

    #[test]
    fn mic_filter_drops_noise_feature() {
        let ds = quadratic_dataset(80);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        assert_eq!(model.kept_features(), &[0]);
        assert_eq!(model.feature_names(), &["x".to_string()]);
    }

    #[test]
    fn conservative_bounds_bracket_prediction() {
        let ds = quadratic_dataset(60);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        let row = [2.0, 0.1];
        let p = model.predict(&row).unwrap();
        assert!(model.predict_lower(&row).unwrap() <= p);
        assert!(model.predict_upper(&row).unwrap() >= p);
    }

    #[test]
    fn degree_escalation_stops_at_first_good_degree() {
        let ds = quadratic_dataset(60);
        let cfg = AutoFitConfig {
            mic_threshold: None,
            ..AutoFitConfig::default()
        };
        let model = TargetModel::fit(&ds, &cfg).unwrap();
        // A quadratic target should not need degree > 2.
        match &model.structure {
            Structure::Single(m) => assert_eq!(m.degree(), 2),
            _ => panic!("expected single model"),
        }
    }

    #[test]
    fn piecewise_target_triggers_split_or_best_effort() {
        // Discontinuous target: very hard for one low-degree polynomial.
        let mut ds = Dataset::new(vec!["x".into()]);
        for i in 0..120 {
            let x = i as f64 * 0.1;
            let y = if x < 6.0 { x } else { 100.0 + x * x };
            ds.push(vec![x], y).unwrap();
        }
        let cfg = AutoFitConfig {
            max_degree: 3,
            mic_threshold: None,
            ..AutoFitConfig::default()
        };
        let model = TargetModel::fit(&ds, &cfg).unwrap();
        // Either the split reached the target or we got a best-effort fit;
        // in both cases prediction should roughly track the two regimes.
        let low = model.predict(&[2.0]).unwrap();
        let high = model.predict(&[10.0]).unwrap();
        assert!(high > low + 50.0, "low={low} high={high}");
    }

    #[test]
    fn rejects_tiny_dataset() {
        let mut ds = Dataset::new(vec!["x".into()]);
        ds.push(vec![1.0], 1.0).unwrap();
        assert!(TargetModel::fit(&ds, &AutoFitConfig::default()).is_err());
    }

    #[test]
    fn predict_checks_row_length() {
        let ds = quadratic_dataset(40);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        assert!(model.predict(&[]).is_err());
    }

    #[test]
    fn predict_batch_matches_per_row_bitwise_single() {
        let ds = quadratic_dataset(60);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        assert!(!model.is_split());
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 * 0.37, (i % 5) as f64 / 5.0])
            .collect();
        let batched = model.predict_batch(&rows).unwrap();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut flat_out = Vec::new();
        let mut halves = Vec::new();
        let mut scratch = PredictScratch::default();
        model
            .predict_batch_with_band_into(&flat, 2, &mut flat_out, &mut halves, &mut scratch)
            .unwrap();
        for (i, row) in rows.iter().enumerate() {
            let single = model.predict(row).unwrap();
            assert_eq!(single.to_bits(), batched[i].to_bits());
            assert_eq!(single.to_bits(), flat_out[i].to_bits());
            let upper = model.predict_upper(row).unwrap();
            assert_eq!(upper.to_bits(), (flat_out[i] + halves[i]).to_bits());
        }
    }

    #[test]
    fn predict_batch_matches_per_row_bitwise_split() {
        // Discontinuous target that forces the split structure.
        let mut ds = Dataset::new(vec!["x".into()]);
        for i in 0..120 {
            let x = i as f64 * 0.1;
            let y = if x < 6.0 { x } else { 1000.0 + x * x };
            ds.push(vec![x], y).unwrap();
        }
        let cfg = AutoFitConfig {
            max_degree: 2,
            mic_threshold: None,
            ..AutoFitConfig::default()
        };
        let model = TargetModel::fit(&ds, &cfg).unwrap();
        assert!(model.is_split(), "test needs the split structure");
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.31]).collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut flat_out = Vec::new();
        let mut halves = Vec::new();
        let mut scratch = PredictScratch::default();
        model
            .predict_batch_with_band_into(&flat, 1, &mut flat_out, &mut halves, &mut scratch)
            .unwrap();
        for (i, row) in rows.iter().enumerate() {
            let single = model.predict(row).unwrap();
            assert_eq!(single.to_bits(), flat_out[i].to_bits());
            let lower = model.predict_lower(row).unwrap();
            assert_eq!(lower.to_bits(), (flat_out[i] - halves[i]).to_bits());
        }
    }

    #[test]
    fn interval_encloses_split_model_predictions_and_bands() {
        // Same discontinuous target as the split batch test: the box that
        // spans the boundary must take the union over both sub-models.
        let mut ds = Dataset::new(vec!["x".into()]);
        for i in 0..120 {
            let x = i as f64 * 0.1;
            let y = if x < 6.0 { x } else { 1000.0 + x * x };
            ds.push(vec![x], y).unwrap();
        }
        let cfg = AutoFitConfig {
            max_degree: 2,
            mic_threshold: None,
            ..AutoFitConfig::default()
        };
        let model = TargetModel::fit(&ds, &cfg).unwrap();
        assert!(model.is_split(), "test needs the split structure");
        for (lo, hi) in [(0.0, 11.9), (0.5, 3.5), (7.0, 11.0), (5.9, 6.1)] {
            let ip = model.predict_interval(&[lo], &[hi]).unwrap();
            assert!(ip.lo <= ip.hi && ip.half_lo <= ip.half_hi);
            for i in 0..=40 {
                let x = lo + (hi - lo) * i as f64 / 40.0;
                let p = model.predict(&[x]).unwrap();
                assert!(
                    ip.lo <= p && p <= ip.hi,
                    "point {p} at {x} outside interval"
                );
                let u = model.predict_upper(&[x]).unwrap();
                assert!(ip.lo + ip.half_lo <= u && u <= ip.hi + ip.half_hi);
                let l = model.predict_lower(&[x]).unwrap();
                assert!(ip.lo - ip.half_hi <= l && l <= ip.hi - ip.half_lo);
            }
        }
    }

    #[test]
    fn predict_batch_validates_inputs() {
        let ds = quadratic_dataset(40);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        let mut out = Vec::new();
        let mut scratch = PredictScratch::default();
        // Empty input is fine and appends nothing.
        model
            .predict_batch_into(&[], 2, &mut out, &mut scratch)
            .unwrap();
        assert!(out.is_empty());
        // Too-short rows and ragged buffers are rejected.
        assert!(model
            .predict_batch_into(&[1.0, 2.0, 3.0], 2, &mut out, &mut scratch)
            .is_err());
        assert!(model
            .predict_batch_into(&[], 0, &mut out, &mut scratch)
            .is_err());
    }

    #[test]
    fn fold_clamp_warns_but_fits_small_datasets() {
        // 5 rows with 10 requested folds: must clamp instead of erroring.
        let mut ds = Dataset::new(vec!["x".into()]);
        for i in 0..5 {
            ds.push(vec![i as f64], 2.0 * i as f64).unwrap();
        }
        let cfg = AutoFitConfig {
            min_degree: 1,
            max_degree: 1,
            mic_threshold: None,
            ..AutoFitConfig::default()
        };
        let model = TargetModel::fit(&ds, &cfg).unwrap();
        assert!((model.predict(&[3.0]).unwrap() - 6.0).abs() < 1e-6);
        assert_eq!(effective_folds(10, 5), 5);
        assert_eq!(effective_folds(10, 20), 10);
        assert_eq!(effective_folds(0, 20), 2);
    }

    #[test]
    fn fit_counters_accumulate_during_fit() {
        let ds = quadratic_dataset(60);
        let counters = FitCounters::new();
        TargetModel::fit_with_counters(&ds, &AutoFitConfig::default(), &counters).unwrap();
        assert!(counters.fits() >= 1);
        assert!(counters.degrees_tried() >= 1);
        // 10-fold CV: at least 11 solves (10 folds + the full system).
        assert!(counters.cv_solves() >= 11);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let ds = quadratic_dataset(50);
        let model = TargetModel::fit(&ds, &AutoFitConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: TargetModel = serde_json::from_str(&json).unwrap();
        let row = [1.5, 0.3];
        assert_eq!(model.predict(&row).unwrap(), back.predict(&row).unwrap());
    }
}
