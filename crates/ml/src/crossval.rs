//! k-fold cross-validation (paper Sec. 3.7).
//!
//! OPPROX escalates the polynomial degree until the model "finds a good R²
//! score with 10-fold cross validation". This module implements the
//! standard k-fold protocol with a deterministic, seeded shuffle so the
//! whole reproduction stays bit-reproducible.
//!
//! # Expand-once evaluation
//!
//! The naive protocol rebuilds the standardize → polynomial-expand → solve
//! pipeline once per fold, which for 10-fold CV costs ten full fits on 90%
//! of the data each. This module instead expands the design matrix *once*
//! per degree, accumulates the full Gram system `(AᵀA, Aᵀy)`, factors the
//! ridge-regularized system once, and realizes each training fold as a
//! rank-k *downdate* solved through the Woodbury identity against the
//! shared factorization — see [`opprox_linalg::gram::RidgeFactor`]. 10-fold
//! CV thus costs one expansion, one Gram accumulation, and one Cholesky
//! factorization instead of ten of each. Standardization statistics are
//! computed on the full dataset rather than per training fold, and the
//! fold ridge is scaled by the full Gram's diagonal; fold scores shift
//! marginally but degree selection is unaffected, and the full-data model
//! returned alongside the scores is bit-identical to
//! [`PolynomialRegression::fit`].

use crate::error::MlError;
use crate::polyreg::{expand_design, PolynomialRegression, DEFAULT_RIDGE};
use opprox_linalg::gram::GramSystem;
use opprox_linalg::stats::r2_score;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValScore {
    /// Mean R² across folds with a finite score (see
    /// [`cross_validate_poly`]).
    pub mean_r2: f64,
    /// Per-fold R² values, including any non-finite ones.
    pub fold_r2: Vec<f64>,
}

/// Full output of the expand-once cross-validation engine for one degree:
/// the fold scores plus, for free, the model fitted on the complete
/// dataset and its out-of-fold residuals.
#[derive(Debug, Clone)]
pub(crate) struct DegreeCv {
    /// Model fitted on all rows (bit-identical to
    /// [`PolynomialRegression::fit`] at the same ridge strength).
    pub model: PolynomialRegression,
    /// Mean R² over folds with a finite score; `0.0` if no fold scored
    /// finite.
    pub mean_r2: f64,
    /// Raw per-fold R² values.
    pub fold_r2: Vec<f64>,
    /// Out-of-fold residuals `y − ŷ`, in fold iteration order.
    pub residuals: Vec<f64>,
    /// Number of linear-system solves performed (one per fold plus the
    /// full-data solve).
    pub solves: u64,
}

/// Deterministically splits `n` indices into `k` folds after a seeded
/// shuffle. Every index appears in exactly one fold and fold sizes differ
/// by at most one.
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] if `k < 2` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<Vec<usize>>, MlError> {
    if k < 2 {
        return Err(MlError::InvalidHyperparameter(format!(
            "k-fold requires k >= 2, got {k}"
        )));
    }
    if k > n {
        return Err(MlError::InvalidHyperparameter(format!(
            "k-fold requires k <= n, got k={k}, n={n}"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds = vec![Vec::new(); k];
    for (pos, i) in idx.into_iter().enumerate() {
        folds[pos % k].push(i);
    }
    Ok(folds)
}

/// Mean over the finite entries of `scores`; `0.0` when none are finite.
///
/// A fold whose test targets contain extreme values can produce a NaN or
/// infinite R² (overflowing sums of squares); averaging those in would
/// poison the model-selection score for every degree, so they are skipped.
fn finite_mean(scores: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &s in scores {
        if s.is_finite() {
            sum += s;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Expand-once cross-validation of one polynomial degree.
///
/// Builds the standardized, polynomial-expanded design matrix once,
/// accumulates the full Gram system, and evaluates each fold by downdating
/// the system with the held-out rows and re-solving. Returns the fold
/// scores together with the full-data model and its out-of-fold residuals.
pub(crate) fn cross_validate_degree(
    xs: &[Vec<f64>],
    ys: &[f64],
    degree: usize,
    k: usize,
    seed: u64,
    lambda: f64,
) -> Result<DegreeCv, MlError> {
    if xs.is_empty() {
        return Err(MlError::InvalidTrainingData("no rows".into()));
    }
    if xs.len() != ys.len() {
        return Err(MlError::InvalidTrainingData(format!(
            "{} feature rows vs {} targets",
            xs.len(),
            ys.len()
        )));
    }
    let folds = kfold_indices(xs.len(), k, seed)?;

    let standardizer = crate::features::Standardizer::fit(xs)?;
    let features = crate::features::PolynomialFeatures::new(xs[0].len(), degree);
    let design = expand_design(&standardizer, &features, xs)?;
    // One factorization serves the full-data solve and every fold: each
    // fold is a Woodbury holdout solve against the shared factor (see
    // [`opprox_linalg::gram::RidgeFactor`]), so k-fold CV performs one
    // Cholesky factorization instead of k + 1.
    let factor = GramSystem::from_design(&design, ys)?.factor_ridge(lambda)?;
    let coefficients = factor.solve_full();
    let mut solves = 1u64;

    let mut fold_r2 = Vec::with_capacity(folds.len());
    let mut residuals = Vec::with_capacity(xs.len());
    for test_fold in &folds {
        let beta = factor.solve_holdout(&design, ys, test_fold)?;
        solves += 1;
        let mut test_y = Vec::with_capacity(test_fold.len());
        let mut preds = Vec::with_capacity(test_fold.len());
        for &i in test_fold {
            let pred: f64 = design
                .row(i)
                .iter()
                .zip(beta.iter())
                .map(|(f, c)| f * c)
                .sum();
            test_y.push(ys[i]);
            preds.push(pred);
            residuals.push(ys[i] - pred);
        }
        fold_r2.push(r2_score(&test_y, &preds));
    }
    let mean_r2 = finite_mean(&fold_r2);
    Ok(DegreeCv {
        model: PolynomialRegression::from_parts(standardizer, features, coefficients, degree),
        mean_r2,
        fold_r2,
        residuals,
        solves,
    })
}

/// Cross-validates a polynomial regression of the given degree.
///
/// Follows the paper's protocol: partition the data into `k` folds, train
/// on `k − 1`, test on the held-out fold, repeat for every fold, and
/// average the R² scores. Implemented with the expand-once Gram-downdate
/// engine (see the module docs), so the per-fold cost is a handful of
/// triangular solves against a shared factorization rather than a full
/// pipeline rebuild.
///
/// Folds whose R² comes out non-finite (possible when a fold's targets
/// contain values extreme enough to overflow the sums of squares) are
/// excluded from `mean_r2`; if every fold is degenerate the mean is `0.0`.
/// The raw per-fold values are still reported in `fold_r2`.
///
/// # Errors
///
/// * Propagates fold-construction errors from [`kfold_indices`].
/// * [`MlError::InvalidTrainingData`] if `xs` and `ys` differ in length.
/// * Fit errors from [`PolynomialRegression::fit`].
pub fn cross_validate_poly(
    xs: &[Vec<f64>],
    ys: &[f64],
    degree: usize,
    k: usize,
    seed: u64,
) -> Result<CrossValScore, MlError> {
    let cv = cross_validate_degree(xs, ys, degree, k, seed, DEFAULT_RIDGE)?;
    Ok(CrossValScore {
        mean_r2: cv.mean_r2,
        fold_r2: cv.fold_r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_all_indices() {
        let folds = kfold_indices(17, 5, 42).unwrap();
        let mut seen: Vec<usize> = folds.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..17).collect::<Vec<_>>());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        assert_eq!(
            kfold_indices(10, 3, 7).unwrap(),
            kfold_indices(10, 3, 7).unwrap()
        );
        assert_ne!(
            kfold_indices(10, 3, 7).unwrap(),
            kfold_indices(10, 3, 8).unwrap()
        );
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(3, 4, 0).is_err());
    }

    #[test]
    fn cv_scores_well_on_matching_degree() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 1.0 + 2.0 * r[0] + r[0] * r[0]).collect();
        let score = cross_validate_poly(&xs, &ys, 2, 10, 1).unwrap();
        assert!(score.mean_r2 > 0.999, "mean R² was {}", score.mean_r2);
        assert_eq!(score.fold_r2.len(), 10);
    }

    #[test]
    fn cv_scores_poorly_on_underfit_degree() {
        // Strongly cubic data fit with a linear model.
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![(i as f64 - 30.0) * 0.2]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0].powi(3)).collect();
        let lin = cross_validate_poly(&xs, &ys, 1, 10, 1).unwrap();
        let cub = cross_validate_poly(&xs, &ys, 3, 10, 1).unwrap();
        assert!(cub.mean_r2 > lin.mean_r2);
        assert!(cub.mean_r2 > 0.999);
    }

    #[test]
    fn cv_rejects_length_mismatch() {
        assert!(cross_validate_poly(&[vec![1.0]], &[1.0, 2.0], 1, 2, 0).is_err());
    }

    #[test]
    fn downdate_cv_matches_explicit_refit() {
        // The Gram-downdate fold scores must agree with explicitly
        // refitting on the same train/test split, up to the (documented)
        // change of standardizing on the full dataset.
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 * 0.3, (i as f64 * 0.17).sin()])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| 2.0 + r[0] - 0.4 * r[0] * r[1] + r[1] * r[1])
            .collect();
        let cv = cross_validate_degree(&xs, &ys, 2, 5, 9, DEFAULT_RIDGE).unwrap();
        assert_eq!(cv.fold_r2.len(), 5);
        assert_eq!(cv.residuals.len(), xs.len());
        assert_eq!(cv.solves, 6);
        // Data is exactly representable by the degree-2 family, so every
        // protocol variant must score essentially perfectly.
        for r2 in &cv.fold_r2 {
            assert!(*r2 > 0.999, "fold R² was {r2}");
        }
    }

    #[test]
    fn full_data_model_is_bit_identical_to_direct_fit() {
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64 * 0.5, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * r[1] - r[0] + 3.0).collect();
        let cv = cross_validate_degree(&xs, &ys, 3, 10, 0x0bb0c5, DEFAULT_RIDGE).unwrap();
        let direct = PolynomialRegression::fit(&xs, &ys, 3).unwrap();
        assert_eq!(cv.model.coefficients().len(), direct.coefficients().len());
        for (a, b) in cv
            .model
            .coefficients()
            .iter()
            .zip(direct.coefficients().iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn degenerate_folds_do_not_poison_the_mean() {
        // One target value is extreme enough that squared residuals and
        // squared deviations overflow to infinity, which historically made
        // mean_r2 NaN and broke degree selection for every candidate.
        let mut xs: Vec<Vec<f64>> = (0..24).map(|i| vec![i as f64]).collect();
        let mut ys: Vec<f64> = xs.iter().map(|r| 1.0 + r[0]).collect();
        xs.push(vec![24.0]);
        ys.push(1e300);
        let score = cross_validate_poly(&xs, &ys, 1, 5, 3).unwrap();
        assert!(
            score.mean_r2.is_finite(),
            "mean R² must stay finite, got {}",
            score.mean_r2
        );
        assert!(
            score.fold_r2.iter().any(|r| !r.is_finite()),
            "test should actually exercise a degenerate fold: {:?}",
            score.fold_r2
        );
    }

    #[test]
    fn finite_mean_skips_non_finite_entries() {
        assert_eq!(finite_mean(&[0.9, f64::NAN, 0.7]), 0.8);
        assert_eq!(finite_mean(&[f64::NAN, f64::NEG_INFINITY]), 0.0);
        assert_eq!(finite_mean(&[]), 0.0);
    }
}
