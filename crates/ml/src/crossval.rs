//! k-fold cross-validation (paper Sec. 3.7).
//!
//! OPPROX escalates the polynomial degree until the model "finds a good R²
//! score with 10-fold cross validation". This module implements the
//! standard k-fold protocol with a deterministic, seeded shuffle so the
//! whole reproduction stays bit-reproducible.

use crate::error::MlError;
use crate::polyreg::PolynomialRegression;
use opprox_linalg::stats::r2_score;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValScore {
    /// Mean R² across folds.
    pub mean_r2: f64,
    /// Per-fold R² values.
    pub fold_r2: Vec<f64>,
}

/// Deterministically splits `n` indices into `k` folds after a seeded
/// shuffle. Every index appears in exactly one fold and fold sizes differ
/// by at most one.
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] if `k < 2` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<Vec<usize>>, MlError> {
    if k < 2 {
        return Err(MlError::InvalidHyperparameter(format!(
            "k-fold requires k >= 2, got {k}"
        )));
    }
    if k > n {
        return Err(MlError::InvalidHyperparameter(format!(
            "k-fold requires k <= n, got k={k}, n={n}"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds = vec![Vec::new(); k];
    for (pos, i) in idx.into_iter().enumerate() {
        folds[pos % k].push(i);
    }
    Ok(folds)
}

/// Cross-validates a polynomial regression of the given degree.
///
/// Follows the paper's protocol: partition the data into `k` folds, train
/// on `k − 1`, test on the held-out fold, repeat for every fold, and
/// average the R² scores.
///
/// # Errors
///
/// * Propagates fold-construction errors from [`kfold_indices`].
/// * [`MlError::InvalidTrainingData`] if `xs` and `ys` differ in length.
/// * Fit errors from [`PolynomialRegression::fit`].
pub fn cross_validate_poly(
    xs: &[Vec<f64>],
    ys: &[f64],
    degree: usize,
    k: usize,
    seed: u64,
) -> Result<CrossValScore, MlError> {
    if xs.len() != ys.len() {
        return Err(MlError::InvalidTrainingData(format!(
            "{} feature rows vs {} targets",
            xs.len(),
            ys.len()
        )));
    }
    let folds = kfold_indices(xs.len(), k, seed)?;
    let mut fold_r2 = Vec::with_capacity(k);
    for test_fold in &folds {
        let test_set: std::collections::HashSet<usize> = test_fold.iter().copied().collect();
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for i in 0..xs.len() {
            if test_set.contains(&i) {
                test_x.push(xs[i].clone());
                test_y.push(ys[i]);
            } else {
                train_x.push(xs[i].clone());
                train_y.push(ys[i]);
            }
        }
        let model = PolynomialRegression::fit(&train_x, &train_y, degree)?;
        let preds = model.predict(&test_x)?;
        fold_r2.push(r2_score(&test_y, &preds));
    }
    let mean_r2 = fold_r2.iter().sum::<f64>() / fold_r2.len() as f64;
    Ok(CrossValScore { mean_r2, fold_r2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_all_indices() {
        let folds = kfold_indices(17, 5, 42).unwrap();
        let mut seen: Vec<usize> = folds.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..17).collect::<Vec<_>>());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        assert_eq!(
            kfold_indices(10, 3, 7).unwrap(),
            kfold_indices(10, 3, 7).unwrap()
        );
        assert_ne!(
            kfold_indices(10, 3, 7).unwrap(),
            kfold_indices(10, 3, 8).unwrap()
        );
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(3, 4, 0).is_err());
    }

    #[test]
    fn cv_scores_well_on_matching_degree() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 1.0 + 2.0 * r[0] + r[0] * r[0]).collect();
        let score = cross_validate_poly(&xs, &ys, 2, 10, 1).unwrap();
        assert!(score.mean_r2 > 0.999, "mean R² was {}", score.mean_r2);
        assert_eq!(score.fold_r2.len(), 10);
    }

    #[test]
    fn cv_scores_poorly_on_underfit_degree() {
        // Strongly cubic data fit with a linear model.
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![(i as f64 - 30.0) * 0.2]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0].powi(3)).collect();
        let lin = cross_validate_poly(&xs, &ys, 1, 10, 1).unwrap();
        let cub = cross_validate_poly(&xs, &ys, 3, 10, 1).unwrap();
        assert!(cub.mean_r2 > lin.mean_r2);
        assert!(cub.mean_r2 > 0.999);
    }

    #[test]
    fn cv_rejects_length_mismatch() {
        assert!(cross_validate_poly(&[vec![1.0]], &[1.0, 2.0], 1, 2, 0).is_err());
    }
}
