//! Empirical confidence intervals for model predictions
//! (paper Sec. 3.6, "Confidence Analysis of Models"; adapts Mitra et al.,
//! PACT 2015).
//!
//! OPPROX wraps every regression model in an empirical error band: if `p`
//! fraction of validation-time modeling errors stay within `e`, then a
//! prediction `Q` is interpreted as the interval `[Q − e, Q + e]`. To stay
//! conservative the optimizer uses the *upper* limit for QoS degradation
//! and the *lower* limit for speedup.

use crate::error::MlError;
use opprox_linalg::stats::quantile;
use serde::{Deserialize, Serialize};

/// An empirical confidence band derived from held-out residuals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceBand {
    half_width: f64,
    p: f64,
}

impl ConfidenceBand {
    /// Builds a band such that `p` fraction of the given absolute
    /// residuals fall within the half-width.
    ///
    /// # Errors
    ///
    /// * [`MlError::InvalidTrainingData`] if `residuals` is empty.
    /// * [`MlError::InvalidHyperparameter`] if `p` is outside `(0, 1]`.
    pub fn from_residuals(residuals: &[f64], p: f64) -> Result<Self, MlError> {
        if residuals.is_empty() {
            return Err(MlError::InvalidTrainingData(
                "cannot build a confidence band from zero residuals".into(),
            ));
        }
        if !(0.0..=1.0).contains(&p) || p == 0.0 {
            return Err(MlError::InvalidHyperparameter(format!(
                "confidence level must be in (0, 1], got {p}"
            )));
        }
        let abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
        let half_width = quantile(&abs, p).expect("non-empty");
        Ok(ConfidenceBand { half_width, p })
    }

    /// The half-width `e` of the band.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// The confidence level `p` the band was built for.
    pub fn level(&self) -> f64 {
        self.p
    }

    /// Conservative *upper* bound for a prediction — used for QoS
    /// degradation so the optimizer never under-estimates error.
    pub fn upper(&self, prediction: f64) -> f64 {
        prediction + self.half_width
    }

    /// Conservative *lower* bound for a prediction — used for speedup so
    /// the optimizer never over-estimates benefit.
    pub fn lower(&self, prediction: f64) -> f64 {
        prediction - self.half_width
    }

    /// The full interval `[prediction − e, prediction + e]`.
    pub fn interval(&self, prediction: f64) -> (f64, f64) {
        (self.lower(prediction), self.upper(prediction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_covers_p_fraction_of_residuals() {
        let residuals: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let band = ConfidenceBand::from_residuals(&residuals, 0.9).unwrap();
        let covered = residuals
            .iter()
            .filter(|r| r.abs() <= band.half_width())
            .count();
        assert!(covered >= 90, "covered {covered}");
    }

    #[test]
    fn p99_band_is_wider_than_p50() {
        let residuals: Vec<f64> = (0..200).map(|i| (i as f64 - 100.0) / 50.0).collect();
        let b50 = ConfidenceBand::from_residuals(&residuals, 0.5).unwrap();
        let b99 = ConfidenceBand::from_residuals(&residuals, 0.99).unwrap();
        assert!(b99.half_width() > b50.half_width());
    }

    #[test]
    fn bounds_bracket_the_prediction() {
        let band = ConfidenceBand::from_residuals(&[0.5, -0.25, 0.1], 0.99).unwrap();
        let (lo, hi) = band.interval(10.0);
        assert!(lo <= 10.0 && 10.0 <= hi);
        assert_eq!(band.upper(10.0), hi);
        assert_eq!(band.lower(10.0), lo);
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(ConfidenceBand::from_residuals(&[], 0.9).is_err());
        assert!(ConfidenceBand::from_residuals(&[1.0], 0.0).is_err());
        assert!(ConfidenceBand::from_residuals(&[1.0], 1.5).is_err());
    }

    #[test]
    fn zero_residuals_give_zero_width() {
        let band = ConfidenceBand::from_residuals(&[0.0, 0.0, 0.0], 0.99).unwrap();
        assert_eq!(band.half_width(), 0.0);
        assert_eq!(band.interval(5.0), (5.0, 5.0));
    }

    #[test]
    fn serde_round_trip() {
        let band = ConfidenceBand::from_residuals(&[0.5, -0.25, 0.1], 0.9).unwrap();
        let json = serde_json::to_string(&band).unwrap();
        let back: ConfidenceBand = serde_json::from_str(&json).unwrap();
        assert_eq!(band, back);
    }
}
