//! Lock-free counters instrumenting the model-fitting pipeline.
//!
//! Model fitting fans out across threads in the application layer, so the
//! counters are plain relaxed atomics: cheap to bump from any worker and
//! race-free to snapshot afterwards.

use std::sync::atomic::{AtomicU64, Ordering};

/// Highest polynomial degree tracked individually by
/// [`FitCounters::cv_solves_by_degree`]; solves at higher degrees fold
/// into the last bucket.
pub const MAX_TRACKED_DEGREE: usize = 8;

/// Shared counters accumulated while fitting [`crate::model_select::TargetModel`]s.
///
/// One instance is typically shared (by reference) across every concurrent
/// fit of a training run and snapshotted into the run's metrics afterwards.
#[derive(Debug, Default)]
pub struct FitCounters {
    fits: AtomicU64,
    cv_solves: AtomicU64,
    degrees_tried: AtomicU64,
    cv_solves_per_degree: [AtomicU64; MAX_TRACKED_DEGREE + 1],
}

impl FitCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one attempted `TargetModel` fit.
    pub fn record_fit(&self) {
        self.fits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` cross-validation linear-system solves.
    pub fn record_cv_solves(&self, n: u64) {
        self.cv_solves.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` cross-validation solves attributed to a specific
    /// polynomial degree (also counted in the [`FitCounters::cv_solves`]
    /// total). Degrees above [`MAX_TRACKED_DEGREE`] share the last bucket.
    pub fn record_cv_solves_at(&self, degree: usize, n: u64) {
        self.record_cv_solves(n);
        self.cv_solves_per_degree[degree.min(MAX_TRACKED_DEGREE)].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one polynomial degree evaluated during escalation.
    pub fn record_degree_tried(&self) {
        self.degrees_tried.fetch_add(1, Ordering::Relaxed);
    }

    /// Total attempted `TargetModel` fits.
    pub fn fits(&self) -> u64 {
        self.fits.load(Ordering::Relaxed)
    }

    /// Total cross-validation linear-system solves.
    pub fn cv_solves(&self) -> u64 {
        self.cv_solves.load(Ordering::Relaxed)
    }

    /// Total polynomial degrees evaluated.
    pub fn degrees_tried(&self) -> u64 {
        self.degrees_tried.load(Ordering::Relaxed)
    }

    /// Cross-validation solves per polynomial degree
    /// (`0..=MAX_TRACKED_DEGREE`; the last entry also holds any higher
    /// degrees). Only solves recorded via
    /// [`FitCounters::record_cv_solves_at`] are attributed.
    pub fn cv_solves_by_degree(&self) -> Vec<u64> {
        self.cv_solves_per_degree
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = FitCounters::new();
        c.record_fit();
        c.record_fit();
        c.record_cv_solves(11);
        c.record_degree_tried();
        assert_eq!(c.fits(), 2);
        assert_eq!(c.cv_solves(), 11);
        assert_eq!(c.degrees_tried(), 1);
    }

    #[test]
    fn per_degree_solves_feed_the_total_and_clamp_high_degrees() {
        let c = FitCounters::new();
        c.record_cv_solves_at(1, 5);
        c.record_cv_solves_at(3, 2);
        c.record_cv_solves_at(MAX_TRACKED_DEGREE + 7, 4);
        assert_eq!(c.cv_solves(), 11);
        let by_degree = c.cv_solves_by_degree();
        assert_eq!(by_degree.len(), MAX_TRACKED_DEGREE + 1);
        assert_eq!(by_degree[1], 5);
        assert_eq!(by_degree[3], 2);
        assert_eq!(by_degree[MAX_TRACKED_DEGREE], 4);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = FitCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        c.record_fit();
                        c.record_cv_solves(2);
                    }
                });
            }
        });
        assert_eq!(c.fits(), 400);
        assert_eq!(c.cv_solves(), 800);
    }
}
