//! Error type for the ML substrate.

use opprox_linalg::LinalgError;
use std::fmt;

/// Errors produced by model fitting and prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The training set was empty or had inconsistent shapes.
    InvalidTrainingData(String),
    /// A prediction was requested with the wrong number of features.
    FeatureMismatch {
        /// Features the model was trained with.
        expected: usize,
        /// Features supplied at prediction time.
        actual: usize,
    },
    /// A hyperparameter was out of its valid range.
    InvalidHyperparameter(String),
    /// The underlying linear-algebra routine failed.
    Numeric(String),
    /// No model reached the requested accuracy target.
    AccuracyTargetUnreachable {
        /// The best cross-validated R² achieved.
        best_r2: f64,
        /// The requested target.
        target_r2: f64,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            MlError::FeatureMismatch { expected, actual } => write!(
                f,
                "feature count mismatch: model expects {expected}, got {actual}"
            ),
            MlError::InvalidHyperparameter(msg) => write!(f, "invalid hyperparameter: {msg}"),
            MlError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            MlError::AccuracyTargetUnreachable { best_r2, target_r2 } => write!(
                f,
                "no model reached target R² {target_r2:.3}; best was {best_r2:.3}"
            ),
        }
    }
}

impl std::error::Error for MlError {}

impl From<LinalgError> for MlError {
    fn from(e: LinalgError) -> Self {
        MlError::Numeric(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(MlError::InvalidTrainingData("empty".into())
            .to_string()
            .contains("empty"));
        assert!(MlError::FeatureMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains("expects 3"));
        assert!(MlError::AccuracyTargetUnreachable {
            best_r2: 0.5,
            target_r2: 0.9
        }
        .to_string()
        .contains("0.900"));
    }

    #[test]
    fn converts_from_linalg_error() {
        let e: MlError = LinalgError::Singular("pivot".into()).into();
        assert!(matches!(e, MlError::Numeric(_)));
    }
}
