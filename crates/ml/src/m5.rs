//! M5-style model trees (Quinlan 1992) — regression trees with linear
//! models in the leaves.
//!
//! The paper's closest related system, Capri (Sui et al., ASPLOS 2016),
//! models performance and accuracy with the M5 estimation algorithm; this
//! module provides that model family so the benchmark harness can ablate
//! OPPROX's polynomial-regression choice against it (see the
//! `ablation_models` bench).
//!
//! The implementation is the classic recipe: split greedily on the
//! feature/threshold with the largest standard-deviation reduction (SDR),
//! stop at a depth/size limit or when the leaf is near-constant, and fit
//! a ridge-regularized linear model per leaf (falling back to the leaf
//! mean when the leaf is too small to support one).

use crate::error::MlError;
use opprox_linalg::lstsq::ridge_least_squares;
use opprox_linalg::stats::{mean, std_dev};
use opprox_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`ModelTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelTreeParams {
    /// Maximum tree depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_split: usize,
    /// Stop splitting when a node's target standard deviation falls below
    /// this fraction of the root's.
    pub sd_fraction: f64,
}

impl Default for ModelTreeParams {
    fn default() -> Self {
        ModelTreeParams {
            max_depth: 6,
            min_split: 8,
            sd_fraction: 0.05,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Linear coefficients (intercept first); `None` means constant.
        coeffs: Option<Vec<f64>>,
        /// Leaf mean, the constant fallback.
        mean: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted M5-style model tree.
///
/// # Example
///
/// ```
/// use opprox_ml::m5::{ModelTree, ModelTreeParams};
///
/// // A piecewise-linear target: y = x for x < 5, y = 20 - x otherwise.
/// let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 4.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|r| if r[0] < 5.0 { r[0] } else { 20.0 - r[0] }).collect();
/// let tree = ModelTree::fit(&xs, &ys, ModelTreeParams::default()).unwrap();
/// assert!((tree.predict_one(&[2.0]).unwrap() - 2.0).abs() < 0.5);
/// assert!((tree.predict_one(&[8.0]).unwrap() - 12.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelTree {
    root: Node,
    num_features: usize,
}

impl ModelTree {
    /// Fits a model tree.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for empty, ragged, or
    /// mismatched inputs.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: ModelTreeParams) -> Result<Self, MlError> {
        if xs.is_empty() {
            return Err(MlError::InvalidTrainingData("no rows".into()));
        }
        if xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "{} feature rows vs {} targets",
                xs.len(),
                ys.len()
            )));
        }
        let dim = xs[0].len();
        if xs.iter().any(|r| r.len() != dim) {
            return Err(MlError::InvalidTrainingData("ragged rows".into()));
        }
        let idx: Vec<usize> = (0..xs.len()).collect();
        let root_sd = std_dev(ys);
        let root = build(xs, ys, &idx, &params, root_sd, 0)?;
        Ok(ModelTree {
            root,
            num_features: dim,
        })
    }

    /// Number of features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of leaves in the fitted tree.
    pub fn num_leaves(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => rec(left) + rec(right),
            }
        }
        rec(&self.root)
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on a wrong-length input.
    pub fn predict_one(&self, x: &[f64]) -> Result<f64, MlError> {
        if x.len() != self.num_features {
            return Err(MlError::FeatureMismatch {
                expected: self.num_features,
                actual: x.len(),
            });
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { coeffs, mean } => {
                    return Ok(match coeffs {
                        None => *mean,
                        Some(c) => {
                            c[0] + c[1..].iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>()
                        }
                    })
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicts targets for a batch.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on the first malformed row.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }
}

fn leaf(xs: &[Vec<f64>], ys: &[f64], idx: &[usize]) -> Result<Node, MlError> {
    let targets: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
    let leaf_mean = mean(&targets);
    let dim = xs[0].len();
    // A linear model needs comfortably more samples than coefficients.
    if idx.len() < dim + 3 {
        return Ok(Node::Leaf {
            coeffs: None,
            mean: leaf_mean,
        });
    }
    let rows: Vec<Vec<f64>> = idx
        .iter()
        .map(|&i| {
            let mut r = Vec::with_capacity(dim + 1);
            r.push(1.0);
            r.extend_from_slice(&xs[i]);
            r
        })
        .collect();
    let design = Matrix::from_row_vecs(&rows).map_err(MlError::from)?;
    match ridge_least_squares(&design, &targets, 1e-6) {
        Ok(coeffs) => Ok(Node::Leaf {
            coeffs: Some(coeffs),
            mean: leaf_mean,
        }),
        Err(_) => Ok(Node::Leaf {
            coeffs: None,
            mean: leaf_mean,
        }),
    }
}

fn build(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: &[usize],
    params: &ModelTreeParams,
    root_sd: f64,
    depth: usize,
) -> Result<Node, MlError> {
    let targets: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
    let sd = std_dev(&targets);
    if depth >= params.max_depth
        || idx.len() < params.min_split
        || sd <= params.sd_fraction * root_sd
    {
        return leaf(xs, ys, idx);
    }

    // Greedy SDR split search.
    let dim = xs[0].len();
    // Features address columns of the row-major sample matrix.
    let mut best: Option<(f64, usize, f64)> = None; // (sdr, feature, threshold)
    #[allow(clippy::needless_range_loop)]
    for f in 0..dim {
        let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
        vals.dedup();
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let left: Vec<f64> = idx
                .iter()
                .filter(|&&i| xs[i][f] <= threshold)
                .map(|&i| ys[i])
                .collect();
            let right: Vec<f64> = idx
                .iter()
                .filter(|&&i| xs[i][f] > threshold)
                .map(|&i| ys[i])
                .collect();
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let n = idx.len() as f64;
            let sdr = sd
                - (left.len() as f64 / n) * std_dev(&left)
                - (right.len() as f64 / n) * std_dev(&right);
            if best.is_none_or(|(s, _, _)| sdr > s + 1e-15) {
                best = Some((sdr, f, threshold));
            }
        }
    }

    match best {
        Some((sdr, feature, threshold)) if sdr > 1e-12 => {
            let left_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| xs[i][feature] <= threshold)
                .collect();
            let right_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| xs[i][feature] > threshold)
                .collect();
            Ok(Node::Split {
                feature,
                threshold,
                left: Box::new(build(xs, ys, &left_idx, params, root_sd, depth + 1)?),
                right: Box::new(build(xs, ys, &right_idx, params, root_sd, depth + 1)?),
            })
        }
        _ => leaf(xs, ys, idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_linalg::stats::r2_score;

    #[test]
    fn fits_linear_function_accurately() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 + r[0] - 0.5 * r[1]).collect();
        let t = ModelTree::fit(&xs, &ys, ModelTreeParams::default()).unwrap();
        let preds = t.predict(&xs).unwrap();
        // The tree may still split (any split reduces SD on a sloped
        // target), but the leaf models must track the function closely.
        assert!(
            r2_score(&ys, &preds) > 0.999,
            "r2 {}",
            r2_score(&ys, &preds)
        );
    }

    #[test]
    fn splits_on_discontinuity() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| if r[0] < 5.0 { 1.0 } else { 100.0 })
            .collect();
        let t = ModelTree::fit(&xs, &ys, ModelTreeParams::default()).unwrap();
        assert!(t.num_leaves() >= 2);
        assert!((t.predict_one(&[2.0]).unwrap() - 1.0).abs() < 1.0);
        assert!((t.predict_one(&[8.0]).unwrap() - 100.0).abs() < 1.0);
    }

    #[test]
    fn outperforms_mean_on_piecewise_linear_target() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| {
                if r[0] < 5.0 {
                    2.0 * r[0]
                } else {
                    30.0 - 4.0 * r[0]
                }
            })
            .collect();
        let t = ModelTree::fit(&xs, &ys, ModelTreeParams::default()).unwrap();
        let preds = t.predict(&xs).unwrap();
        assert!(r2_score(&ys, &preds) > 0.95);
    }

    #[test]
    fn tiny_leaves_fall_back_to_means() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1.0, 2.0, 9.0];
        let t = ModelTree::fit(
            &xs,
            &ys,
            ModelTreeParams {
                min_split: 100,
                ..ModelTreeParams::default()
            },
        )
        .unwrap();
        assert_eq!(t.num_leaves(), 1);
        assert!((t.predict_one(&[2.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(ModelTree::fit(&[], &[], ModelTreeParams::default()).is_err());
        assert!(ModelTree::fit(&[vec![1.0]], &[1.0, 2.0], ModelTreeParams::default()).is_err());
        let t = ModelTree::fit(
            &[vec![1.0], vec![2.0]],
            &[1.0, 2.0],
            ModelTreeParams::default(),
        )
        .unwrap();
        assert!(t.predict_one(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * 2.0).collect();
        let t = ModelTree::fit(&xs, &ys, ModelTreeParams::default()).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: ModelTree = serde_json::from_str(&json).unwrap();
        assert_eq!(
            t.predict_one(&[7.0]).unwrap(),
            back.predict_one(&[7.0]).unwrap()
        );
    }
}
