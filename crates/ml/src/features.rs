//! Polynomial feature expansion and standardization.

use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// Expands raw feature vectors into all monomials up to a total degree.
///
/// For input variables `x₁ … x_k` and degree `d`, the expansion contains
/// the constant term `1` followed by every monomial
/// `x₁^{e₁} · … · x_k^{e_k}` with `1 ≤ e₁+…+e_k ≤ d`, in a deterministic
/// order. This matches the model family the paper uses, e.g. the degree-2
/// expansion of two locals `s₁, s₂` is `1, s₁, s₂, s₁², s₁s₂, s₂²` (the
/// paper's `c₀ + c₁s₁ + c₂s₂ + c₃s₁s₂ + c₄s₁² + c₅s₂²`).
///
/// # Example
///
/// ```
/// use opprox_ml::features::PolynomialFeatures;
///
/// let pf = PolynomialFeatures::new(2, 2);
/// let row = pf.transform_one(&[2.0, 3.0]).unwrap();
/// // 1, x1, x2, x1^2, x1*x2, x2^2
/// assert_eq!(row, vec![1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolynomialFeatures {
    num_inputs: usize,
    degree: usize,
    /// Exponent vectors, one per output feature (excluding the constant).
    exponents: Vec<Vec<usize>>,
}

impl PolynomialFeatures {
    /// Creates an expansion for `num_inputs` variables up to total degree
    /// `degree`. A degree of `0` produces only the constant term.
    pub fn new(num_inputs: usize, degree: usize) -> Self {
        let mut exponents = Vec::new();
        for total in 1..=degree {
            append_exponents(num_inputs, total, &mut exponents);
        }
        PolynomialFeatures {
            num_inputs,
            degree,
            exponents,
        }
    }

    /// Number of raw input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Polynomial degree of the expansion.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of output features, including the constant term.
    pub fn num_outputs(&self) -> usize {
        self.exponents.len() + 1
    }

    /// Expands one raw feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if `x.len() != num_inputs`.
    pub fn transform_one(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if x.len() != self.num_inputs {
            return Err(MlError::FeatureMismatch {
                expected: self.num_inputs,
                actual: x.len(),
            });
        }
        let mut out = Vec::with_capacity(self.num_outputs());
        out.push(1.0);
        for exps in &self.exponents {
            let mut v = 1.0;
            for (xi, &e) in x.iter().zip(exps.iter()) {
                for _ in 0..e {
                    v *= xi;
                }
            }
            out.push(v);
        }
        Ok(out)
    }

    /// Expands one raw feature vector into a caller-provided buffer,
    /// appending `num_outputs` values. The arithmetic matches
    /// [`PolynomialFeatures::transform_one`] exactly, so batched paths
    /// built on this method stay bit-identical to the per-row path.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if `x.len() != num_inputs`.
    pub fn transform_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), MlError> {
        if x.len() != self.num_inputs {
            return Err(MlError::FeatureMismatch {
                expected: self.num_inputs,
                actual: x.len(),
            });
        }
        out.reserve(self.num_outputs());
        out.push(1.0);
        for exps in &self.exponents {
            let mut v = 1.0;
            for (xi, &e) in x.iter().zip(exps.iter()) {
                for _ in 0..e {
                    v *= xi;
                }
            }
            out.push(v);
        }
        Ok(())
    }

    /// Expands a batch of raw feature vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on the first malformed row.
    pub fn transform(&self, xs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        xs.iter().map(|x| self.transform_one(x)).collect()
    }

    /// Exponent vectors of the non-constant output features, in output
    /// order. Each inner slice has one exponent per input variable; the
    /// struct-of-arrays prediction path walks these to rebuild every
    /// monomial with exactly the multiplication sequence of
    /// [`PolynomialFeatures::transform_one`].
    pub(crate) fn exponents(&self) -> &[Vec<usize>] {
        &self.exponents
    }
}

/// Appends all exponent vectors of `num_vars` variables summing to
/// exactly `total`, in lexicographic order.
fn append_exponents(num_vars: usize, total: usize, out: &mut Vec<Vec<usize>>) {
    fn rec(
        prefix: &mut Vec<usize>,
        remaining_vars: usize,
        remaining_total: usize,
        out: &mut Vec<Vec<usize>>,
    ) {
        if remaining_vars == 1 {
            prefix.push(remaining_total);
            out.push(prefix.clone());
            prefix.pop();
            return;
        }
        for e in (0..=remaining_total).rev() {
            prefix.push(e);
            rec(prefix, remaining_vars - 1, remaining_total - e, out);
            prefix.pop();
        }
    }
    if num_vars == 0 {
        return;
    }
    rec(&mut Vec::new(), num_vars, total, out);
}

/// Z-score standardizer fitted on training data and reused at prediction
/// time.
///
/// Columns with zero variance are passed through unscaled (centred only),
/// which keeps constant knobs from blowing up the transform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations per column.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] if `xs` is empty or ragged.
    pub fn fit(xs: &[Vec<f64>]) -> Result<Self, MlError> {
        if xs.is_empty() {
            return Err(MlError::InvalidTrainingData("no rows".into()));
        }
        let dim = xs[0].len();
        if xs.iter().any(|r| r.len() != dim) {
            return Err(MlError::InvalidTrainingData("ragged rows".into()));
        }
        let n = xs.len() as f64;
        let mut means = vec![0.0; dim];
        for r in xs {
            for (m, v) in means.iter_mut().zip(r.iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for r in xs {
            for ((s, v), m) in stds.iter_mut().zip(r.iter()).zip(means.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        Ok(Standardizer { means, stds })
    }

    /// Standardizes one row in place semantics (returns a new vector).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on a wrong-length row.
    pub fn transform_one(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if x.len() != self.means.len() {
            return Err(MlError::FeatureMismatch {
                expected: self.means.len(),
                actual: x.len(),
            });
        }
        Ok(x.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(v, (m, s))| (v - m) / s)
            .collect())
    }

    /// Standardizes one row into a caller-provided buffer, appending one
    /// value per column. Arithmetic matches
    /// [`Standardizer::transform_one`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on a wrong-length row.
    pub fn transform_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), MlError> {
        if x.len() != self.means.len() {
            return Err(MlError::FeatureMismatch {
                expected: self.means.len(),
                actual: x.len(),
            });
        }
        out.extend(
            x.iter()
                .zip(self.means.iter().zip(self.stds.iter()))
                .map(|(v, (m, s))| (v - m) / s),
        );
        Ok(())
    }

    /// Standardizes a batch of rows.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on the first malformed row.
    pub fn transform(&self, xs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        xs.iter().map(|x| self.transform_one(x)).collect()
    }

    /// Standardizes a flat row-major batch into a *column-major* buffer:
    /// appends all of column 0, then all of column 1, and so on. Each
    /// value is produced by exactly the `(v - mean) / std` expression of
    /// [`Standardizer::transform_one`], so the transposed layout stays
    /// bit-identical per value; only the memory order changes, which is
    /// what lets the struct-of-arrays prediction path stream contiguous
    /// columns.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] if `rows.len()` is not a
    /// multiple of the fitted column count.
    pub fn transform_flat_transposed(
        &self,
        rows: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), MlError> {
        let dim = self.means.len();
        if dim == 0 || !rows.len().is_multiple_of(dim) {
            return Err(MlError::FeatureMismatch {
                expected: dim,
                actual: rows.len() % dim.max(1),
            });
        }
        out.reserve(rows.len());
        for ((c, m), s) in (0..dim).zip(self.means.iter()).zip(self.stds.iter()) {
            out.extend(rows.iter().skip(c).step_by(dim).map(|v| (v - m) / s));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_zero_is_constant_only() {
        let pf = PolynomialFeatures::new(3, 0);
        assert_eq!(pf.num_outputs(), 1);
        assert_eq!(pf.transform_one(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn degree_one_is_affine() {
        let pf = PolynomialFeatures::new(2, 1);
        assert_eq!(pf.transform_one(&[5.0, 7.0]).unwrap(), vec![1.0, 5.0, 7.0]);
    }

    #[test]
    fn degree_two_matches_paper_example() {
        let pf = PolynomialFeatures::new(2, 2);
        // The paper's degree-2 model over (s1, s2) has 6 terms.
        assert_eq!(pf.num_outputs(), 6);
        let row = pf.transform_one(&[2.0, 3.0]).unwrap();
        assert_eq!(row, vec![1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn output_count_matches_binomial_formula() {
        // #outputs = C(k + d, d) for k variables, degree d.
        fn binom(n: usize, k: usize) -> usize {
            let mut r = 1usize;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for k in 1..4 {
            for d in 0..5 {
                let pf = PolynomialFeatures::new(k, d);
                assert_eq!(pf.num_outputs(), binom(k + d, d), "k={k} d={d}");
            }
        }
    }

    #[test]
    fn transform_checks_arity() {
        let pf = PolynomialFeatures::new(2, 2);
        assert!(pf.transform_one(&[1.0]).is_err());
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let xs = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let s = Standardizer::fit(&xs).unwrap();
        let t = s.transform(&xs).unwrap();
        for c in 0..2 {
            let col: Vec<f64> = t.iter().map(|r| r[c]).collect();
            let m: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let v: f64 = col.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / col.len() as f64;
            assert!(m.abs() < 1e-12);
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_constant_column_is_centred_not_scaled() {
        let xs = vec![vec![4.0], vec![4.0], vec![4.0]];
        let s = Standardizer::fit(&xs).unwrap();
        assert_eq!(s.transform_one(&[4.0]).unwrap(), vec![0.0]);
        assert_eq!(s.transform_one(&[5.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn transform_into_matches_transform_one_bitwise() {
        let pf = PolynomialFeatures::new(3, 4);
        let s = Standardizer::fit(&[vec![1.0, 5.0, -2.0], vec![3.0, 9.0, 4.0]]).unwrap();
        let raw = [2.5, 7.25, 0.125];
        let std_owned = s.transform_one(&raw).unwrap();
        let mut std_buf = Vec::new();
        s.transform_into(&raw, &mut std_buf).unwrap();
        assert_eq!(std_owned, std_buf);
        let expanded = pf.transform_one(&std_owned).unwrap();
        let mut buf = vec![9.9]; // pre-existing content must be preserved
        pf.transform_into(&std_buf, &mut buf).unwrap();
        assert_eq!(buf[0], 9.9);
        for (a, b) in expanded.iter().zip(&buf[1..]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(pf.transform_into(&[1.0], &mut buf).is_err());
        assert!(s.transform_into(&[1.0], &mut buf).is_err());
    }

    #[test]
    fn standardizer_rejects_bad_input() {
        assert!(Standardizer::fit(&[]).is_err());
        assert!(Standardizer::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let s = Standardizer::fit(&[vec![1.0, 2.0]]).unwrap();
        assert!(s.transform_one(&[1.0]).is_err());
    }
}
