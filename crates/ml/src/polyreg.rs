//! Polynomial regression — OPPROX's model family (paper Sec. 3.6).

use crate::error::MlError;
use crate::features::{PolynomialFeatures, Standardizer};
use opprox_linalg::gram::GramSystem;
use opprox_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// The default ridge strength used by [`PolynomialRegression::fit`] and
/// the cross-validation engine.
pub const DEFAULT_RIDGE: f64 = 1e-8;

/// Reusable scratch buffers for batched, allocation-free prediction.
///
/// One instance can be shared across models of different shapes; buffers
/// are cleared and regrown as needed and keep their capacity between
/// calls.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    /// The standardized batch in column-major (struct-of-arrays) layout:
    /// all rows' column 0 first, then column 1, …
    pub(crate) std_cols: Vec<f64>,
    /// One monomial evaluated across the whole batch.
    pub(crate) mono: Vec<f64>,
    /// Per-row dot-product accumulators.
    pub(crate) acc: Vec<f64>,
    /// Projected (feature-selected) rows, row-major.
    pub(crate) projected: Vec<f64>,
    /// Per-row sub-model routing indices.
    pub(crate) route: Vec<usize>,
    /// Gathered rows belonging to one sub-model, row-major.
    pub(crate) gathered: Vec<f64>,
    /// Predictions for the gathered rows.
    pub(crate) gathered_out: Vec<f64>,
}

/// A fitted polynomial-regression model.
///
/// Raw inputs are z-score standardized, expanded into all monomials up to
/// the chosen total degree, and fitted by (mildly ridge-regularized) least
/// squares. The paper reports degrees between 2 and 6 across its
/// applications.
///
/// The model is `serde`-serializable, mirroring the paper's storage of
/// trained models (as Python pickles) for the runtime optimizer.
///
/// # Example
///
/// ```
/// use opprox_ml::polyreg::PolynomialRegression;
///
/// let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.3]).collect();
/// let ys: Vec<f64> = xs.iter().map(|r| 1.0 + r[0] * r[0]).collect();
/// let m = PolynomialRegression::fit(&xs, &ys, 2).unwrap();
/// assert!((m.predict_one(&[2.0]).unwrap() - 5.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolynomialRegression {
    standardizer: Standardizer,
    features: PolynomialFeatures,
    coefficients: Vec<f64>,
    degree: usize,
}

impl PolynomialRegression {
    /// Fits a polynomial of the given total degree with the default ridge
    /// strength (`1e-8`).
    ///
    /// # Errors
    ///
    /// See [`PolynomialRegression::fit_with_ridge`].
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], degree: usize) -> Result<Self, MlError> {
        Self::fit_with_ridge(xs, ys, degree, DEFAULT_RIDGE)
    }

    /// Fits a polynomial of the given total degree with an explicit ridge
    /// strength.
    ///
    /// # Errors
    ///
    /// * [`MlError::InvalidTrainingData`] if `xs` is empty, ragged, or its
    ///   length differs from `ys`.
    /// * [`MlError::InvalidHyperparameter`] if `degree == 0` and there is
    ///   nothing to fit, or `lambda < 0`.
    /// * [`MlError::Numeric`] if the normal equations cannot be solved.
    pub fn fit_with_ridge(
        xs: &[Vec<f64>],
        ys: &[f64],
        degree: usize,
        lambda: f64,
    ) -> Result<Self, MlError> {
        if xs.is_empty() {
            return Err(MlError::InvalidTrainingData("no rows".into()));
        }
        if xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "{} feature rows vs {} targets",
                xs.len(),
                ys.len()
            )));
        }
        if lambda < 0.0 {
            return Err(MlError::InvalidHyperparameter(format!(
                "ridge strength must be non-negative, got {lambda}"
            )));
        }
        let standardizer = Standardizer::fit(xs)?;
        let features = PolynomialFeatures::new(xs[0].len(), degree);
        let design = expand_design(&standardizer, &features, xs)?;
        let coefficients = GramSystem::from_design(&design, ys)?.solve_ridge(lambda)?;
        Ok(PolynomialRegression {
            standardizer,
            features,
            coefficients,
            degree,
        })
    }

    /// Assembles a model from already-computed parts; used by the
    /// expand-once cross-validation engine, which solves the full-data
    /// system as a by-product of scoring the folds.
    pub(crate) fn from_parts(
        standardizer: Standardizer,
        features: PolynomialFeatures,
        coefficients: Vec<f64>,
        degree: usize,
    ) -> Self {
        PolynomialRegression {
            standardizer,
            features,
            coefficients,
            degree,
        }
    }

    /// The total polynomial degree of the fitted model.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of raw input features the model expects.
    pub fn num_inputs(&self) -> usize {
        self.features.num_inputs()
    }

    /// The fitted coefficient vector (constant term first).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Predicts the target for one raw feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on a wrong-length input.
    pub fn predict_one(&self, x: &[f64]) -> Result<f64, MlError> {
        let std_x = self.standardizer.transform_one(x)?;
        let expanded = self.features.transform_one(&std_x)?;
        Ok(expanded
            .iter()
            .zip(self.coefficients.iter())
            .map(|(f, c)| f * c)
            .sum())
    }

    /// Predicts targets for a batch of raw feature vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on the first malformed row.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Batched, allocation-free prediction over a flat row-major buffer of
    /// raw feature rows. Appends one prediction per row to `out`, reusing
    /// the buffers in `scratch`.
    ///
    /// Internally the batch is processed in a struct-of-arrays layout:
    /// the rows are standardized into column-major order once, each
    /// monomial is then built as a contiguous column pass (`mono[r] *=
    /// std_col[var][r]`, repeated per exponent), and folded into per-row
    /// accumulators (`acc[r] += mono[r] * coeff`). Every per-row value
    /// goes through exactly the operation sequence of the scalar path —
    /// same multiplication order per monomial, same left-to-right dot
    /// fold starting from `0.0` — so results stay bit-identical to
    /// [`predict_one`] while the inner loops run over contiguous memory
    /// and autovectorize.
    ///
    /// # Errors
    ///
    /// * [`MlError::FeatureMismatch`] if `row_len` differs from the model's
    ///   input arity.
    /// * [`MlError::InvalidTrainingData`] if `rows.len()` is not a multiple
    ///   of `row_len`.
    ///
    /// [`predict_one`]: PolynomialRegression::predict_one
    pub fn predict_flat_into(
        &self,
        rows: &[f64],
        row_len: usize,
        out: &mut Vec<f64>,
        scratch: &mut PredictScratch,
    ) -> Result<(), MlError> {
        if row_len != self.num_inputs() {
            return Err(MlError::FeatureMismatch {
                expected: self.num_inputs(),
                actual: row_len,
            });
        }
        if row_len == 0 {
            return Err(MlError::InvalidTrainingData(
                "zero-length prediction rows".into(),
            ));
        }
        if !rows.len().is_multiple_of(row_len) {
            return Err(MlError::InvalidTrainingData(format!(
                "flat buffer of {} values is not a multiple of row length {row_len}",
                rows.len()
            )));
        }
        let n = rows.len() / row_len;
        scratch.std_cols.clear();
        self.standardizer
            .transform_flat_transposed(rows, &mut scratch.std_cols)?;
        // Constant term: the scalar dot fold starts `0.0 + 1.0 * c0`, and
        // `0.0 + (-0.0)` is `+0.0`, so the explicit `0.0 +` must stay.
        let c0 = self.coefficients[0];
        scratch.acc.clear();
        scratch.acc.resize(n, 0.0 + 1.0 * c0);
        for (exps, &c) in self
            .features
            .exponents()
            .iter()
            .zip(self.coefficients.iter().skip(1))
        {
            scratch.mono.clear();
            scratch.mono.resize(n, 1.0);
            for (var, &e) in exps.iter().enumerate() {
                let col = &scratch.std_cols[var * n..(var + 1) * n];
                for _ in 0..e {
                    for (m, x) in scratch.mono.iter_mut().zip(col) {
                        *m *= x;
                    }
                }
            }
            for (a, m) in scratch.acc.iter_mut().zip(scratch.mono.iter()) {
                *a += m * c;
            }
        }
        out.extend_from_slice(&scratch.acc);
        Ok(())
    }

    /// Interval enclosure of [`predict_one`] over the axis-aligned feature
    /// box `[lo, hi]`: returns `(min, max)` bounds such that every
    /// `predict_one(x)` with `lo[i] <= x[i] <= hi[i]` lies inside.
    ///
    /// The enclosure mirrors the scalar evaluation structure — monotone
    /// standardization of the endpoints, a corner-product interval chain
    /// per monomial (one multiplication per exponent, like
    /// `transform_one`), and a sign-directed dot fold — then widens the
    /// result by a small relative slack to absorb the floating-point
    /// rounding the interval chain cannot track exactly. Bounds are for
    /// pruning, not for exact reproduction: they must only never exclude
    /// a reachable prediction. Non-finite inputs or coefficients yield an
    /// unbounded `(-inf, +inf)` interval, which callers treat as
    /// "cannot prune".
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on wrong-length bounds.
    ///
    /// [`predict_one`]: PolynomialRegression::predict_one
    pub fn predict_interval(&self, lo: &[f64], hi: &[f64]) -> Result<(f64, f64), MlError> {
        let k = self.num_inputs();
        if lo.len() != k || hi.len() != k {
            return Err(MlError::FeatureMismatch {
                expected: k,
                actual: if lo.len() != k { lo.len() } else { hi.len() },
            });
        }
        // Standardize both corners; (v - m) / s is monotone for s > 0, and
        // the min/max re-sort keeps the interval valid even if a corrupt
        // model carries a negative scale.
        let mut std_lo = Vec::with_capacity(k);
        let mut std_hi = Vec::with_capacity(k);
        self.standardizer.transform_into(lo, &mut std_lo)?;
        self.standardizer.transform_into(hi, &mut std_hi)?;
        for (a, b) in std_lo.iter_mut().zip(std_hi.iter_mut()) {
            if a > b {
                std::mem::swap(a, b);
            }
        }
        let c0 = self.coefficients[0];
        let mut acc = (c0, c0);
        for (exps, &c) in self
            .features
            .exponents()
            .iter()
            .zip(self.coefficients.iter().skip(1))
        {
            let mut v = (1.0f64, 1.0f64);
            for (var, &e) in exps.iter().enumerate() {
                let x = (std_lo[var], std_hi[var]);
                for _ in 0..e {
                    v = interval_mul(v, x);
                }
            }
            let term = if c >= 0.0 {
                (v.0 * c, v.1 * c)
            } else {
                (v.1 * c, v.0 * c)
            };
            acc.0 += term.0;
            acc.1 += term.1;
        }
        if !acc.0.is_finite() || !acc.1.is_finite() {
            return Ok((f64::NEG_INFINITY, f64::INFINITY));
        }
        // Relative slack: the interval chain evaluates each operation in
        // round-to-nearest rather than directed rounding, so pad by a few
        // orders of magnitude more than the accumulated ulp error.
        let slack = 1e-9 * acc.0.abs().max(acc.1.abs()).max(1.0);
        Ok((acc.0 - slack, acc.1 + slack))
    }
}

/// Interval product: min/max over the four corner products. NaN corners
/// (e.g. `0 * inf`) poison the interval to unbounded.
fn interval_mul(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    let c = [a.0 * b.0, a.0 * b.1, a.1 * b.0, a.1 * b.1];
    if c.iter().any(|v| v.is_nan()) {
        return (f64::NEG_INFINITY, f64::INFINITY);
    }
    let mut lo = c[0];
    let mut hi = c[0];
    for &v in &c[1..] {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Standardizes and polynomial-expands `xs` into one flat design matrix,
/// built without per-row intermediate vectors. Shared by model fitting and
/// the expand-once cross-validation engine.
pub(crate) fn expand_design(
    standardizer: &Standardizer,
    features: &PolynomialFeatures,
    xs: &[Vec<f64>],
) -> Result<Matrix, MlError> {
    let p = features.num_outputs();
    let mut flat = Vec::with_capacity(xs.len() * p);
    let mut std_row = Vec::with_capacity(features.num_inputs());
    for x in xs {
        std_row.clear();
        standardizer.transform_into(x, &mut std_row)?;
        features.transform_into(&std_row, &mut flat)?;
    }
    Matrix::from_vec(xs.len(), p, flat).map_err(MlError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_linalg::stats::r2_score;

    fn grid2(n: usize) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                out.push(vec![i as f64, j as f64]);
            }
        }
        out
    }

    #[test]
    fn recovers_linear_function() {
        let xs = grid2(5);
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 + 3.0 * r[0] - r[1]).collect();
        let m = PolynomialRegression::fit(&xs, &ys, 1).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((m.predict_one(x).unwrap() - y).abs() < 1e-6);
        }
    }

    #[test]
    fn recovers_quadratic_with_interaction() {
        let xs = grid2(6);
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| 1.0 + r[0] * r[1] + 0.5 * r[1] * r[1])
            .collect();
        let m = PolynomialRegression::fit(&xs, &ys, 2).unwrap();
        let preds = m.predict(&xs).unwrap();
        assert!(r2_score(&ys, &preds) > 0.999999);
    }

    #[test]
    fn higher_degree_fits_cubic() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.25]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0].powi(3) - 2.0 * r[0]).collect();
        let m2 = PolynomialRegression::fit(&xs, &ys, 2).unwrap();
        let m3 = PolynomialRegression::fit(&xs, &ys, 3).unwrap();
        let r2_2 = r2_score(&ys, &m2.predict(&xs).unwrap());
        let r2_3 = r2_score(&ys, &m3.predict(&xs).unwrap());
        assert!(r2_3 > r2_2);
        assert!(r2_3 > 0.999999);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(PolynomialRegression::fit(&[vec![1.0]], &[1.0, 2.0], 1).is_err());
        assert!(PolynomialRegression::fit(&[], &[], 1).is_err());
    }

    #[test]
    fn predict_checks_arity() {
        let m = PolynomialRegression::fit(&grid2(3), &[1.0; 9], 1).unwrap();
        assert!(m.predict_one(&[1.0]).is_err());
    }

    #[test]
    fn serializes_and_round_trips() {
        let xs = grid2(4);
        let ys: Vec<f64> = xs.iter().map(|r| r[0] + r[1]).collect();
        let m = PolynomialRegression::fit(&xs, &ys, 2).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: PolynomialRegression = serde_json::from_str(&json).unwrap();
        for x in &xs {
            let a = m.predict_one(x).unwrap();
            let b = back.predict_one(x).unwrap();
            // JSON float text round-trips can lose the last ULP.
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        }
    }

    #[test]
    fn predict_flat_into_matches_predict_one_bitwise() {
        let xs = grid2(5);
        let ys: Vec<f64> = xs.iter().map(|r| 1.0 + r[0] * r[1] - 0.2 * r[1]).collect();
        let m = PolynomialRegression::fit(&xs, &ys, 3).unwrap();
        let flat: Vec<f64> = xs.iter().flat_map(|r| r.iter().copied()).collect();
        let mut out = vec![f64::NAN]; // pre-existing content must survive
        let mut scratch = PredictScratch::default();
        m.predict_flat_into(&flat, 2, &mut out, &mut scratch)
            .unwrap();
        assert_eq!(out.len(), xs.len() + 1);
        assert!(out[0].is_nan());
        for (x, batched) in xs.iter().zip(&out[1..]) {
            assert_eq!(m.predict_one(x).unwrap().to_bits(), batched.to_bits());
        }
        // Malformed inputs are rejected.
        assert!(m
            .predict_flat_into(&flat[..3], 2, &mut out, &mut scratch)
            .is_err());
        assert!(m
            .predict_flat_into(&flat, 3, &mut out, &mut scratch)
            .is_err());
    }

    #[test]
    fn interval_encloses_point_predictions_over_box() {
        let xs = grid2(6);
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| 1.0 + r[0] * r[1] - 0.3 * r[1] * r[1] * r[0])
            .collect();
        let m = PolynomialRegression::fit(&xs, &ys, 3).unwrap();
        // Sweep several boxes, including degenerate (point) boxes, and
        // check a dense grid of interior points never escapes the bounds.
        let boxes = [
            ([0.0, 0.0], [5.0, 5.0]),
            ([1.5, 2.0], [1.5, 2.0]),
            ([-2.0, 3.0], [0.5, 8.0]),
            ([4.0, -1.0], [4.5, 0.0]),
        ];
        for (lo, hi) in boxes {
            let (bl, bh) = m.predict_interval(&lo, &hi).unwrap();
            assert!(bl <= bh);
            for i in 0..=8 {
                for j in 0..=8 {
                    let x = [
                        lo[0] + (hi[0] - lo[0]) * i as f64 / 8.0,
                        lo[1] + (hi[1] - lo[1]) * j as f64 / 8.0,
                    ];
                    let p = m.predict_one(&x).unwrap();
                    assert!(
                        bl <= p && p <= bh,
                        "prediction {p} escapes interval [{bl}, {bh}] at {x:?}"
                    );
                }
            }
        }
        assert!(m.predict_interval(&[0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn constant_target_fits_constant() {
        let xs = grid2(3);
        let ys = vec![7.5; 9];
        let m = PolynomialRegression::fit(&xs, &ys, 2).unwrap();
        assert!((m.predict_one(&[1.0, 1.0]).unwrap() - 7.5).abs() < 1e-6);
    }
}
