//! Maximal Information Coefficient (MIC) feature filtering
//! (paper Sec. 3.7; Reshef et al., *Science* 2011).
//!
//! OPPROX uses MIC to decide whether an input feature (an application
//! input parameter or an approximation level) has *any* association with a
//! modeling target (iteration count, QoS degradation, or speedup), and
//! drops features without an association before fitting the polynomial
//! regression.
//!
//! This module implements a grid-search MIC in the spirit of ApproxMaxMI:
//! for every grid shape `(a, b)` with `a · b ≤ n^0.6`, both axes are
//! partitioned into equal-frequency bins, the mutual information of the
//! induced joint distribution is computed and normalized by
//! `log(min(a, b))`, and the maximum over all admissible shapes is
//! returned. The full dynamic-programming optimization over x-partitions
//! is replaced by equal-frequency partitions, which is a standard,
//! well-behaved approximation that preserves the property the paper relies
//! on: MIC ≈ 0 for independent variables and MIC → 1 for noiseless
//! functional relationships.

use crate::error::MlError;

/// Default grid-size exponent `α` from Reshef et al.: grids are limited to
/// `a · b ≤ n^α`.
pub const DEFAULT_ALPHA: f64 = 0.6;

/// Computes the Maximal Information Coefficient between `xs` and `ys`.
///
/// Returns a value in `[0, 1]`; larger values mean stronger association.
///
/// # Errors
///
/// * [`MlError::InvalidTrainingData`] if the slices differ in length or
///   contain fewer than four points (no admissible grid exists).
///
/// # Example
///
/// ```
/// use opprox_ml::mic::mic;
///
/// let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
/// let linear: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// assert!(mic(&xs, &linear).unwrap() > 0.9);
/// ```
pub fn mic(xs: &[f64], ys: &[f64]) -> Result<f64, MlError> {
    mic_with_alpha(xs, ys, DEFAULT_ALPHA)
}

/// Computes MIC with an explicit grid-size exponent `alpha`.
///
/// # Errors
///
/// Same as [`mic`], plus [`MlError::InvalidHyperparameter`] for
/// non-positive `alpha`.
pub fn mic_with_alpha(xs: &[f64], ys: &[f64], alpha: f64) -> Result<f64, MlError> {
    if alpha <= 0.0 {
        return Err(MlError::InvalidHyperparameter(format!(
            "alpha must be positive, got {alpha}"
        )));
    }
    if xs.len() != ys.len() {
        return Err(MlError::InvalidTrainingData(format!(
            "{} x values vs {} y values",
            xs.len(),
            ys.len()
        )));
    }
    let n = xs.len();
    if n < 4 {
        return Err(MlError::InvalidTrainingData(format!(
            "MIC needs at least 4 points, got {n}"
        )));
    }
    let budget = (n as f64).powf(alpha).floor() as usize;
    let max_bins = budget / 2;
    let mut best = 0.0f64;
    for a in 2..=max_bins.max(2) {
        let max_b = (budget / a).max(2);
        for b in 2..=max_b {
            if a * b > budget && (a, b) != (2, 2) {
                continue;
            }
            let x_bins = equal_frequency_assign(xs, a);
            let y_bins = equal_frequency_assign(ys, b);
            let mi = mutual_information(&x_bins, a, &y_bins, b);
            let norm = (a.min(b) as f64).ln();
            if norm > 0.0 {
                best = best.max(mi / norm);
            }
        }
    }
    Ok(best.min(1.0))
}

/// Assigns each value to one of `bins` equal-frequency bins.
fn equal_frequency_assign(vals: &[f64], bins: usize) -> Vec<usize> {
    let n = vals.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        vals[i]
            .partial_cmp(&vals[j])
            .expect("NaN in MIC input")
            .then(i.cmp(&j))
    });
    let mut assign = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        assign[i] = (rank * bins / n).min(bins - 1);
    }
    // Ties in value must land in the same bin to avoid phantom information;
    // merge equal values into the bin of their first occurrence.
    for w in 1..n {
        let (i_prev, i_cur) = (order[w - 1], order[w]);
        if vals[i_prev] == vals[i_cur] {
            assign[i_cur] = assign[i_prev];
        }
    }
    assign
}

/// Mutual information (nats) of a discrete joint distribution given bin
/// assignments.
fn mutual_information(xb: &[usize], a: usize, yb: &[usize], b: usize) -> f64 {
    let n = xb.len() as f64;
    let mut joint = vec![0.0f64; a * b];
    let mut px = vec![0.0f64; a];
    let mut py = vec![0.0f64; b];
    for (&x, &y) in xb.iter().zip(yb.iter()) {
        joint[x * b + y] += 1.0;
        px[x] += 1.0;
        py[y] += 1.0;
    }
    let mut mi = 0.0;
    for x in 0..a {
        for y in 0..b {
            let pxy = joint[x * b + y] / n;
            if pxy > 0.0 {
                mi += pxy * (pxy / (px[x] / n * py[y] / n)).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Filters feature columns by their MIC against the target.
///
/// Returns the indices of features whose MIC with `ys` is at least
/// `threshold`. This is exactly the paper's pre-modeling step: "features
/// not having an association are filtered out".
///
/// # Errors
///
/// Propagates [`mic`] errors; rows must be non-ragged.
pub fn filter_features_by_mic(
    xs: &[Vec<f64>],
    ys: &[f64],
    threshold: f64,
) -> Result<Vec<usize>, MlError> {
    if xs.is_empty() {
        return Err(MlError::InvalidTrainingData("no rows".into()));
    }
    let dim = xs[0].len();
    if xs.iter().any(|r| r.len() != dim) {
        return Err(MlError::InvalidTrainingData("ragged rows".into()));
    }
    let mut keep = Vec::new();
    for c in 0..dim {
        let col: Vec<f64> = xs.iter().map(|r| r[c]).collect();
        // A constant column carries no information; skip it outright.
        if col.iter().all(|&v| v == col[0]) {
            continue;
        }
        if mic(&col, ys)? >= threshold {
            keep.push(c);
        }
    }
    Ok(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn linear_relationship_scores_high() {
        let xs: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        assert!(mic(&xs, &ys).unwrap() > 0.9);
    }

    #[test]
    fn nonmonotone_functional_relationship_scores_high() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x).sin()).collect();
        assert!(mic(&xs, &ys).unwrap() > 0.5);
    }

    #[test]
    fn independent_noise_scores_low() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..256).map(|_| rng.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..256).map(|_| rng.gen::<f64>()).collect();
        let v = mic(&xs, &ys).unwrap();
        assert!(v < 0.35, "independent MIC was {v}");
    }

    #[test]
    fn mic_is_symmetric_enough() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let a = mic(&xs, &ys).unwrap();
        let b = mic(&ys, &xs).unwrap();
        assert!((a - b).abs() < 0.2);
        assert!(a > 0.8);
    }

    #[test]
    fn rejects_short_and_mismatched_inputs() {
        assert!(mic(&[1.0, 2.0], &[1.0, 2.0]).is_err());
        assert!(mic(&[1.0, 2.0, 3.0, 4.0], &[1.0]).is_err());
        assert!(mic_with_alpha(&[1.0; 8], &[1.0; 8], 0.0).is_err());
    }

    #[test]
    fn filter_keeps_informative_and_drops_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = i as f64 / 10.0;
            let noise: f64 = rng.gen();
            xs.push(vec![x0, noise, 5.0]);
            ys.push(x0 * 2.0 + 1.0);
        }
        let keep = filter_features_by_mic(&xs, &ys, 0.4).unwrap();
        assert!(keep.contains(&0), "informative feature dropped: {keep:?}");
        assert!(!keep.contains(&1), "noise feature kept: {keep:?}");
        assert!(!keep.contains(&2), "constant feature kept: {keep:?}");
    }

    #[test]
    fn ties_do_not_create_phantom_information() {
        // x constant except for ties => assignments collapse to one bin.
        let xs = vec![1.0; 64];
        let ys: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let v = mic(&xs, &ys).unwrap();
        assert!(v < 1e-9, "constant x should carry no information, got {v}");
    }
}
