//! From-scratch machine-learning substrate for the OPPROX reproduction.
//!
//! OPPROX (CGO 2017) builds its phase-aware performance and error models
//! out of four classical ingredients, all implemented here without
//! external ML dependencies:
//!
//! * [`polyreg`] — polynomial regression (Sec. 3.6 of the paper), the
//!   model family used for speedup, QoS-degradation, and outer-loop
//!   iteration-count estimation.
//! * [`dtree`] — a decision-tree classifier (Sec. 3.4), used to predict
//!   the application's control-flow class from its input parameters.
//! * [`mic`] — the Maximal Information Coefficient (Sec. 3.7), used to
//!   filter out input features with no association to the modeling target.
//! * [`crossval`] — k-fold cross-validation (Sec. 3.7), used to drive the
//!   automatic polynomial-degree escalation.
//! * [`confidence`] — empirical confidence intervals (Sec. 3.6,
//!   "Confidence Analysis of Models"), used to derive conservative QoS and
//!   speedup estimates.
//! * [`model_select`] — the degree-escalation and sub-model-splitting
//!   loop that combines all of the above.
//! * [`m5`] — M5-style model trees (the model family of the related
//!   Capri system), used by the ablation benches.
//! * [`features`] — polynomial feature expansion and z-score
//!   standardization shared by the regression models.
//! * [`dataset`] — a small named-column dataset container.
//! * [`fitmetrics`] — lock-free counters instrumenting the fitting
//!   pipeline (fits attempted, CV solves, degrees tried).
//!
//! # Example: fitting a quadratic
//!
//! ```
//! use opprox_ml::polyreg::PolynomialRegression;
//!
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 2.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|r| 3.0 + 2.0 * r[0] - 0.5 * r[0] * r[0]).collect();
//! let model = PolynomialRegression::fit(&xs, &ys, 2).unwrap();
//! let pred = model.predict_one(&[4.0]).unwrap();
//! assert!((pred - (3.0 + 8.0 - 8.0)).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confidence;
pub mod crossval;
pub mod dataset;
pub mod dtree;
pub mod error;
pub mod features;
pub mod fitmetrics;
pub mod m5;
pub mod mic;
pub mod model_select;
pub mod polyreg;

pub use dataset::Dataset;
pub use error::MlError;
