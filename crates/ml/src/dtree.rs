//! Decision-tree classifier (paper Sec. 3.4; Quinlan 1986).
//!
//! OPPROX trains a decision tree on call-context logs to predict which
//! control-flow class the application will take for a given combination of
//! input parameters, and then keeps separate speedup/QoS models per class.
//!
//! This is a CART-style binary tree over numeric features with Gini
//! impurity, midpoint thresholds, and configurable depth/leaf-size limits.

use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART-style decision-tree classifier with integer class labels.
///
/// # Example
///
/// ```
/// use opprox_ml::dtree::{DecisionTree, TreeParams};
///
/// // Class is 1 iff the first feature exceeds 5.
/// let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
/// let ys: Vec<usize> = (0..10).map(|i| usize::from(i > 5)).collect();
/// let tree = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
/// assert_eq!(tree.predict_one(&[2.0]).unwrap(), 0);
/// assert_eq!(tree.predict_one(&[9.0]).unwrap(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    num_features: usize,
    num_classes: usize,
}

impl DecisionTree {
    /// Fits a tree on numeric features and integer class labels.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] for empty, ragged, or
    /// mismatched inputs.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], params: TreeParams) -> Result<Self, MlError> {
        if xs.is_empty() {
            return Err(MlError::InvalidTrainingData("no rows".into()));
        }
        if xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "{} feature rows vs {} labels",
                xs.len(),
                ys.len()
            )));
        }
        let dim = xs[0].len();
        if xs.iter().any(|r| r.len() != dim) {
            return Err(MlError::InvalidTrainingData("ragged rows".into()));
        }
        let num_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        let idx: Vec<usize> = (0..xs.len()).collect();
        let root = build_node(xs, ys, &idx, num_classes, params, 0);
        Ok(DecisionTree {
            root,
            num_features: dim,
            num_classes,
        })
    }

    /// Number of input features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of distinct classes (max label + 1) seen during training.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Depth of the fitted tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(left).max(rec(right)),
            }
        }
        rec(&self.root)
    }

    /// The sorted, de-duplicated set of class labels that appear on some
    /// leaf — i.e. the classes this tree can actually predict. A label in
    /// `0..num_classes` that is absent here is unreachable control flow
    /// (lint `A010` in `opprox-analyze`).
    pub fn leaf_labels(&self) -> Vec<usize> {
        fn rec(n: &Node, out: &mut Vec<usize>) {
            match n {
                Node::Leaf { label } => out.push(*label),
                Node::Split { left, right, .. } => {
                    rec(left, out);
                    rec(right, out);
                }
            }
        }
        let mut labels = Vec::new();
        rec(&self.root, &mut labels);
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on a wrong-length input.
    pub fn predict_one(&self, x: &[f64]) -> Result<usize, MlError> {
        if x.len() != self.num_features {
            return Err(MlError::FeatureMismatch {
                expected: self.num_features,
                actual: x.len(),
            });
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return Ok(*label),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicts classes for a batch of feature vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureMismatch`] on the first malformed row.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Result<Vec<usize>, MlError> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Fraction of correctly classified rows.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidTrainingData`] on a length mismatch and
    /// propagates prediction errors.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[usize]) -> Result<f64, MlError> {
        if xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "{} feature rows vs {} labels",
                xs.len(),
                ys.len()
            )));
        }
        if xs.is_empty() {
            return Ok(1.0);
        }
        let preds = self.predict(xs)?;
        let correct = preds.iter().zip(ys.iter()).filter(|(p, y)| p == y).count();
        Ok(correct as f64 / xs.len() as f64)
    }
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn majority_label(ys: &[usize], idx: &[usize], num_classes: usize) -> usize {
    let mut counts = vec![0usize; num_classes];
    for &i in idx {
        counts[ys[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(l, _)| l)
        .unwrap_or(0)
}

fn build_node(
    xs: &[Vec<f64>],
    ys: &[usize],
    idx: &[usize],
    num_classes: usize,
    params: TreeParams,
    depth: usize,
) -> Node {
    let mut counts = vec![0usize; num_classes];
    for &i in idx {
        counts[ys[i]] += 1;
    }
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || depth >= params.max_depth || idx.len() < params.min_samples_split {
        return Node::Leaf {
            label: majority_label(ys, idx, num_classes),
        };
    }

    let parent_gini = gini(&counts, idx.len());
    let dim = xs[0].len();
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)

    // Features address columns of the row-major sample matrix.
    #[allow(clippy::needless_range_loop)]
    for f in 0..dim {
        let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
        vals.dedup();
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let mut lc = vec![0usize; num_classes];
            let mut rc = vec![0usize; num_classes];
            let mut ln = 0usize;
            let mut rn = 0usize;
            for &i in idx {
                if xs[i][f] <= threshold {
                    lc[ys[i]] += 1;
                    ln += 1;
                } else {
                    rc[ys[i]] += 1;
                    rn += 1;
                }
            }
            if ln == 0 || rn == 0 {
                continue;
            }
            let weighted =
                (ln as f64 * gini(&lc, ln) + rn as f64 * gini(&rc, rn)) / idx.len() as f64;
            let gain = parent_gini - weighted;
            if best.is_none_or(|(g, _, _)| gain > g + 1e-15) {
                best = Some((gain, f, threshold));
            }
        }
    }

    // A zero-gain split is still worth taking when the node is impure
    // (e.g. the root of XOR data): the children are strictly smaller, so
    // deeper splits get a chance to separate the classes.
    match best {
        Some((gain, feature, threshold)) if gain > 1e-12 || !pure => {
            let left_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| xs[i][feature] <= threshold)
                .collect();
            let right_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| xs[i][feature] > threshold)
                .collect();
            Node::Split {
                feature,
                threshold,
                left: Box::new(build_node(
                    xs,
                    ys,
                    &left_idx,
                    num_classes,
                    params,
                    depth + 1,
                )),
                right: Box::new(build_node(
                    xs,
                    ys,
                    &right_idx,
                    num_classes,
                    params,
                    depth + 1,
                )),
            }
        }
        _ => Node::Leaf {
            label: majority_label(ys, idx, num_classes),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..5 {
                    xs.push(vec![a as f64, b as f64]);
                    ys.push((a ^ b) as usize);
                }
            }
        }
        (xs, ys)
    }

    #[test]
    fn fits_axis_aligned_boundary() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 0.0]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let t = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        assert_eq!(t.accuracy(&xs, &ys).unwrap(), 1.0);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn fits_xor_with_depth_two() {
        let (xs, ys) = xor_data();
        let t = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        assert_eq!(t.accuracy(&xs, &ys).unwrap(), 1.0);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let (xs, ys) = xor_data();
        let t = DecisionTree::fit(
            &xs,
            &ys,
            TreeParams {
                max_depth: 1,
                min_samples_split: 2,
            },
        )
        .unwrap();
        assert!(t.depth() <= 1);
        // Depth-1 cannot separate XOR perfectly.
        assert!(t.accuracy(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn multiclass_labels_work() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let t = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        assert_eq!(t.num_classes(), 3);
        assert_eq!(t.predict_one(&[5.0]).unwrap(), 0);
        assert_eq!(t.predict_one(&[15.0]).unwrap(), 1);
        assert_eq!(t.predict_one(&[25.0]).unwrap(), 2);
    }

    #[test]
    fn pure_input_yields_single_leaf() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![4, 4, 4];
        let t = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict_one(&[100.0]).unwrap(), 4);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(DecisionTree::fit(&[], &[], TreeParams::default()).is_err());
        assert!(DecisionTree::fit(&[vec![1.0]], &[0, 1], TreeParams::default()).is_err());
        assert!(
            DecisionTree::fit(&[vec![1.0], vec![1.0, 2.0]], &[0, 1], TreeParams::default())
                .is_err()
        );
        let t = DecisionTree::fit(&[vec![1.0], vec![2.0]], &[0, 1], TreeParams::default()).unwrap();
        assert!(t.predict_one(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn leaf_labels_cover_reachable_classes_only() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let t = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        assert_eq!(t.leaf_labels(), vec![0, 1, 2]);

        // A depth-0 tree over multi-label data reaches only the majority
        // label; the other classes are unreachable.
        let stump = DecisionTree::fit(
            &xs,
            &ys,
            TreeParams {
                max_depth: 0,
                min_samples_split: 2,
            },
        )
        .unwrap();
        assert_eq!(stump.num_classes(), 3);
        assert_eq!(stump.leaf_labels().len(), 1);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let (xs, ys) = xor_data();
        let t = DecisionTree::fit(&xs, &ys, TreeParams::default()).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        for x in &xs {
            assert_eq!(t.predict_one(x).unwrap(), back.predict_one(x).unwrap());
        }
    }
}
