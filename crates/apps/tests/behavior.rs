//! Cross-application behavioural invariants.
//!
//! Every benchmark port must be a deterministic function of its inputs,
//! must save work when approximated (per iteration), and must show the
//! phase structure the paper's evaluation rests on.

use opprox_approx_rt::config::local_sweep;
use opprox_approx_rt::{InputParams, LevelConfig, PhaseSchedule};
use opprox_apps::registry::all_apps;

/// A cheap input per application.
fn cheap_input(name: &str) -> InputParams {
    InputParams::new(match name {
        "LULESH" => vec![48.0, 2.0],
        "FFmpeg" => vec![12.0, 3.0, 600.0, 0.0],
        "Bodytrack" => vec![3.0, 120.0, 12.0],
        "PSO" => vec![16.0, 3.0],
        "CoMD" => vec![3.0, 1.2, 60.0],
        "PageRank" => vec![32.0, 3.0, 40.0],
        "StreamAgg" => vec![48.0, 24.0],
        "Stencil" => vec![12.0, 24.0],
        other => panic!("unknown app {other}"),
    })
}

#[test]
fn all_apps_are_deterministic_under_approximation() {
    for app in all_apps() {
        let name = app.meta().name.clone();
        let input = cheap_input(&name);
        let cfg = LevelConfig::new(
            app.meta()
                .blocks
                .iter()
                .map(|b| 1u8.min(b.max_level))
                .collect(),
        );
        let schedule = PhaseSchedule::constant(cfg);
        let a = app.run(&input, &schedule).expect("run a");
        let b = app.run(&input, &schedule).expect("run b");
        assert_eq!(a.output, b.output, "{name}: outputs differ between runs");
        assert_eq!(a.work, b.work, "{name}: work differs");
        assert_eq!(a.outer_iters, b.outer_iters, "{name}: iterations differ");
    }
}

#[test]
fn per_iteration_work_never_increases_with_perforation_level() {
    use opprox_approx_rt::block::TechniqueKind;
    for app in all_apps() {
        let name = app.meta().name.clone();
        let input = cheap_input(&name);
        let blocks = &app.meta().blocks;
        for (b, desc) in blocks.iter().enumerate() {
            if desc.technique != TechniqueKind::LoopPerforation {
                continue;
            }
            let mut prev = f64::INFINITY;
            for config in local_sweep(blocks, b) {
                let r = app
                    .run(&input, &PhaseSchedule::constant(config.clone()))
                    .expect("run");
                let per_iter = r.work as f64 / r.outer_iters.max(1) as f64;
                assert!(
                    per_iter <= prev + 1e-9,
                    "{name}/{}: per-iteration work rose {prev} -> {per_iter} at level {}",
                    desc.name,
                    config.level(b)
                );
                prev = per_iter;
            }
        }
    }
}

#[test]
fn phase_one_approximation_is_never_cheaper_than_phase_four() {
    // Averaged over a few probe settings, the early phase must hurt QoS
    // at least as much as the late phase for every application — the
    // paper's central empirical claim.
    for app in all_apps() {
        let name = app.meta().name.clone();
        let input = cheap_input(&name);
        let golden = app.golden(&input).expect("golden");
        let probes = opprox_approx_rt::config::sample_configs(&app.meta().blocks, 5, 0xBE5);
        let mean_qos = |phase: usize| -> f64 {
            probes
                .iter()
                .map(|cfg| {
                    let s = PhaseSchedule::single_phase(cfg.clone(), phase, 4, golden.outer_iters)
                        .unwrap();
                    let r = app.run(&input, &s).unwrap();
                    app.qos_degradation(&golden, &r)
                })
                .sum::<f64>()
                / probes.len() as f64
        };
        let early = mean_qos(0);
        let late = mean_qos(3);
        assert!(
            early >= late,
            "{name}: phase-1 mean qos {early} below phase-4 {late}"
        );
    }
}

#[test]
fn accurate_schedule_reproduces_golden_exactly() {
    for app in all_apps() {
        let name = app.meta().name.clone();
        let input = cheap_input(&name);
        let golden = app.golden(&input).expect("golden");
        // A multi-phase all-accurate schedule is semantically identical to
        // the single-phase accurate schedule.
        let schedule = PhaseSchedule::new(
            vec![LevelConfig::accurate(app.meta().num_blocks()); 4],
            golden.outer_iters,
        )
        .unwrap();
        let r = app.run(&input, &schedule).expect("run");
        assert_eq!(golden.output, r.output, "{name}: outputs differ");
        assert_eq!(golden.work, r.work, "{name}: work differs");
        assert_eq!(app.qos_degradation(&golden, &r), 0.0, "{name}");
    }
}

#[test]
fn logs_attribute_all_block_work() {
    for app in all_apps() {
        let name = app.meta().name.clone();
        let input = cheap_input(&name);
        let golden = app.golden(&input).expect("golden");
        // Block-attributed work must be positive and bounded by the total.
        let block_work: u64 = (0..app.meta().num_blocks())
            .map(|b| golden.log.work_of_block(b))
            .sum();
        assert!(block_work > 0, "{name}: no block work logged");
        assert!(
            block_work <= golden.work,
            "{name}: log work {block_work} exceeds total {}",
            golden.work
        );
        // The log's iteration count matches the run's.
        assert_eq!(
            golden.log.outer_iterations(),
            golden.outer_iters,
            "{name}: log iterations disagree"
        );
    }
}
