//! Shared helpers for the benchmark ports.

use opprox_approx_rt::InputParams;

/// Derives a deterministic RNG seed from input parameters and a per-app
/// salt, so every application run is a pure function of its inputs.
///
/// # Example
///
/// ```
/// use opprox_apps::util::seed_from;
/// use opprox_approx_rt::InputParams;
///
/// let p = InputParams::new(vec![30.0, 2.0]);
/// assert_eq!(seed_from(&p, 7), seed_from(&p, 7));
/// assert_ne!(seed_from(&p, 7), seed_from(&p, 8));
/// ```
pub fn seed_from(params: &InputParams, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ salt.wrapping_mul(0x100000001b3);
    for v in params.values() {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_depends_on_every_parameter() {
        let a = seed_from(&InputParams::new(vec![1.0, 2.0]), 0);
        let b = seed_from(&InputParams::new(vec![1.0, 3.0]), 0);
        let c = seed_from(&InputParams::new(vec![2.0, 2.0]), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn seed_is_stable() {
        let p = InputParams::new(vec![4.5]);
        assert_eq!(seed_from(&p, 1), seed_from(&p, 1));
    }
}
