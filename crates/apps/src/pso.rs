//! PSO port: particle swarm optimization over continuous objectives.
//!
//! PSO starts from a population of candidate solutions and iteratively
//! improves them inside an outer convergence loop: each iteration computes
//! new velocities and positions, evaluates fitness, and updates personal
//! and global bests until the global best stops improving. Early-phase
//! inaccuracies misdirect the whole swarm (the quality of the solutions
//! explored in one iteration depends on the accuracy of the previous
//! ones), while late-phase inaccuracies matter little because the bests
//! have settled — and late-phase fitness noise can *delay convergence*,
//! which is why PSO's speedup, like LULESH's, drops when approximation is
//! applied in later phases.
//!
//! Approximable blocks (paper Table 1: loop perforation + memoization):
//!
//! | Block | Technique | Effect |
//! |---|---|---|
//! | `fitness_eval` | loop perforation | the objective is sampled over a subset of dimensions and rescaled |
//! | `velocity_update` | memoization | velocities recomputed only every k-th iteration |
//! | `pbest_update` | loop perforation | skipped particles do not refresh their personal best |
//!
//! QoS: the paper's metric — the average difference of the per-particle
//! best-fitness values versus the accurate execution (the default
//! relative distortion over the pbest vector).

use crate::util::seed_from;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::technique::perforated_indices;
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of the `fitness_eval` block.
pub const BLOCK_FITNESS: usize = 0;
/// Index of the `velocity_update` block.
pub const BLOCK_VELOCITY: usize = 1;
/// Index of the `pbest_update` block.
pub const BLOCK_PBEST: usize = 2;

/// Hard cap on outer iterations.
const MAX_ITERS: u64 = 350;
/// Minimum iterations before the convergence criterion may fire.
const MIN_ITERS: u64 = 120;
/// Convergence: stop after this many iterations without improvement.
const PATIENCE: u64 = 25;
/// Minimum relative improvement that resets the patience counter.
const IMPROVEMENT_TOL: f64 = 1e-4;
/// PSO inertia and attraction coefficients.
const INERTIA: f64 = 0.72;
const C_PERSONAL: f64 = 1.5;
const C_GLOBAL: f64 = 1.5;
/// Search-space bound per dimension.
const BOUND: f64 = 4.5;

/// The particle-swarm-optimization application.
///
/// Input parameters: `swarm_size` and `dimension` (of the Rosenbrock
/// objective).
#[derive(Debug, Clone)]
pub struct Pso {
    meta: opprox_approx_rt::app::AppMeta,
}

impl Default for Pso {
    fn default() -> Self {
        Self::new()
    }
}

impl Pso {
    /// Creates the application with its three approximable blocks.
    pub fn new() -> Self {
        Pso {
            meta: opprox_approx_rt::app::AppMeta {
                name: "PSO".into(),
                input_param_names: vec!["swarm_size".into(), "dimension".into()],
                blocks: vec![
                    BlockDescriptor::new("fitness_eval", TechniqueKind::LoopPerforation, 5),
                    BlockDescriptor::new("velocity_update", TechniqueKind::Memoization, 5),
                    BlockDescriptor::new("pbest_update", TechniqueKind::LoopPerforation, 5),
                ],
            },
        }
    }
}

/// Rastrigin objective evaluated over a perforated subset of its terms,
/// rescaled so the sampled sum estimates the full one. Rastrigin is
/// highly multimodal: a swarm misdirected early settles in a *different
/// basin* than the accurate run, so any early-phase approximation leaves
/// a lasting mark on the per-particle best-fitness vector.
fn rastrigin_perforated(x: &[f64], level: u8, work: &mut u64) -> f64 {
    const A: f64 = 10.0;
    let d = x.len();
    let mut sum = 0.0;
    let mut sampled = 0usize;
    for k in perforated_indices(d, level) {
        let xk = x[k];
        sum += xk * xk - A * (std::f64::consts::TAU * xk).cos() + A;
        sampled += 1;
        *work += 8;
    }
    // Rescale the partial sum to the full dimension count.
    sum * d as f64 / sampled.max(1) as f64
}

impl ApproxApp for Pso {
    fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let swarm = input.get(0) as usize;
        if !(5..=500).contains(&swarm) {
            return Err(RuntimeError::InvalidInput(format!(
                "swarm_size must be in 5..=500, got {swarm}"
            )));
        }
        let dim = input.get(1) as usize;
        if !(2..=32).contains(&dim) {
            return Err(RuntimeError::InvalidInput(format!(
                "dimension must be in 2..=32, got {dim}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed_from(input, 0x44));

        let mut pos: Vec<Vec<f64>> = (0..swarm)
            .map(|_| {
                (0..dim)
                    .map(|_| rng.gen::<f64>() * 2.0 * BOUND - BOUND)
                    .collect()
            })
            .collect();
        let mut vel: Vec<Vec<f64>> = (0..swarm)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>() * 0.6 - 0.3).collect())
            .collect();
        // Initialization: every particle's personal best starts from one
        // accurate evaluation (part of the setup, not an approximable
        // block), so the pbest vector is always fully populated.
        let mut init_work = 0u64;
        let mut pbest_pos = pos.clone();
        let mut pbest_fit: Vec<f64> = pos
            .iter()
            .map(|p| rastrigin_perforated(p, 0, &mut init_work))
            .collect();
        let (gbest_idx, _) = pbest_fit
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite fitness"))
            .expect("non-empty swarm");
        let mut gbest_pos = pos[gbest_idx].clone();
        let mut gbest_fit = pbest_fit[gbest_idx];

        let mut log = CallContextLog::new();
        let mut work: u64 = init_work;
        let mut iter: u64 = 0;
        let mut stall: u64 = 0;

        while iter < MAX_ITERS && (stall < PATIENCE || iter < MIN_ITERS) {
            let cfg = schedule.config_at(iter);

            // --- Block 0: fitness_eval (perforation over dimensions) ----
            let lvl_fit = cfg.level(BLOCK_FITNESS);
            let mut w: u64 = 0;
            let fits: Vec<f64> = pos
                .iter()
                .map(|p| rastrigin_perforated(p, lvl_fit, &mut w))
                .collect();
            work += w;
            log.record(iter, BLOCK_FITNESS, w);

            // --- Block 2: pbest_update (perforation over particles) -----
            let lvl_pb = cfg.level(BLOCK_PBEST);
            let mut w: u64 = 0;
            let prev_gbest = gbest_fit;
            for i in perforated_indices(swarm, lvl_pb) {
                if fits[i] < pbest_fit[i] {
                    pbest_fit[i] = fits[i];
                    pbest_pos[i] = pos[i].clone();
                }
                if fits[i] < gbest_fit {
                    gbest_fit = fits[i];
                    gbest_pos = pos[i].clone();
                }
                w += 4;
            }
            work += w;
            log.record(iter, BLOCK_PBEST, w);

            // --- Block 1: velocity_update (memoization over iterations) -
            let lvl_v = cfg.level(BLOCK_VELOCITY);
            let recompute = lvl_v == 0 || iter.is_multiple_of(lvl_v as u64 + 1);
            let mut w: u64 = 0;
            if recompute {
                for i in 0..swarm {
                    for k in 0..dim {
                        let rp = rng.gen::<f64>();
                        let rg = rng.gen::<f64>();
                        vel[i][k] = INERTIA * vel[i][k]
                            + C_PERSONAL * rp * (pbest_pos[i][k] - pos[i][k])
                            + C_GLOBAL * rg * (gbest_pos[k] - pos[i][k]);
                        w += 6;
                    }
                }
            } else {
                // Memoized: keep the previous velocities; the RNG stream
                // still advances identically so runs stay comparable.
                for _ in 0..swarm * dim {
                    let _ = rng.gen::<f64>();
                    let _ = rng.gen::<f64>();
                }
                w += swarm as u64;
            }
            for i in 0..swarm {
                for k in 0..dim {
                    pos[i][k] = (pos[i][k] + vel[i][k]).clamp(-BOUND, BOUND);
                    w += 2;
                }
            }
            work += w;
            log.record(iter, BLOCK_VELOCITY, w);

            // Convergence accounting on the global best.
            let improved = prev_gbest.is_infinite() && gbest_fit.is_finite()
                || (prev_gbest - gbest_fit) > IMPROVEMENT_TOL * prev_gbest.abs().max(1.0);
            if improved {
                stall = 0;
            } else {
                stall += 1;
            }
            work += 3;
            iter += 1;
        }

        Ok(RunResult {
            output: pbest_fit,
            work,
            outer_iters: iter,
            log,
        })
    }

    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        // Average difference of the per-particle best-fitness values,
        // scaled by the golden magnitude with a unit floor: near the
        // optimum the fitness values are O(1), so an absolute floor keeps
        // the metric from exploding when a golden pbest happens to be
        // nearly zero.
        let n = exact.output.len().min(approx.output.len());
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = exact
            .output
            .iter()
            .zip(approx.output.iter())
            .map(|(e, a)| (a - e).abs() / e.abs().max(1.0))
            .sum();
        (100.0 * sum / n as f64).min(opprox_approx_rt::qos::QOS_SATURATION)
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        let mut out = Vec::new();
        for &swarm in &[16.0, 24.0, 32.0] {
            for &dim in &[3.0, 4.0, 6.0] {
                out.push(InputParams::new(vec![swarm, dim]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::LevelConfig;

    fn input() -> InputParams {
        InputParams::new(vec![24.0, 4.0])
    }

    #[test]
    fn golden_run_is_deterministic() {
        let app = Pso::new();
        let a = app.golden(&input()).unwrap();
        let b = app.golden(&input()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.work, b.work);
        assert_eq!(a.outer_iters, b.outer_iters);
    }

    #[test]
    fn swarm_converges_towards_the_optimum() {
        let app = Pso::new();
        let g = app.golden(&input()).unwrap();
        let best = g.output.iter().cloned().fold(f64::INFINITY, f64::min);
        // Rastrigin's optimum is 0 at the origin; the swarm should settle
        // in a low basin.
        assert!(best < 15.0, "best fitness {best}");
        assert!(g.outer_iters >= PATIENCE);
    }

    #[test]
    fn fitness_perforation_reduces_work() {
        let app = Pso::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![3, 0, 0])),
            )
            .unwrap();
        let work_per_iter_g = g.work as f64 / g.outer_iters as f64;
        let work_per_iter_a = a.work as f64 / a.outer_iters as f64;
        assert!(work_per_iter_a < work_per_iter_g);
    }

    #[test]
    fn approximation_perturbs_pbest_vector() {
        let app = Pso::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![4, 2, 2])),
            )
            .unwrap();
        assert!(app.qos_degradation(&g, &a) > 0.0);
    }

    #[test]
    fn early_phase_approximation_hurts_more_than_late() {
        let app = Pso::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![4, 3, 3]);
        let early = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg.clone(), 0, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let late = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg, 3, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        assert!(
            app.qos_degradation(&g, &late) < app.qos_degradation(&g, &early),
            "late {} vs early {}",
            app.qos_degradation(&g, &late),
            app.qos_degradation(&g, &early)
        );
    }

    #[test]
    fn input_validation() {
        let app = Pso::new();
        assert!(app.golden(&InputParams::new(vec![2.0, 4.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![24.0, 1.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![24.0])).is_err());
    }
}
