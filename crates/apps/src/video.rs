//! FFmpeg port: a streaming video filter-and-encode pipeline.
//!
//! FFmpeg's computation pattern in the paper: an outer loop enumerates
//! decoded frames, applies a chain of filters to each, then re-encodes.
//! The iteration count equals the number of frames — an input parameter —
//! and is independent of the approximation levels. Two properties matter
//! for OPPROX and are preserved here:
//!
//! 1. **Inter-frame error propagation**: the encoder is delta-based and
//!    rate limited, so an error introduced in an early frame contaminates
//!    the following frames until the residual budget catches up
//!    (the paper: "any error introduced in the first few frames propagated
//!    throughout the remaining frames"). Hence approximating phase 1
//!    degrades PSNR far more than phase 4.
//! 2. **Filter-order-dependent control flow** (paper Fig. 7): swapping the
//!    deflate and edge-detection filters changes both the call-context
//!    signature and the output quality, which is what the decision-tree
//!    control-flow classifier keys on.
//!
//! Approximable blocks:
//!
//! | Block | Technique | Effect |
//! |---|---|---|
//! | `edge_detect` | loop perforation | skipped rows copy the previous computed row |
//! | `deflate` | memoization | reuse the cached filtered frame from an earlier frame |
//! | `color_balance` | loop perforation | skipped pixels pass through unbalanced |
//!
//! QoS: PSNR of the re-encoded video versus the accurately processed one;
//! [`ApproxApp::qos_degradation`] reports `PSNR_CAP − PSNR` so that lower
//! is better like every other application.

use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::qos::{psnr, psnr_degradation};
use opprox_approx_rt::technique::{perforated_indices, Memoizer};
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError};

/// Index of the `edge_detect` block.
pub const BLOCK_EDGE: usize = 0;
/// Index of the `deflate` block.
pub const BLOCK_DEFLATE: usize = 1;
/// Index of the `color_balance` block.
pub const BLOCK_COLOR: usize = 2;

/// Frame width in pixels.
pub const WIDTH: usize = 24;
/// Frame height in pixels.
pub const HEIGHT: usize = 16;

/// The FFmpeg-style video-processing application.
///
/// Input parameters: `fps`, `duration_s` (frames = `fps · duration_s`),
/// `bitrate` (encoder residual budget and quantizer), and `filter_order`
/// (0 = edge→deflate→color, 1 = deflate→edge→color; selects the
/// control-flow class).
#[derive(Debug, Clone)]
pub struct VideoPipeline {
    meta: opprox_approx_rt::app::AppMeta,
}

impl Default for VideoPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl VideoPipeline {
    /// Creates the application with its three approximable blocks.
    pub fn new() -> Self {
        VideoPipeline {
            meta: opprox_approx_rt::app::AppMeta {
                name: "FFmpeg".into(),
                input_param_names: vec![
                    "fps".into(),
                    "duration_s".into(),
                    "bitrate".into(),
                    "filter_order".into(),
                ],
                blocks: vec![
                    BlockDescriptor::new("edge_detect", TechniqueKind::LoopPerforation, 5),
                    BlockDescriptor::new("deflate", TechniqueKind::Memoization, 5),
                    BlockDescriptor::new("color_balance", TechniqueKind::LoopPerforation, 3),
                ],
            },
        }
    }
}

type Frame = Vec<f64>; // WIDTH * HEIGHT grayscale, 0..255

/// Deterministic synthetic content: a gradient background with a bright
/// disc sweeping across the image.
fn source_frame(t: usize) -> Frame {
    let mut f = vec![0.0; WIDTH * HEIGHT];
    // Constant-velocity motion keeps the approximation-error magnitude
    // uniform across execution phases; what differs between phases is how
    // far errors propagate, not how large they start.
    // The disc starts fully inside the frame and never wraps within a
    // typical clip, so every phase sees the same amount of motion.
    let cx = (5.0 + t as f64 * 0.35) % WIDTH as f64;
    let cy = HEIGHT as f64 / 2.0;
    for y in 0..HEIGHT {
        for x in 0..WIDTH {
            let bg = 40.0 + x as f64 * 3.0 + 0.55 * (y as f64) * (y as f64 / 2.0);
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            let disc = if dx * dx + dy * dy < 9.0 { 160.0 } else { 0.0 };
            f[y * WIDTH + x] = (bg + disc).clamp(0.0, 255.0);
        }
    }
    f
}

/// Edge detection with row perforation: skipped rows copy the last
/// computed row's output.
fn edge_detect(input: &Frame, level: u8, work: &mut u64) -> Frame {
    let mut out = vec![0.0; WIDTH * HEIGHT];
    let computed: Vec<usize> = perforated_indices(HEIGHT, level).collect();
    let mut last_computed: Option<usize> = None;
    let mut next = 0usize;
    for y in 0..HEIGHT {
        if next < computed.len() && computed[next] == y {
            for x in 0..WIDTH {
                let v = input[y * WIDTH + x];
                let right = if x + 1 < WIDTH {
                    input[y * WIDTH + x + 1]
                } else {
                    v
                };
                let below = if y + 1 < HEIGHT {
                    input[(y + 1) * WIDTH + x]
                } else {
                    v
                };
                let grad = (right - v).abs() + (below - v).abs();
                out[y * WIDTH + x] = (0.3 * v + 2.0 * grad).clamp(0.0, 255.0);
                *work += 6;
            }
            last_computed = Some(y);
            next += 1;
        } else if let Some(src) = last_computed {
            out.copy_within(src * WIDTH..(src + 1) * WIDTH, y * WIDTH);
            *work += 1;
        }
    }
    out
}

/// Deflate filter: each pixel brighter than its 3×3 neighbourhood mean is
/// pulled down to that mean (FFmpeg's deflate erodes bright specks).
fn deflate_filter(input: &Frame, work: &mut u64) -> Frame {
    let mut out = vec![0.0; WIDTH * HEIGHT];
    for y in 0..HEIGHT {
        for x in 0..WIDTH {
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let ny = y as i64 + dy;
                    let nx = x as i64 + dx;
                    if (0..HEIGHT as i64).contains(&ny) && (0..WIDTH as i64).contains(&nx) {
                        sum += input[ny as usize * WIDTH + nx as usize];
                        cnt += 1.0;
                    }
                }
            }
            let mean = sum / cnt;
            let v = input[y * WIDTH + x];
            out[y * WIDTH + x] = if v > mean { mean } else { v };
            *work += 10;
        }
    }
    out
}

/// Color balance with pixel perforation: skipped pixels pass through.
fn color_balance(input: &Frame, level: u8, work: &mut u64) -> Frame {
    let mut out = input.clone();
    for i in perforated_indices(WIDTH * HEIGHT, level) {
        out[i] = (input[i] * 1.12 - 8.0).clamp(0.0, 255.0);
        *work += 3;
    }
    out
}

impl ApproxApp for VideoPipeline {
    fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let fps = input.get(0) as usize;
        let duration = input.get(1) as usize;
        let frames = fps * duration;
        if !(4..=600).contains(&frames) {
            return Err(RuntimeError::InvalidInput(format!(
                "fps × duration must give 4..=600 frames, got {frames}"
            )));
        }
        let bitrate = input.get(2);
        if !(50.0..=10_000.0).contains(&bitrate) {
            return Err(RuntimeError::InvalidInput(format!(
                "bitrate must be in 50..=10000, got {bitrate}"
            )));
        }
        let order = input.get(3) as usize;
        if order > 1 {
            return Err(RuntimeError::InvalidInput(format!(
                "filter_order must be 0 or 1, got {}",
                input.get(3)
            )));
        }

        // Encoder parameters derived from bitrate: the quantizer step
        // improves and the per-frame pixel-update budget grows with
        // bitrate. The budget is what makes errors propagate: a corrupted
        // frame leaves wrong pixels that are only repaired when they win a
        // slot in a later frame's budget — exactly the inter-frame
        // dependency the paper describes for FFmpeg.
        let qstep = (512.0 / bitrate).max(0.25);
        let frame_budget = ((bitrate / 48.0) as usize).clamp(6, WIDTH * HEIGHT);

        let mut deflate_memo: Memoizer<Frame> = Memoizer::new();
        let mut recon: Frame = vec![0.0; WIDTH * HEIGHT];
        let mut output: Vec<f64> = Vec::with_capacity(frames * WIDTH * HEIGHT);
        let mut log = CallContextLog::new();
        let mut work: u64 = 0;

        for t in 0..frames {
            let iter = t as u64;
            let cfg = schedule.config_at(iter);
            let src = source_frame(t);

            // Filter chain in the order selected by the input parameter.
            // The block order in the log is the control-flow signature.
            let mut frame = src;
            let chain: [usize; 2] = if order == 0 {
                [BLOCK_EDGE, BLOCK_DEFLATE]
            } else {
                [BLOCK_DEFLATE, BLOCK_EDGE]
            };
            for &block in &chain {
                let mut w: u64 = 0;
                frame = match block {
                    BLOCK_EDGE => edge_detect(&frame, cfg.level(BLOCK_EDGE), &mut w),
                    BLOCK_DEFLATE => {
                        // The knob maps to a refresh stride of 2·level+1
                        // frames, so the highest level reuses a result up
                        // to ten frames old.
                        let lvl = cfg.level(BLOCK_DEFLATE).saturating_mul(2);
                        let input_frame = frame.clone();
                        let out = deflate_memo
                            .get_or_compute(t, lvl, || deflate_filter(&input_frame, &mut w));
                        if w == 0 {
                            w = 2; // cache reuse cost
                        }
                        out
                    }
                    _ => unreachable!("chain only contains edge/deflate"),
                };
                work += w;
                log.record(iter, block, w);
            }
            let mut w: u64 = 0;
            frame = color_balance(&frame, cfg.level(BLOCK_COLOR), &mut w);
            work += w;
            log.record(iter, BLOCK_COLOR, w);

            // Budget-limited delta encoder. Frame 0 is an I-frame (every
            // pixel coded); later frames only re-code the `frame_budget`
            // pixels with the largest residuals, so corruption introduced
            // by an approximated phase persists until those pixels win
            // budget slots again.
            if t == 0 {
                for i in 0..WIDTH * HEIGHT {
                    recon[i] = ((frame[i] / qstep).round() * qstep).clamp(0.0, 255.0);
                }
            } else {
                // Dead-zone quantizer: pixels within `tau` of the recon
                // are skipped outright, so low-amplitude corruption left
                // behind by an approximated phase persists indefinitely —
                // the codec-drift channel behind the paper's observation
                // that errors in the first frames propagate to the rest of
                // the video.
                let tau = 2.5 * qstep;
                let mut order: Vec<usize> = (0..WIDTH * HEIGHT)
                    .filter(|&i| (frame[i] - recon[i]).abs() > tau)
                    .collect();
                order.sort_by(|&a, &b| {
                    let ra = (frame[a] - recon[a]).abs();
                    let rb = (frame[b] - recon[b]).abs();
                    rb.partial_cmp(&ra)
                        .expect("finite residuals")
                        .then(a.cmp(&b))
                });
                for &i in order.iter().take(frame_budget) {
                    let residual = frame[i] - recon[i];
                    let quantized = (residual / qstep).round() * qstep;
                    recon[i] = (recon[i] + quantized).clamp(0.0, 255.0);
                }
            }
            work += (WIDTH * HEIGHT) as u64;
            output.extend_from_slice(&recon);
        }

        Ok(RunResult {
            output,
            work,
            outer_iters: frames as u64,
            log,
        })
    }

    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        psnr_degradation(psnr(&exact.output, &approx.output, 255.0))
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        let mut out = Vec::new();
        for &fps in &[12.0, 20.0] {
            for &dur in &[4.0, 6.0] {
                for &order in &[0.0, 1.0] {
                    let bitrate = if fps > 15.0 { 800.0 } else { 500.0 };
                    out.push(InputParams::new(vec![fps, dur, bitrate, order]));
                }
            }
        }
        out
    }
}

impl VideoPipeline {
    /// PSNR (dB) of an approximate run against the exact run — the
    /// domain metric the paper reports for FFmpeg.
    pub fn psnr_of(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        psnr(&exact.output, &approx.output, 255.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::qos::PSNR_CAP;
    use opprox_approx_rt::LevelConfig;

    fn input() -> InputParams {
        InputParams::new(vec![12.0, 4.0, 600.0, 0.0])
    }

    #[test]
    fn golden_run_is_deterministic_and_sized() {
        let app = VideoPipeline::new();
        let a = app.golden(&input()).unwrap();
        let b = app.golden(&input()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.outer_iters, 48);
        assert_eq!(a.output.len(), 48 * WIDTH * HEIGHT);
    }

    #[test]
    fn iteration_count_tracks_fps_times_duration() {
        let app = VideoPipeline::new();
        let g = app
            .golden(&InputParams::new(vec![20.0, 6.0, 600.0, 0.0]))
            .unwrap();
        assert_eq!(g.outer_iters, 120);
    }

    #[test]
    fn filter_order_changes_signature_and_output() {
        let app = VideoPipeline::new();
        let a = app.golden(&input()).unwrap();
        let b = app
            .golden(&InputParams::new(vec![12.0, 4.0, 600.0, 1.0]))
            .unwrap();
        assert_ne!(
            a.log.control_flow_signature(),
            b.log.control_flow_signature()
        );
        // Swapping filters changes the result significantly (Fig. 7).
        let p = psnr(&a.output, &b.output, 255.0);
        assert!(p < 40.0, "orders should differ, psnr {p}");
    }

    #[test]
    fn approximation_reduces_work_and_psnr() {
        let app = VideoPipeline::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![4, 4, 2])),
            )
            .unwrap();
        assert!(a.work < g.work);
        let p = app.psnr_of(&g, &a);
        assert!(p < PSNR_CAP);
        assert!(app.qos_degradation(&g, &a) > 0.0);
    }

    #[test]
    fn early_phase_approximation_hurts_psnr_more() {
        let app = VideoPipeline::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![5, 5, 3]);
        let early = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg.clone(), 0, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let late = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg, 3, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        assert!(
            app.psnr_of(&g, &late) > app.psnr_of(&g, &early),
            "late psnr {} should exceed early psnr {}",
            app.psnr_of(&g, &late),
            app.psnr_of(&g, &early)
        );
    }

    #[test]
    fn input_validation() {
        let app = VideoPipeline::new();
        assert!(app
            .golden(&InputParams::new(vec![1.0, 1.0, 600.0, 0.0]))
            .is_err());
        assert!(app
            .golden(&InputParams::new(vec![12.0, 4.0, 1.0, 0.0]))
            .is_err());
        assert!(app
            .golden(&InputParams::new(vec![12.0, 4.0, 600.0, 2.0]))
            .is_err());
    }

    #[test]
    fn higher_bitrate_recovers_errors_faster() {
        let app = VideoPipeline::new();
        let cfg = LevelConfig::new(vec![5, 5, 3]);
        let lo_in = InputParams::new(vec![12.0, 4.0, 200.0, 0.0]);
        let hi_in = InputParams::new(vec![12.0, 4.0, 2000.0, 0.0]);
        let lo_g = app.golden(&lo_in).unwrap();
        let hi_g = app.golden(&hi_in).unwrap();
        let sched = |iters| PhaseSchedule::single_phase(cfg.clone(), 0, 4, iters).unwrap();
        let lo_a = app.run(&lo_in, &sched(lo_g.outer_iters)).unwrap();
        let hi_a = app.run(&hi_in, &sched(hi_g.outer_iters)).unwrap();
        assert!(app.psnr_of(&hi_g, &hi_a) >= app.psnr_of(&lo_g, &lo_a));
    }
}
