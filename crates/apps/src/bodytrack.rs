//! Bodytrack port: annealed-particle-filter pose tracking.
//!
//! PARSEC's Bodytrack tracks a human body through a video using an
//! annealed particle filter: for every frame, image features are
//! extracted and each particle's pose is scored against them through a
//! sequence of annealing layers with increasing sharpness. The outer loop
//! here enumerates (frame, annealing-layer) steps, so its iteration count
//! depends on the input parameters (frames, annealing layers) and on the
//! annealing-layer *tuning* knob — matching the paper's observation that
//! Bodytrack's iteration count depends on the number of annealing layers.
//!
//! The tracked "body" is a synthetic articulated pose: a five-component
//! joint-angle vector following smooth trajectories; observations are
//! linear feature projections of the true pose with deterministic noise.
//!
//! Approximable blocks (paper Table 1: loop perforation + input tuning):
//!
//! | Block | Technique | Effect |
//! |---|---|---|
//! | `feature_extract` | loop perforation | skipped features reuse the previous frame's value |
//! | `likelihood_eval` | loop perforation | skipped particles keep their previous weight |
//! | `annealing_layers` | parameter tuning | fewer annealing layers per frame |
//! | `min_particles` | parameter tuning | a smaller active-particle subset |
//!
//! QoS: the paper weights each pose-vector component proportionally to
//! its magnitude so large body parts dominate; our override implements
//! exactly that magnitude-weighted relative distortion.

use crate::util::seed_from;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::technique::{perforated_indices, tuned_parameter};
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of the `feature_extract` block.
pub const BLOCK_FEATURES: usize = 0;
/// Index of the `likelihood_eval` block.
pub const BLOCK_LIKELIHOOD: usize = 1;
/// Index of the `annealing_layers` tuning block.
pub const BLOCK_LAYERS: usize = 2;
/// Index of the `min_particles` tuning block.
pub const BLOCK_MIN_PARTICLES: usize = 3;

/// Dimensionality of the pose vector (joint angles).
pub const POSE_DIM: usize = 5;
/// Number of observed image features per frame.
pub const NUM_FEATURES: usize = 12;

/// Fractions of the particle population kept at each `min_particles`
/// tuning level.
const PARTICLE_FRACTIONS: [f64; 4] = [1.0, 0.7, 0.45, 0.25];
/// Annealing layers removed at each `annealing_layers` tuning level.
const LAYER_DROPS: [f64; 4] = [0.0, 1.0, 2.0, 3.0];

/// The Bodytrack-style particle-filter application.
///
/// Input parameters: `annealing_layers`, `particles`, `frames`.
#[derive(Debug, Clone)]
pub struct Bodytrack {
    meta: opprox_approx_rt::app::AppMeta,
}

impl Default for Bodytrack {
    fn default() -> Self {
        Self::new()
    }
}

impl Bodytrack {
    /// Creates the application with its four approximable blocks.
    pub fn new() -> Self {
        Bodytrack {
            meta: opprox_approx_rt::app::AppMeta {
                name: "Bodytrack".into(),
                input_param_names: vec![
                    "annealing_layers".into(),
                    "particles".into(),
                    "frames".into(),
                ],
                blocks: vec![
                    BlockDescriptor::new("feature_extract", TechniqueKind::LoopPerforation, 5),
                    BlockDescriptor::new("likelihood_eval", TechniqueKind::LoopPerforation, 5),
                    BlockDescriptor::new("annealing_layers", TechniqueKind::ParameterTuning, 3),
                    BlockDescriptor::new("min_particles", TechniqueKind::ParameterTuning, 3),
                ],
            },
        }
    }
}

/// The true pose trajectory the synthetic subject follows.
fn true_pose(t: usize) -> [f64; POSE_DIM] {
    let tf = t as f64;
    [
        1.2 * (0.11 * tf).sin(),
        0.8 * (0.07 * tf + 1.0).cos(),
        1.5 * (0.05 * tf).sin(),
        0.6 * (0.13 * tf + 2.0).sin(),
        1.0 * (0.09 * tf).cos(),
    ]
}

/// Fixed linear observation model: features are projections of the pose.
fn project(pose: &[f64; POSE_DIM], feature: usize) -> f64 {
    let mut v = 0.0;
    for (k, &p) in pose.iter().enumerate() {
        // A deterministic, well-conditioned mixing matrix.
        let w = ((feature * 7 + k * 3 + 1) % 11) as f64 / 11.0 + 0.2;
        v += w * p;
    }
    v
}

impl ApproxApp for Bodytrack {
    fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let layers_in = input.get(0) as usize;
        if !(2..=8).contains(&layers_in) {
            return Err(RuntimeError::InvalidInput(format!(
                "annealing_layers must be in 2..=8, got {layers_in}"
            )));
        }
        let num_particles = input.get(1) as usize;
        if !(20..=2000).contains(&num_particles) {
            return Err(RuntimeError::InvalidInput(format!(
                "particles must be in 20..=2000, got {num_particles}"
            )));
        }
        let frames = input.get(2) as usize;
        if !(4..=400).contains(&frames) {
            return Err(RuntimeError::InvalidInput(format!(
                "frames must be in 4..=400, got {frames}"
            )));
        }
        let base_seed = seed_from(input, 0x33);

        // Particle state: pose hypotheses and weights.
        // Particles start dispersed over the pose space: the filter must
        // *acquire* the subject during the first frames, which is why
        // approximating the first phase is so damaging for tracking.
        let mut init_rng = StdRng::seed_from_u64(base_seed);
        let mut particles: Vec<[f64; POSE_DIM]> = (0..num_particles)
            .map(|_| {
                let mut p = [0.0; POSE_DIM];
                for v in p.iter_mut() {
                    *v = init_rng.gen::<f64>() * 3.0 - 1.5;
                }
                p
            })
            .collect();
        let mut weights: Vec<f64> = vec![1.0 / num_particles as f64; num_particles];
        let mut features: Vec<f64> = vec![0.0; NUM_FEATURES];

        let mut log = CallContextLog::new();
        let mut work: u64 = 0;
        let mut iter: u64 = 0;
        let mut output: Vec<f64> = Vec::with_capacity(frames * POSE_DIM);

        for frame in 0..frames {
            let truth = true_pose(frame);
            // The outer loop always performs `layers_in` annealing steps
            // per frame, so the iteration count depends on the input
            // parameters only (the paper's observation for Bodytrack).
            // The annealing-layer tuning knob turns the *last* layers of a
            // frame into cheap pass-throughs instead.
            let mut active = num_particles;
            for layer in 0..layers_in {
                let cfg = schedule.config_at(iter).clone();
                let layer_drop = tuned_parameter(&LAYER_DROPS, cfg.level(BLOCK_LAYERS)) as usize;
                let effective_layers = layers_in.saturating_sub(layer_drop).max(1);
                let frac = tuned_parameter(&PARTICLE_FRACTIONS, cfg.level(BLOCK_MIN_PARTICLES));
                active = ((num_particles as f64 * frac) as usize).max(10);
                if layer >= effective_layers {
                    // Tuned away: the annealing layer is skipped outright.
                    log.record(iter, BLOCK_FEATURES, 1);
                    log.record(iter, BLOCK_LIKELIHOOD, 1);
                    work += 2;
                    iter += 1;
                    continue;
                }

                // --- Block 0: feature_extract (perforation) -------------
                let lvl_f = cfg.level(BLOCK_FEATURES);
                let mut w: u64 = 0;
                let mut noise_rng =
                    StdRng::seed_from_u64(base_seed ^ (frame as u64) << 20 ^ layer as u64);
                for (j, feature) in features.iter_mut().enumerate() {
                    let noise = noise_rng.gen::<f64>() * 0.04 - 0.02;
                    // Perforated features keep the previous frame's value.
                    if perforated_hit(j, lvl_f) {
                        *feature = project(&truth, j) + noise;
                        w += 8;
                    }
                }
                work += w;
                log.record(iter, BLOCK_FEATURES, w);

                // --- Block 1: likelihood_eval (perforation) -------------
                let lvl_l = cfg.level(BLOCK_LIKELIHOOD);
                let beta = 0.4 * 2f64.powi(layer as i32); // annealing sharpness
                let mut w: u64 = 0;
                for i in perforated_indices(active, lvl_l) {
                    let mut dist = 0.0;
                    for (j, feat) in features.iter().enumerate() {
                        let pred = project(&particles[i], j);
                        dist += (pred - feat) * (pred - feat);
                    }
                    weights[i] = (-beta * dist).exp().max(1e-300);
                    w += (NUM_FEATURES * 3) as u64;
                }
                work += w;
                log.record(iter, BLOCK_LIKELIHOOD, w);

                // Resample the active set and add annealing-scaled jitter
                // (part of the filter core, not an approximable block).
                let mut resample_rng = StdRng::seed_from_u64(
                    base_seed ^ 0x5151 ^ ((frame as u64) << 24) ^ ((layer as u64) << 4),
                );
                let total_w: f64 = weights[..active].iter().sum();
                if total_w > 0.0 {
                    let mut new_particles = Vec::with_capacity(active);
                    // Systematic resampling over the active prefix.
                    let step = total_w / active as f64;
                    let mut target = resample_rng.gen::<f64>() * step;
                    let mut acc = 0.0;
                    let mut src = 0usize;
                    for _ in 0..active {
                        while acc + weights[src] < target && src + 1 < active {
                            acc += weights[src];
                            src += 1;
                        }
                        new_particles.push(particles[src]);
                        target += step;
                    }
                    let sigma = 0.12 / (layer as f64 + 1.0);
                    for (i, p) in new_particles.iter_mut().enumerate() {
                        let _ = i;
                        for v in p.iter_mut() {
                            *v += resample_rng.gen::<f64>() * 2.0 * sigma - sigma;
                        }
                    }
                    particles[..active].copy_from_slice(&new_particles);
                }
                work += (active * 2) as u64;

                iter += 1;
            }

            // Pose estimate: weighted mean of the active particles.
            let total_w: f64 = weights[..active].iter().sum();
            let mut estimate = [0.0f64; POSE_DIM];
            if total_w > 0.0 {
                for i in 0..active {
                    for (k, e) in estimate.iter_mut().enumerate() {
                        *e += particles[i][k] * weights[i] / total_w;
                    }
                }
            }
            output.extend_from_slice(&estimate);
            // Motion model: diffuse all particles towards the next frame.
            let mut motion_rng = StdRng::seed_from_u64(base_seed ^ 0xbeef ^ (frame as u64) << 8);
            for p in particles.iter_mut() {
                for v in p.iter_mut() {
                    *v += motion_rng.gen::<f64>() * 0.16 - 0.08;
                }
            }
            work += (num_particles * POSE_DIM) as u64;
        }

        Ok(RunResult {
            output,
            work,
            outer_iters: iter,
            log,
        })
    }

    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        // Magnitude-weighted distortion: components representing larger
        // body parts (larger values) carry proportionally more weight.
        let num: f64 = exact
            .output
            .iter()
            .zip(approx.output.iter())
            .map(|(e, a)| (a - e).abs())
            .sum();
        let den: f64 = exact.output.iter().map(|e| e.abs()).sum::<f64>().max(1e-9);
        (100.0 * num / den).min(opprox_approx_rt::qos::QOS_SATURATION)
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        let mut out = Vec::new();
        for &layers in &[3.0, 4.0] {
            for &particles in &[120.0, 200.0] {
                for &frames in &[24.0, 36.0] {
                    out.push(InputParams::new(vec![layers, particles, frames]));
                }
            }
        }
        out
    }
}

/// Whether index `j` is visited by a perforated loop at `level`.
fn perforated_hit(j: usize, level: u8) -> bool {
    j.is_multiple_of(level as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::LevelConfig;

    fn input() -> InputParams {
        InputParams::new(vec![3.0, 120.0, 24.0])
    }

    #[test]
    fn golden_run_is_deterministic() {
        let app = Bodytrack::new();
        let a = app.golden(&input()).unwrap();
        let b = app.golden(&input()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn iteration_count_is_frames_times_layers() {
        let app = Bodytrack::new();
        let g = app.golden(&input()).unwrap();
        assert_eq!(g.outer_iters, 24 * 3);
    }

    #[test]
    fn layer_tuning_reduces_work_but_not_iterations() {
        let app = Bodytrack::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![0, 0, 1, 0])),
            )
            .unwrap();
        assert_eq!(a.outer_iters, g.outer_iters);
        assert!(a.work < g.work);
    }

    #[test]
    fn tracking_follows_the_true_pose() {
        let app = Bodytrack::new();
        let g = app.golden(&input()).unwrap();
        // The last frame's estimate should be near the true pose.
        let frames = 24;
        let est = &g.output[(frames - 1) * POSE_DIM..frames * POSE_DIM];
        let truth = true_pose(frames - 1);
        let err: f64 = est
            .iter()
            .zip(truth.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / POSE_DIM as f64;
        assert!(err < 0.5, "mean tracking error {err}");
    }

    #[test]
    fn particle_tuning_cuts_work() {
        let app = Bodytrack::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![0, 0, 0, 3])),
            )
            .unwrap();
        assert!(a.work < g.work);
        assert_eq!(a.outer_iters, g.outer_iters);
    }

    #[test]
    fn early_phase_error_exceeds_late_phase_error() {
        let app = Bodytrack::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![4, 4, 2, 2]);
        let early = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg.clone(), 0, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let late = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg, 3, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        assert!(
            app.qos_degradation(&g, &late) < app.qos_degradation(&g, &early),
            "late {} vs early {}",
            app.qos_degradation(&g, &late),
            app.qos_degradation(&g, &early)
        );
    }

    #[test]
    fn input_validation() {
        let app = Bodytrack::new();
        assert!(app
            .golden(&InputParams::new(vec![1.0, 120.0, 24.0]))
            .is_err());
        assert!(app.golden(&InputParams::new(vec![3.0, 5.0, 24.0])).is_err());
        assert!(app
            .golden(&InputParams::new(vec![3.0, 120.0, 1.0]))
            .is_err());
    }
}
