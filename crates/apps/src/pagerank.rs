//! PageRank port: iterative graph kernel with convergence-based task
//! skipping.
//!
//! Power iteration over a deterministic random directed graph. Unlike
//! the paper's four applications, the dominant technique here is *task
//! skipping* (approximate-computing survey): a node whose rank residual
//! has fallen below a level-dependent threshold is not recomputed this
//! iteration — the convergence structure of the kernel itself drives
//! which tasks are droppable. The outer loop exits early once the
//! perforation-sampled residual norm converges.
//!
//! Approximable blocks:
//!
//! | Block | Technique | Effect of approximation |
//! |---|---|---|
//! | `contrib_push` | precision scaling | outgoing rank contributions quantized onto a coarser grid |
//! | `rank_update` | task skipping | nodes with a sub-threshold residual keep their stale rank |
//! | `residual_norm` | loop perforation | the convergence norm is estimated from sampled nodes |
//!
//! QoS: relative distortion over the per-node *iteration-averaged* rank
//! vector. Averaging over the trajectory is what gives the kernel its
//! phase structure: a rank perturbation introduced early contaminates
//! every subsequent sample of the average, while power-iteration
//! contraction means a late perturbation only touches its own tail.

use crate::util::seed_from;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::technique::{perforated_indices, precision_cost, quantized, should_skip};
use opprox_approx_rt::{
    ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError, WorkCounter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of the `contrib_push` block.
pub const BLOCK_CONTRIB: usize = 0;
/// Index of the `rank_update` block.
pub const BLOCK_UPDATE: usize = 1;
/// Index of the `residual_norm` block.
pub const BLOCK_NORM: usize = 2;

/// PageRank damping factor.
const DAMPING: f64 = 0.85;
/// Convergence tolerance on the (mean) rank residual.
const TOL: f64 = 1e-7;
/// Minimum iterations before the convergence exit may fire, so every
/// phase of a short schedule sees at least some iterations.
const MIN_ITERS: u64 = 8;
/// Base quantization step for `contrib_push`, relative to the uniform
/// rank `1/n` scale.
const QUANT_STEP: f64 = 5e-4;
/// Base skip threshold for `rank_update`, as a fraction of the current
/// mean residual. Relative significance makes the skipped fraction
/// roughly stationary across the run, while the *injected* error scales
/// with the absolute residual — large early, tiny late.
const SKIP_STEP: f64 = 0.12;

/// The PageRank application.
///
/// Input parameters: `nodes` (graph size), `out_degree` (edges per
/// node) and `max_steps` (outer-loop iteration cap; the loop may exit
/// earlier on convergence).
#[derive(Debug, Clone)]
pub struct PageRank {
    meta: opprox_approx_rt::app::AppMeta,
}

impl Default for PageRank {
    fn default() -> Self {
        Self::new()
    }
}

impl PageRank {
    /// Creates the application with its three approximable blocks.
    pub fn new() -> Self {
        PageRank {
            meta: opprox_approx_rt::app::AppMeta {
                name: "PageRank".into(),
                input_param_names: vec!["nodes".into(), "out_degree".into(), "max_steps".into()],
                blocks: vec![
                    BlockDescriptor::new("contrib_push", TechniqueKind::PrecisionScaling, 5),
                    BlockDescriptor::new("rank_update", TechniqueKind::TaskSkipping, 5),
                    BlockDescriptor::new("residual_norm", TechniqueKind::LoopPerforation, 5),
                ],
            },
        }
    }
}

impl ApproxApp for PageRank {
    fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let n = input.get(0) as usize;
        if !(8..=512).contains(&n) {
            return Err(RuntimeError::InvalidInput(format!(
                "nodes must be in 8..=512, got {n}"
            )));
        }
        let degree = input.get(1) as usize;
        if !(2..=16).contains(&degree) {
            return Err(RuntimeError::InvalidInput(format!(
                "out_degree must be in 2..=16, got {degree}"
            )));
        }
        let max_steps = input.get(2) as u64;
        if !(1..=2000).contains(&max_steps) {
            return Err(RuntimeError::InvalidInput(format!(
                "max_steps must be in 1..=2000, got {max_steps}"
            )));
        }

        // Deterministic directed graph: every node pushes to `degree`
        // targets; a skewed target distribution gives the rank vector a
        // heavy tail, so task skipping has significant and insignificant
        // nodes to tell apart.
        let mut rng = StdRng::seed_from_u64(seed_from(input, 0x97));
        let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for src in 0..n {
            for _ in 0..degree {
                // Preferential-attachment-flavoured target choice: half
                // the edges land uniformly, half on a quadratically
                // skewed prefix of the node space.
                let r = rng.gen::<f64>();
                let t = if r < 0.5 {
                    rng.gen_range(0..n)
                } else {
                    let u = rng.gen::<f64>();
                    ((u * u * n as f64) as usize).min(n - 1)
                };
                in_edges[t].push(src);
            }
        }

        let uniform = 1.0 / n as f64;
        let mut rank = vec![uniform; n];
        let mut contrib = vec![0.0f64; n];
        let mut residual = vec![uniform; n]; // nothing converged yet
        let mut avg_rank = vec![0.0f64; n];

        let mut log = CallContextLog::new();
        let mut counter = WorkCounter::new();
        let quant_base = QUANT_STEP * uniform;
        let inv_degree = 1.0 / degree as f64;
        // Convergence scale for relative task significance: the previous
        // iteration's (sampled) mean residual.
        let mut scale = uniform;

        let mut iters: u64 = 0;
        for iter in 0..max_steps {
            let cfg = schedule.config_at(iter);

            // --- Block 0: contrib_push (precision scaling) --------------
            let lvl_c = cfg.level(BLOCK_CONTRIB);
            let cost_c = precision_cost(4, lvl_c);
            let mut w: u64 = 0;
            for i in 0..n {
                contrib[i] = quantized(rank[i] * inv_degree, lvl_c, quant_base);
                w += cost_c;
            }
            counter.charge(w, w * 2); // contributions are memory traffic
            log.record(iter, BLOCK_CONTRIB, w);

            // --- Block 1: rank_update (task skipping) -------------------
            let lvl_u = cfg.level(BLOCK_UPDATE);
            let mut w: u64 = 0;
            for i in 0..n {
                // Convergence-based skipping: a node whose residual is
                // small relative to the current convergence scale keeps
                // its stale rank this round.
                if should_skip(residual[i] / scale.max(1e-300), lvl_u, SKIP_STEP) {
                    w += 1; // the threshold test itself
                    continue;
                }
                let mut sum = 0.0;
                for &src in &in_edges[i] {
                    sum += contrib[src];
                }
                let new_rank = (1.0 - DAMPING) * uniform + DAMPING * sum;
                residual[i] = (new_rank - rank[i]).abs();
                rank[i] = new_rank;
                w += in_edges[i].len() as u64 + 3;
            }
            counter.charge(w, w);
            log.record(iter, BLOCK_UPDATE, w);

            // --- Block 2: residual_norm (perforation over nodes) --------
            let lvl_n = cfg.level(BLOCK_NORM);
            let mut norm = 0.0;
            let mut sampled = 0u64;
            let mut w: u64 = 0;
            for i in perforated_indices(n, lvl_n) {
                norm += residual[i];
                sampled += 1;
                w += 2;
            }
            // Rescale the sampled sum to a mean over all nodes.
            let mean_residual = if sampled == 0 {
                0.0
            } else {
                norm / sampled as f64
            };
            scale = mean_residual;
            counter.charge(w, w);
            log.record(iter, BLOCK_NORM, w);

            // Trajectory average: the observable the kernel reports.
            for (avg, r) in avg_rank.iter_mut().zip(rank.iter()) {
                *avg += r;
            }
            counter.add(2);
            iters = iter + 1;

            if iters >= MIN_ITERS && mean_residual < TOL {
                break;
            }
        }

        for avg in avg_rank.iter_mut() {
            *avg /= iters as f64;
        }

        Ok(RunResult {
            output: avg_rank,
            work: counter.total(),
            outer_iters: iters,
            log,
        })
    }

    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        // Relative rank error scaled by the uniform rank 1/n: per-node
        // ranks live at the 1/n scale, so the default unit floor of
        // relative distortion would flatten every error to ~0.
        let n = exact.output.len().min(approx.output.len());
        if n == 0 {
            return 0.0;
        }
        let uniform = 1.0 / n as f64;
        let sum: f64 = exact
            .output
            .iter()
            .zip(approx.output.iter())
            .map(|(e, a)| (a - e).abs() / e.abs().max(uniform))
            .sum();
        (100.0 * sum / n as f64).min(opprox_approx_rt::qos::QOS_SATURATION)
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        let mut out = Vec::new();
        for &nodes in &[48.0, 64.0] {
            for &degree in &[3.0, 4.0] {
                for &steps in &[60.0, 90.0] {
                    out.push(InputParams::new(vec![nodes, degree, steps]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::LevelConfig;

    fn input() -> InputParams {
        InputParams::new(vec![48.0, 4.0, 60.0])
    }

    #[test]
    fn golden_run_is_deterministic() {
        let app = PageRank::new();
        let a = app.golden(&input()).unwrap();
        let b = app.golden(&input()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.work, b.work);
        assert_eq!(a.outer_iters, b.outer_iters);
    }

    #[test]
    fn ranks_form_a_probability_distribution() {
        let app = PageRank::new();
        let g = app.golden(&input()).unwrap();
        assert_eq!(g.output.len(), 48);
        let total: f64 = g.output.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "ranks sum to {total}");
        assert!(g.output.iter().all(|r| *r > 0.0 && r.is_finite()));
    }

    #[test]
    fn task_skipping_reduces_work_and_perturbs_ranks() {
        let app = PageRank::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![0, 5, 0])),
            )
            .unwrap();
        assert!(a.work < g.work, "skipping saved no work");
        assert!(app.qos_degradation(&g, &a) > 0.0);
    }

    #[test]
    fn precision_scaling_reduces_work() {
        let app = PageRank::new();
        let g = app.golden(&input()).unwrap();
        let a = app
            .run(
                &input(),
                &PhaseSchedule::constant(LevelConfig::new(vec![5, 0, 0])),
            )
            .unwrap();
        // Per-iteration contrib work must shrink even if the convergence
        // exit fires at a different iteration.
        let g_per = g.log.work_of_block(BLOCK_CONTRIB) as f64 / g.outer_iters as f64;
        let a_per = a.log.work_of_block(BLOCK_CONTRIB) as f64 / a.outer_iters as f64;
        assert!(a_per < g_per);
    }

    #[test]
    fn early_phase_error_exceeds_late_phase_error() {
        let app = PageRank::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![4, 4, 0]);
        let early = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg.clone(), 0, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let late = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg, 3, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        assert!(
            app.qos_degradation(&g, &late) <= app.qos_degradation(&g, &early),
            "late {} vs early {}",
            app.qos_degradation(&g, &late),
            app.qos_degradation(&g, &early)
        );
    }

    #[test]
    fn input_validation() {
        let app = PageRank::new();
        assert!(app.golden(&InputParams::new(vec![4.0, 4.0, 60.0])).is_err());
        assert!(app
            .golden(&InputParams::new(vec![48.0, 1.0, 60.0]))
            .is_err());
        assert!(app.golden(&InputParams::new(vec![48.0, 4.0, 0.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![48.0])).is_err());
    }
}
