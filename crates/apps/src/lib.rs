//! Rust ports of the five benchmark applications the OPPROX paper
//! evaluates (Sec. 4.1), plus three survey-technique workloads with
//! different phase structure, all implementing
//! [`opprox_approx_rt::ApproxApp`].
//!
//! | Module | Application | Computation pattern |
//! |---|---|---|
//! | [`lulesh`] | LULESH (Sedov blast hydrodynamics) | convergence loop whose iteration count depends on internal approximation |
//! | [`comd`] | CoMD (molecular-dynamics proxy) | timestep loop, iteration count is an input parameter |
//! | [`video`] | FFmpeg filter pipeline | streaming enumerator loop over frames |
//! | [`bodytrack`] | PARSEC Bodytrack (annealed particle filter) | per-frame annealing convergence loop |
//! | [`pso`] | Particle swarm optimization | convergence loop towards the best solution |
//! | [`pagerank`] | PageRank power iteration | iterative graph kernel with convergence-based task skipping |
//! | [`stream`] | StreamAgg sensor pipeline | windowed streaming filter/aggregation |
//! | [`stencil`] | 2D heat-diffusion stencil | Jacobi sweeps judged by PSNR |
//!
//! Every port is deterministic (RNGs are seeded from the input
//! parameters), counts its work in abstract instruction-like units, and
//! exposes the paper's techniques (Table 1) plus the survey's precision
//! scaling and task skipping on the three non-paper workloads.
//!
//! # Example
//!
//! ```
//! use opprox_approx_rt::{ApproxApp, InputParams, LevelConfig, PhaseSchedule};
//! use opprox_apps::pso::Pso;
//!
//! let app = Pso::new();
//! let input = InputParams::new(vec![20.0, 4.0]); // swarm size, dimension
//! let exact = app.golden(&input).unwrap();
//! let approx = app
//!     .run(&input, &PhaseSchedule::constant(LevelConfig::new(vec![2, 0, 0])))
//!     .unwrap();
//! assert!(approx.work < exact.work);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bodytrack;
pub mod comd;
pub mod lulesh;
pub mod pagerank;
pub mod pso;
pub mod registry;
pub mod stencil;
pub mod stream;
pub mod util;
pub mod video;

pub use bodytrack::Bodytrack;
pub use comd::CoMd;
pub use lulesh::Lulesh;
pub use pagerank::PageRank;
pub use pso::Pso;
pub use registry::{AppRegistry, RegistryError};
pub use stencil::Stencil;
pub use stream::StreamAgg;
pub use video::VideoPipeline;
