//! LULESH port: one-dimensional Lagrangian shock hydrodynamics.
//!
//! The paper's running example is LULESH, which simulates the Sedov blast
//! wave and iterates an outer loop *until the simulation reaches a stable
//! state* under a Courant time-step condition. The property OPPROX
//! exploits — and that this port preserves — is that **the outer-loop
//! iteration count depends on the internal approximations**: the Courant
//! time step is computed from the element states, so approximating the
//! kernels changes `dt` and with it the number of iterations (the paper
//! observes 921 accurate iterations growing to 965 under some settings,
//! turning intended speedups into slowdowns).
//!
//! The port is a staggered-grid 1D Lagrangian hydro code (nodes carry
//! velocity, elements carry thermodynamic state) with artificial
//! viscosity, an ideal-gas EOS with per-region `γ`, a Sedov-style central
//! energy deposit, and the standard LULESH time-step controls (CFL factor
//! plus a bounded per-step `dt` growth multiplier). It exposes the same
//! four approximable blocks the paper found safe for LULESH:
//!
//! | Block | Technique | Effect of approximation |
//! |---|---|---|
//! | `forces_on_elements` | loop perforation | skipped elements copy the viscosity of the nearest computed element |
//! | `position_of_elements` | memoization | node accelerations are refreshed only every k-th step |
//! | `strain_of_elements` | loop perforation | skipped elements copy the energy increment of the nearest computed element |
//! | `calculate_timeconstraints` | loop perforation | `dt` is derived from a sample of elements and can overshoot |
//!
//! The QoS metric is the paper's: relative difference in final element
//! energies versus the accurate run, averaged over elements.

use crate::util::seed_from;
use opprox_approx_rt::block::{BlockDescriptor, TechniqueKind};
use opprox_approx_rt::log::CallContextLog;
use opprox_approx_rt::technique::{perforated_indices, perforated_indices_offset};
use opprox_approx_rt::{ApproxApp, InputParams, PhaseSchedule, RunResult, RuntimeError};

/// Index of the `forces_on_elements` block.
pub const BLOCK_FORCES: usize = 0;
/// Index of the `position_of_elements` block.
pub const BLOCK_POSITIONS: usize = 1;
/// Index of the `strain_of_elements` block.
pub const BLOCK_STRAIN: usize = 2;
/// Index of the `calculate_timeconstraints` block.
pub const BLOCK_TIMECONSTRAINTS: usize = 3;

/// Simulated end time of the blast problem.
const T_END: f64 = 1.2;
/// CFL safety factor for the Courant condition.
const CFL: f64 = 0.3;
/// Maximum per-step growth of `dt` (LULESH's `deltatimemultub`).
const DT_GROWTH: f64 = 1.1;
/// Hard iteration cap so approximated runs always terminate.
const MAX_ITERS: u64 = 2500;
/// Artificial-viscosity coefficients (linear and quadratic).
const Q_LINEAR: f64 = 0.75;
const Q_QUADRATIC: f64 = 2.0;
/// Physical clamps that bound runaway states under heavy approximation.
const E_MAX: f64 = 1e4;
const U_MAX: f64 = 25.0;

/// The LULESH-style hydrodynamics application.
///
/// Input parameters: `mesh_length` (number of elements along the 1D mesh,
/// the analogue of the paper's "length of cube mesh") and `num_regions`
/// (number of material regions with distinct `γ`).
#[derive(Debug, Clone)]
pub struct Lulesh {
    meta: opprox_approx_rt::app::AppMeta,
}

impl Default for Lulesh {
    fn default() -> Self {
        Self::new()
    }
}

impl Lulesh {
    /// Creates the application with its four approximable blocks.
    pub fn new() -> Self {
        Lulesh {
            meta: opprox_approx_rt::app::AppMeta {
                name: "LULESH".into(),
                input_param_names: vec!["mesh_length".into(), "num_regions".into()],
                blocks: vec![
                    BlockDescriptor::new("forces_on_elements", TechniqueKind::LoopPerforation, 5),
                    BlockDescriptor::new("position_of_elements", TechniqueKind::Memoization, 5),
                    BlockDescriptor::new("strain_of_elements", TechniqueKind::LoopPerforation, 5),
                    BlockDescriptor::new(
                        "calculate_timeconstraints",
                        TechniqueKind::LoopPerforation,
                        5,
                    ),
                ],
            },
        }
    }
}

/// Full mutable state of the hydro simulation.
struct State {
    /// Node positions (n + 1 nodes).
    x: Vec<f64>,
    /// Node velocities.
    u: Vec<f64>,
    /// Cached node accelerations (for the memoized kinematics block).
    a: Vec<f64>,
    /// Element internal energy.
    e: Vec<f64>,
    /// Element mass (constant in a Lagrangian code).
    m: Vec<f64>,
    /// Element density.
    rho: Vec<f64>,
    /// Element pressure.
    p: Vec<f64>,
    /// Element artificial viscosity.
    q: Vec<f64>,
    /// Element sound speed.
    cs: Vec<f64>,
    /// Element adiabatic exponent (per material region).
    gamma: Vec<f64>,
}

impl State {
    fn init(n: usize, regions: usize) -> State {
        let dx0 = 1.0 / n as f64;
        let x: Vec<f64> = (0..=n).map(|i| i as f64 * dx0).collect();
        let gamma: Vec<f64> = (0..n)
            .map(|j| {
                let region = j * regions.max(1) / n;
                1.4 + 0.05 * (region % 3) as f64
            })
            .collect();
        let mut e = vec![1e-5; n];
        // Sedov-style energy deposit just off the mesh centre: an
        // odd-index hot element is *not* aligned with the strides of the
        // perforated time-constraint sampling, so dt-sampling genuinely
        // misses the constraining element early in the blast.
        e[n / 2 + 1] = 1.0 / dx0;
        let rho = vec![1.0; n];
        let m: Vec<f64> = rho.iter().map(|r| r * dx0).collect();
        let mut s = State {
            x,
            u: vec![0.0; n + 1],
            a: vec![0.0; n + 1],
            e,
            m,
            rho,
            p: vec![0.0; n],
            q: vec![0.0; n],
            cs: vec![0.0; n],
            gamma,
        };
        for j in 0..n {
            s.update_eos(j);
        }
        s
    }

    fn dx(&self, j: usize) -> f64 {
        (self.x[j + 1] - self.x[j]).max(1e-9)
    }

    fn update_eos(&mut self, j: usize) {
        self.rho[j] = self.m[j] / self.dx(j);
        self.e[j] = self.e[j].clamp(1e-9, E_MAX);
        self.p[j] = (self.gamma[j] - 1.0) * self.rho[j] * self.e[j];
        self.cs[j] = (self.gamma[j] * self.p[j] / self.rho[j]).max(1e-12).sqrt();
    }

    /// Characteristic speed used by the Courant condition for element `j`.
    fn char_speed(&self, j: usize) -> f64 {
        let du = (self.u[j + 1] - self.u[j]).abs();
        self.cs[j] + 1.2 * du
    }
}

impl ApproxApp for Lulesh {
    fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
        &self.meta
    }

    fn run(
        &self,
        input: &InputParams,
        schedule: &PhaseSchedule,
    ) -> Result<RunResult, RuntimeError> {
        self.meta.validate_input(input)?;
        self.meta.validate_schedule(schedule)?;
        let n = input.get(0) as usize;
        if !(8..=4096).contains(&n) {
            return Err(RuntimeError::InvalidInput(format!(
                "mesh_length must be in 8..=4096, got {n}"
            )));
        }
        let regions = (input.get(1) as usize).max(1);
        // The mesh is deterministic; the seed only perturbs the initial
        // energy floor so distinct inputs produce distinct golden outputs.
        let seed = seed_from(input, 0x11);
        let jitter = (seed % 1000) as f64 * 1e-12;

        let mut s = State::init(n, regions);
        s.e.iter_mut().for_each(|e| *e += jitter);
        let mut f = vec![0.0f64; n + 1];

        let mut log = CallContextLog::new();
        let mut work: u64 = 0;
        let mut t = 0.0f64;
        let mut iter: u64 = 0;
        let dt_max = T_END / 50.0;
        let mut dt_prev = 1e-5;

        while t < T_END && iter < MAX_ITERS {
            let cfg = schedule.config_at(iter);

            // --- Block 3: calculate_timeconstraints (perforation) -------
            let lvl_dt = cfg.level(BLOCK_TIMECONSTRAINTS);
            let mut dt = dt_max;
            let mut w: u64 = 0;
            for j in perforated_indices(n, lvl_dt) {
                let speed = s.char_speed(j).max(1e-12);
                let cand = CFL * s.dx(j) / speed;
                if cand < dt {
                    dt = cand;
                }
                w += 8;
            }
            // LULESH's bounded dt growth keeps an overshooting sampled
            // minimum from destabilizing the integration outright.
            dt = dt.min(dt_prev * DT_GROWTH).clamp(1e-6, dt_max);
            dt_prev = dt;
            if t + dt > T_END {
                dt = T_END - t;
            }
            work += w;
            log.record(iter, BLOCK_TIMECONSTRAINTS, w);

            // --- Block 0: forces_on_elements (perforation) --------------
            let lvl_f = cfg.level(BLOCK_FORCES);
            let mut w: u64 = 0;
            // Compute viscosity on the perforated sample, then fill the
            // gaps by linear interpolation between computed neighbours —
            // sampling the result space, as loop perforation does.
            let samples: Vec<usize> = perforated_indices_offset(n, lvl_f, iter as usize).collect();
            for &j in &samples {
                let du = s.u[j + 1] - s.u[j];
                s.q[j] = if du < 0.0 {
                    // Viscosity is capped at a multiple of the pressure so a
                    // perturbed velocity field cannot collapse `dt` without
                    // bound.
                    (Q_QUADRATIC * s.rho[j] * du * du + Q_LINEAR * s.rho[j] * s.cs[j] * (-du))
                        .min(2.0 * s.p[j] + 0.5)
                } else {
                    0.0
                };
                w += 10;
            }
            for win in samples.windows(2) {
                let (a, b) = (win[0], win[1]);
                for j in (a + 1)..b {
                    let frac = (j - a) as f64 / (b - a) as f64;
                    s.q[j] = s.q[a] * (1.0 - frac) + s.q[b] * frac;
                    w += 1;
                }
            }
            if let Some((&first, &last)) = samples.first().zip(samples.last()) {
                for j in 0..first {
                    s.q[j] = s.q[first];
                    w += 1;
                }
                for j in (last + 1)..n {
                    s.q[j] = s.q[last];
                    w += 1;
                }
            }
            // Assemble nodal forces from element stress.
            for (i, fi) in f.iter_mut().enumerate().take(n).skip(1) {
                *fi = (s.p[i - 1] + s.q[i - 1]) - (s.p[i] + s.q[i]);
                w += 4;
            }
            f[0] = 0.0;
            f[n] = 0.0;
            work += w;
            log.record(iter, BLOCK_FORCES, w);

            // --- Block 1: position_of_elements (memoization) ------------
            let lvl_pos = cfg.level(BLOCK_POSITIONS);
            let recompute = lvl_pos == 0 || iter.is_multiple_of(lvl_pos as u64 + 1);
            let mut w: u64 = 0;
            if recompute {
                for (i, &fi) in f.iter().enumerate().take(n + 1) {
                    let m_node = if i == 0 {
                        s.m[0] / 2.0
                    } else if i == n {
                        s.m[n - 1] / 2.0
                    } else {
                        (s.m[i - 1] + s.m[i]) / 2.0
                    };
                    s.a[i] = fi / m_node;
                    w += 5;
                }
            } else {
                w += 1; // cached accelerations reused
            }
            for i in 0..=n {
                s.u[i] = (s.u[i] + dt * s.a[i]).clamp(-U_MAX, U_MAX);
                w += 2;
            }
            // Reflective boundaries.
            s.u[0] = 0.0;
            s.u[n] = 0.0;
            // Mild unconditional velocity filtering (the 1D analogue of
            // LULESH's hourglass damping) keeps the scheme from ringing
            // when approximated blocks inject non-smooth stress.
            for (i, fi) in f.iter_mut().enumerate().take(n).skip(1) {
                *fi = s.u[i] + 0.08 * (s.u[i - 1] - 2.0 * s.u[i] + s.u[i + 1]);
                w += 2;
            }
            s.u[1..n].copy_from_slice(&f[1..n]);
            for i in 0..=n {
                s.x[i] += dt * s.u[i];
                w += 2;
            }
            // Keep the mesh untangled under aggressive approximation.
            for i in 1..=n {
                if s.x[i] <= s.x[i - 1] + 1e-9 {
                    s.x[i] = s.x[i - 1] + 1e-9;
                }
            }
            work += w;
            log.record(iter, BLOCK_POSITIONS, w);

            // --- Block 2: strain_of_elements (perforation) ---------------
            let lvl_s = cfg.level(BLOCK_STRAIN);
            let mut w: u64 = 0;
            let samples: Vec<usize> = perforated_indices_offset(n, lvl_s, iter as usize).collect();
            let mut de = vec![0.0f64; n];
            for &j in &samples {
                let du = s.u[j + 1] - s.u[j];
                // pdV + viscous heating work on the element.
                de[j] = -dt * (s.p[j] + s.q[j]) * du / s.m[j];
                w += 12;
            }
            for win in samples.windows(2) {
                let (a, b) = (win[0], win[1]);
                for j in (a + 1)..b {
                    let frac = (j - a) as f64 / (b - a) as f64;
                    de[j] = de[a] * (1.0 - frac) + de[b] * frac;
                    w += 1;
                }
            }
            if let Some((&first, &last)) = samples.first().zip(samples.last()) {
                for j in 0..first {
                    de[j] = de[first];
                    w += 1;
                }
                for j in (last + 1)..n {
                    de[j] = de[last];
                    w += 1;
                }
            }
            for (j, &dej) in de.iter().enumerate() {
                s.e[j] = (s.e[j] + dej).clamp(1e-9, E_MAX);
                s.update_eos(j);
                w += 4;
            }
            work += w;
            log.record(iter, BLOCK_STRAIN, w);

            t += dt;
            iter += 1;
            work += 2; // outer-loop bookkeeping
        }

        Ok(RunResult {
            output: s.e.clone(),
            work,
            outer_iters: iter,
            log,
        })
    }

    fn qos_degradation(&self, exact: &RunResult, approx: &RunResult) -> f64 {
        // Difference in final element energies, averaged across elements
        // and scaled by the mean golden energy. The aggregate scale keeps
        // quiescent far-field elements (whose energies are ~1e-5) from
        // dominating a per-element relative metric.
        let n = exact.output.len().min(approx.output.len());
        if n == 0 {
            return 0.0;
        }
        let scale = (exact.output.iter().map(|e| e.abs()).sum::<f64>() / n as f64).max(1e-9);
        let sum: f64 = exact
            .output
            .iter()
            .zip(approx.output.iter())
            .map(|(e, a)| (a - e).abs())
            .sum();
        (100.0 * sum / (n as f64 * scale)).min(opprox_approx_rt::qos::QOS_SATURATION)
    }

    fn representative_inputs(&self) -> Vec<InputParams> {
        let mut out = Vec::new();
        for &mesh in &[48.0, 64.0, 80.0] {
            for &regions in &[1.0, 2.0, 4.0] {
                out.push(InputParams::new(vec![mesh, regions]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opprox_approx_rt::LevelConfig;

    fn input() -> InputParams {
        InputParams::new(vec![64.0, 2.0])
    }

    #[test]
    fn golden_run_is_deterministic() {
        let app = Lulesh::new();
        let a = app.golden(&input()).unwrap();
        let b = app.golden(&input()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.work, b.work);
        assert_eq!(a.outer_iters, b.outer_iters);
    }

    #[test]
    fn golden_run_reaches_end_time_with_hundreds_of_iterations() {
        let app = Lulesh::new();
        let g = app.golden(&input()).unwrap();
        assert!(
            g.outer_iters > 200 && g.outer_iters < MAX_ITERS,
            "iters = {}",
            g.outer_iters
        );
    }

    #[test]
    fn blast_wave_spreads_energy_outwards() {
        let app = Lulesh::new();
        let g = app.golden(&input()).unwrap();
        let n = g.output.len();
        // The central element must have shed a large part of its initial
        // energy into its neighbourhood.
        let centre = g.output[n / 2 + 1];
        let initial = 64.0;
        assert!(centre < 0.8 * initial, "centre energy {centre}");
        // Energy near the centre exceeds the far field.
        assert!(g.output[n / 2 + 2] > g.output[n - 1] * 2.0);
    }

    #[test]
    fn approximation_changes_iteration_count() {
        let app = Lulesh::new();
        let g = app.golden(&input()).unwrap();
        // Aggressive dt-sampling approximation perturbs the iteration count.
        let cfg = LevelConfig::new(vec![0, 0, 0, 5]);
        let a = app.run(&input(), &PhaseSchedule::constant(cfg)).unwrap();
        assert_ne!(
            g.outer_iters, a.outer_iters,
            "expected dt approximation to change the iteration count"
        );
    }

    #[test]
    fn approximation_reduces_per_iteration_work_and_adds_error() {
        let app = Lulesh::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![3, 3, 3, 0]);
        let a = app.run(&input(), &PhaseSchedule::constant(cfg)).unwrap();
        let per_iter_g = g.work as f64 / g.outer_iters as f64;
        let per_iter_a = a.work as f64 / a.outer_iters as f64;
        assert!(
            per_iter_a < per_iter_g,
            "approx {per_iter_a} vs golden {per_iter_g} per-iteration work"
        );
        let qos = app.qos_degradation(&g, &a);
        assert!(qos > 0.0);
        assert!(qos.is_finite());
    }

    #[test]
    fn late_phase_approximation_hurts_less_than_early() {
        let app = Lulesh::new();
        let g = app.golden(&input()).unwrap();
        let cfg = LevelConfig::new(vec![4, 4, 4, 0]);
        let early = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg.clone(), 0, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let late = app
            .run(
                &input(),
                &PhaseSchedule::single_phase(cfg, 3, 4, g.outer_iters).unwrap(),
            )
            .unwrap();
        let q_early = app.qos_degradation(&g, &early);
        let q_late = app.qos_degradation(&g, &late);
        assert!(
            q_late < q_early,
            "phase-4 QoS {q_late} should be below phase-1 QoS {q_early}"
        );
    }

    #[test]
    fn rejects_bad_mesh_length() {
        let app = Lulesh::new();
        assert!(app.golden(&InputParams::new(vec![4.0, 1.0])).is_err());
        assert!(app.golden(&InputParams::new(vec![64.0])).is_err());
    }

    #[test]
    fn distinct_inputs_have_distinct_outputs() {
        let app = Lulesh::new();
        let a = app.golden(&InputParams::new(vec![48.0, 1.0])).unwrap();
        let b = app.golden(&InputParams::new(vec![80.0, 1.0])).unwrap();
        assert_ne!(a.output.len(), b.output.len());
    }
}
