//! A registry of the five benchmark applications, used by the experiment
//! harness, examples, and integration tests.

use crate::{Bodytrack, CoMd, Lulesh, Pso, VideoPipeline};
use opprox_approx_rt::ApproxApp;

/// Instantiates every benchmark application, in the paper's Table 1 order.
///
/// # Example
///
/// ```
/// let apps = opprox_apps::registry::all_apps();
/// let names: Vec<&str> = apps.iter().map(|a| a.meta().name.as_str()).collect();
/// assert_eq!(names, ["LULESH", "FFmpeg", "Bodytrack", "PSO", "CoMD"]);
/// ```
pub fn all_apps() -> Vec<Box<dyn ApproxApp>> {
    vec![
        Box::new(Lulesh::new()),
        Box::new(VideoPipeline::new()),
        Box::new(Bodytrack::new()),
        Box::new(Pso::new()),
        Box::new(CoMd::new()),
    ]
}

/// Looks an application up by its (case-insensitive) name.
///
/// # Example
///
/// ```
/// let app = opprox_apps::registry::by_name("lulesh").unwrap();
/// assert_eq!(app.meta().num_blocks(), 4);
/// assert!(opprox_apps::registry::by_name("nosuch").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Box<dyn ApproxApp>> {
    all_apps()
        .into_iter()
        .find(|a| a.meta().name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_five_apps_with_metadata() {
        let apps = all_apps();
        assert_eq!(apps.len(), 5);
        for app in &apps {
            let meta = app.meta();
            assert!(!meta.name.is_empty());
            assert!(meta.num_blocks() >= 3, "{} has too few blocks", meta.name);
            assert!(!meta.input_param_names.is_empty());
            assert!(
                !app.representative_inputs().is_empty(),
                "{} has no training inputs",
                meta.name
            );
        }
    }

    #[test]
    fn every_representative_input_runs_golden() {
        for app in all_apps() {
            for input in app.representative_inputs() {
                let g = app.golden(&input).expect("golden run");
                assert!(g.work > 0);
                assert!(g.outer_iters > 0);
                assert!(!g.output.is_empty());
            }
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("FFMPEG").is_some());
        assert!(by_name("CoMD").is_some());
        assert!(by_name("unknown").is_none());
    }
}
