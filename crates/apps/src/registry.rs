//! A registry of the benchmark applications, used by the experiment
//! harness, the serve layer, examples, and integration tests.
//!
//! The registry is *registration-based*: [`AppRegistry::register`]
//! refuses a second application with the same (case-insensitive) name
//! with a typed [`RegistryError`] instead of silently overwriting — a
//! silent overwrite would let one mis-named port shadow another and every
//! downstream artifact (models, traces, serve stores) would attribute its
//! results to the wrong application. The free functions [`all_apps`] and
//! [`by_name`] expose the built-in registry the way earlier revisions
//! did.

use crate::{Bodytrack, CoMd, Lulesh, PageRank, Pso, Stencil, StreamAgg, VideoPipeline};
use opprox_approx_rt::ApproxApp;

/// Errors produced by application registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An application with this (case-insensitive) name is already
    /// registered; registration never overwrites.
    DuplicateApp {
        /// The name that collided.
        name: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateApp { name } => {
                write!(f, "an app named `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// An ordered collection of registered applications with unique,
/// case-insensitively compared names.
///
/// # Example
///
/// ```
/// use opprox_apps::{AppRegistry, Pso};
///
/// let mut registry = AppRegistry::empty();
/// registry.register(Box::new(Pso::new())).unwrap();
/// assert!(registry.register(Box::new(Pso::new())).is_err()); // duplicate
/// assert_eq!(registry.names(), ["PSO"]);
/// ```
#[derive(Default)]
pub struct AppRegistry {
    apps: Vec<Box<dyn ApproxApp>>,
}

impl AppRegistry {
    /// Creates an empty registry.
    pub fn empty() -> Self {
        AppRegistry { apps: Vec::new() }
    }

    /// Creates a registry holding every built-in benchmark application:
    /// the paper's Table 1 order, followed by the survey-workload ports.
    pub fn with_builtin() -> Self {
        let mut registry = AppRegistry::empty();
        let builtin: Vec<Box<dyn ApproxApp>> = vec![
            Box::new(Lulesh::new()),
            Box::new(VideoPipeline::new()),
            Box::new(Bodytrack::new()),
            Box::new(Pso::new()),
            Box::new(CoMd::new()),
            Box::new(PageRank::new()),
            Box::new(StreamAgg::new()),
            Box::new(Stencil::new()),
        ];
        for app in builtin {
            registry
                .register(app)
                .expect("built-in application names are unique");
        }
        registry
    }

    /// Registers an application, keeping registration order.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateApp`] when an app with the same
    /// case-insensitive name is already present; the registry is left
    /// unchanged.
    pub fn register(&mut self, app: Box<dyn ApproxApp>) -> Result<(), RegistryError> {
        let name = app.meta().name.clone();
        if self.by_name(&name).is_some() {
            return Err(RegistryError::DuplicateApp { name });
        }
        self.apps.push(app);
        Ok(())
    }

    /// The registered applications, in registration order.
    pub fn apps(&self) -> &[Box<dyn ApproxApp>] {
        &self.apps
    }

    /// Consumes the registry, yielding the applications in order.
    pub fn into_apps(self) -> Vec<Box<dyn ApproxApp>> {
        self.apps
    }

    /// Looks an application up by its (case-insensitive) name.
    pub fn by_name(&self, name: &str) -> Option<&dyn ApproxApp> {
        self.apps
            .iter()
            .find(|a| a.meta().name.eq_ignore_ascii_case(name))
            .map(|a| a.as_ref())
    }

    /// The registered application names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.apps.iter().map(|a| a.meta().name.clone()).collect()
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

/// Instantiates every built-in benchmark application, in the paper's
/// Table 1 order followed by the survey-workload ports.
///
/// # Example
///
/// ```
/// let apps = opprox_apps::registry::all_apps();
/// let names: Vec<&str> = apps.iter().map(|a| a.meta().name.as_str()).collect();
/// assert_eq!(
///     names,
///     ["LULESH", "FFmpeg", "Bodytrack", "PSO", "CoMD", "PageRank", "StreamAgg", "Stencil"]
/// );
/// ```
pub fn all_apps() -> Vec<Box<dyn ApproxApp>> {
    AppRegistry::with_builtin().into_apps()
}

/// Looks a built-in application up by its (case-insensitive) name.
///
/// # Example
///
/// ```
/// let app = opprox_apps::registry::by_name("lulesh").unwrap();
/// assert_eq!(app.meta().num_blocks(), 4);
/// assert!(opprox_apps::registry::by_name("nosuch").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Box<dyn ApproxApp>> {
    all_apps()
        .into_iter()
        .find(|a| a.meta().name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_eight_apps_with_metadata() {
        let apps = all_apps();
        assert_eq!(apps.len(), 8);
        for app in &apps {
            let meta = app.meta();
            assert!(!meta.name.is_empty());
            assert!(meta.num_blocks() >= 3, "{} has too few blocks", meta.name);
            assert!(!meta.input_param_names.is_empty());
            assert!(
                !app.representative_inputs().is_empty(),
                "{} has no training inputs",
                meta.name
            );
        }
    }

    #[test]
    fn every_representative_input_runs_golden() {
        for app in all_apps() {
            for input in app.representative_inputs() {
                let g = app.golden(&input).expect("golden run");
                assert!(g.work > 0);
                assert!(g.outer_iters > 0);
                assert!(!g.output.is_empty());
            }
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("FFMPEG").is_some());
        assert!(by_name("CoMD").is_some());
        assert!(by_name("pagerank").is_some());
        assert!(by_name("STREAMAGG").is_some());
        assert!(by_name("stencil").is_some());
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn duplicate_registration_is_refused_and_leaves_registry_intact() {
        let mut registry = AppRegistry::with_builtin();
        let before = registry.names();
        let err = registry
            .register(Box::new(Pso::new()))
            .expect_err("duplicate must be refused");
        assert_eq!(err, RegistryError::DuplicateApp { name: "PSO".into() });
        assert!(err.to_string().contains("PSO"));
        assert_eq!(registry.names(), before, "failed registration mutated");
    }

    /// The duplicate check is case-insensitive, matching `by_name` — a
    /// `pso`/`PSO` pair would be distinct keys to a naive map but the
    /// same app to every lookup path.
    #[test]
    fn duplicate_check_is_case_insensitive() {
        struct Renamed(opprox_approx_rt::app::AppMeta);
        impl ApproxApp for Renamed {
            fn meta(&self) -> &opprox_approx_rt::app::AppMeta {
                &self.0
            }
            fn run(
                &self,
                _: &opprox_approx_rt::InputParams,
                _: &opprox_approx_rt::PhaseSchedule,
            ) -> Result<opprox_approx_rt::RunResult, opprox_approx_rt::RuntimeError> {
                unreachable!("registration never runs the app")
            }
            fn representative_inputs(&self) -> Vec<opprox_approx_rt::InputParams> {
                Vec::new()
            }
        }
        let mut meta = Pso::new().meta().clone();
        meta.name = "pso".into();
        let mut registry = AppRegistry::with_builtin();
        assert!(matches!(
            registry.register(Box::new(Renamed(meta))),
            Err(RegistryError::DuplicateApp { .. })
        ));
    }

    #[test]
    fn empty_registry_accepts_then_refuses() {
        let mut registry = AppRegistry::empty();
        assert!(registry.is_empty());
        registry
            .register(Box::new(Stencil::new()))
            .expect("first registration succeeds");
        assert_eq!(registry.len(), 1);
        assert!(registry.by_name("stencil").is_some());
        assert!(registry.register(Box::new(Stencil::new())).is_err());
        assert_eq!(registry.len(), 1);
    }
}
